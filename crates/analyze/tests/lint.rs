//! Linter integration tests: clean engines lint clean, and every random
//! corruption of a valid schedule produces a diagnostic naming the
//! damaged task.

use hetchol_analyze::{Linter, QueueDiscipline, Rule};
use hetchol_bounds::BoundSet;
use hetchol_core::dag::TaskGraph;
use hetchol_core::platform::Platform;
use hetchol_core::profiles::TimingProfile;
use hetchol_core::schedule::{DurationCheck, Schedule, ScheduleEntry};
use hetchol_core::task::{TaskCoords, TaskId};
use hetchol_core::time::Time;
use hetchol_core::trace::{QueueEvent, Trace, TraceEvent};
use hetchol_sched::Dmdas;
use hetchol_sim::{simulate_with, SimOptions};
use proptest::prelude::*;

/// A deterministic simulated run on the paper's Mirage platform.
fn valid_run(n: usize) -> (TaskGraph, Platform, TimingProfile, Trace) {
    let graph = TaskGraph::cholesky(n);
    let platform = Platform::mirage().without_comm();
    let profile = TimingProfile::mirage();
    let r = simulate_with(
        &graph,
        &platform,
        &profile,
        &mut Dmdas::new(),
        &SimOptions::default(),
        hetchol_core::obs::ObsSink::disabled(),
    );
    (graph, platform, profile, r.trace)
}

/// A serial schedule on `worker_of(idx)`: tasks run back-to-back in id
/// (topological) order with exact profile durations, so only the rules a
/// test deliberately arms can fire.
fn serial_schedule(
    graph: &TaskGraph,
    platform: &Platform,
    profile: &TimingProfile,
    worker_of: impl Fn(usize) -> usize,
) -> Schedule {
    let mut t = Time::ZERO;
    let mut entries = Vec::with_capacity(graph.len());
    for idx in 0..graph.len() {
        let task = TaskId(idx as u32);
        let worker = worker_of(idx);
        let dur = profile.time(graph.task(task).kernel(), platform.class_of(worker));
        entries.push(ScheduleEntry {
            task,
            worker,
            start: t,
            end: t + dur,
        });
        t += dur;
    }
    Schedule::from_entries(entries)
}

fn trace_of(schedule: &Schedule, graph: &TaskGraph, n_workers: usize) -> Trace {
    Trace {
        n_workers,
        events: schedule
            .entries()
            .iter()
            .map(|e| TraceEvent {
                worker: e.worker,
                task: e.task,
                kernel: graph.task(e.task).kernel(),
                start: e.start,
                end: e.end,
            })
            .collect(),
        transfers: Vec::new(),
        queue_events: Vec::new(),
        fault_events: Vec::new(),
    }
}

#[test]
fn simulated_traces_lint_clean_with_every_rule_armed() {
    for n in 1..6 {
        let (graph, platform, profile, trace) = valid_run(n);
        let bounds = BoundSet::compute(n, &platform, &profile);
        let prescribed = trace.to_schedule();
        let report = Linter::new(&graph, &platform, &profile)
            .with_bounds(bounds)
            .with_queue_discipline(QueueDiscipline::Sorted)
            .with_prescribed(&prescribed)
            .lint_trace(&trace);
        assert!(report.is_clean(), "n={n}: {}", report.to_json());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Satellite: every random corruption of a valid schedule must be
    /// caught, with a diagnostic naming the corrupted task.
    #[test]
    fn corrupted_schedules_are_caught(
        n in 2usize..6,
        kind in 0usize..4,
        pick in 0usize..1000,
        other in 0usize..1000,
    ) {
        let (graph, platform, profile, trace) = valid_run(n);
        let mut entries = trace.to_schedule().entries().to_vec();
        let i = pick % entries.len();
        let corrupted = entries[i].task;
        let mut also_named = None;
        match kind {
            0 => {
                // Cross-class worker swap: Mirage CPU/GPU kernel times all
                // differ, so the duration can no longer match the profile.
                let cpu = platform
                    .class_of(entries[i].worker) == 0;
                entries[i].worker = if cpu { 9 } else { 0 };
            }
            1 => {
                // Stretch the execution: wrong duration.
                entries[i].end += Time::from_millis(1);
            }
            2 => {
                // Drop the entry: the set rules must name the missing task.
                entries.remove(i);
            }
            _ => {
                // Pile the task onto another entry's worker and window.
                let j = (i + 1 + other % (entries.len() - 1)) % entries.len();
                also_named = Some(entries[j].task);
                let worker = entries[j].worker;
                let start = entries[j].start;
                let dur = profile.time(
                    graph.task(corrupted).kernel(),
                    platform.class_of(worker),
                );
                entries[i].worker = worker;
                entries[i].start = start;
                entries[i].end = start + dur;
            }
        }
        let schedule = Schedule::from_entries(entries);
        let report = Linter::new(&graph, &platform, &profile).lint_schedule(&schedule);
        prop_assert!(!report.is_clean(), "kind {kind} on {corrupted} went unnoticed");
        let named = report.names_task(corrupted)
            || also_named.is_some_and(|t| report.names_task(t));
        prop_assert!(
            named,
            "kind {kind}: no diagnostic names {corrupted}: {}",
            report.to_json()
        );
    }
}

#[test]
fn golden_json_report() {
    // The JSON format is a CI interface: lock it with a golden value.
    let graph = TaskGraph::cholesky(2);
    let platform = Platform::homogeneous(2).without_comm();
    let profile = TimingProfile::mirage_homogeneous();
    let mut entries = serial_schedule(&graph, &platform, &profile, |_| 0)
        .entries()
        .to_vec();
    entries[3].worker = 99;
    let schedule = Schedule::from_entries(entries);
    let report = Linter::new(&graph, &platform, &profile).lint_schedule(&schedule);
    assert_eq!(
        report.to_json(),
        "{\"errors\":1,\"warnings\":0,\"diagnostics\":[{\"rule\":\"bad-worker\",\
         \"severity\":\"error\",\"task\":3,\"worker\":99,\
         \"message\":\"t3 assigned to nonexistent worker 99 (platform has 2)\"}]}"
    );
}

#[test]
fn impossible_makespan_trips_the_bound_rules() {
    let (graph, platform, profile, trace) = valid_run(4);
    let bounds = BoundSet::compute(4, &platform, &profile);
    // Compress the whole schedule 100×: still structurally consistent
    // under Loose durations, but the makespan beats every lower bound.
    let entries = trace
        .to_schedule()
        .entries()
        .iter()
        .map(|e| ScheduleEntry {
            task: e.task,
            worker: e.worker,
            start: Time::from_nanos(e.start.as_nanos() / 100),
            end: Time::from_nanos(e.end.as_nanos() / 100),
        })
        .collect();
    let schedule = Schedule::from_entries(entries);
    let report = Linter::new(&graph, &platform, &profile)
        .duration_check(DurationCheck::Loose)
        .with_bounds(bounds)
        .lint_schedule(&schedule);
    for rule in [Rule::BoundArea, Rule::BoundMixed, Rule::BoundCriticalPath] {
        assert!(
            !report.by_rule(rule).is_empty(),
            "{rule} did not fire: {}",
            report.to_json()
        );
    }
}

#[test]
fn off_class_pinned_trsm_trips_hint_conformance() {
    let graph = TaskGraph::cholesky(4);
    let platform = Platform::mirage().without_comm();
    let profile = TimingProfile::mirage();
    // Deepest TRSM: row 3, column 0 — three tiles below the diagonal.
    let deep = (0..graph.len())
        .map(|i| TaskId(i as u32))
        .find(|&t| {
            let c = graph.task(t).coords;
            matches!(c, TaskCoords::Trsm { .. }) && c.diagonal_offset() >= 2
        })
        .expect("cholesky(4) has a deep TRSM");
    // Serial and exactly-timed, with only the pinned TRSM on a GPU.
    let schedule = serial_schedule(&graph, &platform, &profile, |idx| {
        if idx == deep.index() {
            9
        } else {
            0
        }
    });
    let report = Linter::new(&graph, &platform, &profile)
        .with_trsm_cpu_hint(2, 0)
        .lint_schedule(&schedule);
    let hits = report.by_rule(Rule::HintConformance);
    assert_eq!(hits.len(), 1, "{}", report.to_json());
    assert_eq!(hits[0].task, Some(deep));
    assert_eq!(report.diagnostics.len(), 1, "{}", report.to_json());
}

#[test]
fn queue_inversion_trips_priority_inversion() {
    let graph = TaskGraph::cholesky(2);
    let platform = Platform::homogeneous(2).without_comm();
    let profile = TimingProfile::mirage_homogeneous();
    let schedule = serial_schedule(&graph, &platform, &profile, |_| 0);
    let mut trace = trace_of(&schedule, &graph, 2);
    // The dispatcher enqueued t2 *before* t1 (seq 1 < 2) at equal
    // priority, yet t1 started first: a sorted queue would never do that.
    for (task, seq) in [(0u32, 0u64), (1, 2), (2, 1), (3, 3)] {
        trace.queue_events.push(QueueEvent {
            worker: 0,
            task: TaskId(task),
            prio: 0,
            seq,
            at: Time::ZERO,
            data_ready: Time::ZERO,
        });
    }
    let report = Linter::new(&graph, &platform, &profile)
        .with_queue_discipline(QueueDiscipline::Sorted)
        .lint_trace(&trace);
    let hits = report.by_rule(Rule::PriorityInversion);
    assert_eq!(hits.len(), 1, "{}", report.to_json());
    assert_eq!(hits[0].task, Some(TaskId(2)));
    // FIFO is stricter: the same trace is also an inversion there.
    let fifo = Linter::new(&graph, &platform, &profile)
        .with_queue_discipline(QueueDiscipline::Fifo)
        .lint_trace(&trace);
    assert!(!fifo.by_rule(Rule::PriorityInversion).is_empty());
}

#[test]
fn ignored_startable_task_trips_idle_gap() {
    let graph = TaskGraph::cholesky(2);
    let platform = Platform::homogeneous(2).without_comm();
    let profile = TimingProfile::mirage_homogeneous();
    // t0 on worker 0; t1 parked on worker 1 but started 5 ms late even
    // though it was enqueued and data-ready from t=0; t2, t3 follow.
    let d = |t: u32| profile.time(graph.task(TaskId(t)).kernel(), 0);
    let late = d(0) + Time::from_millis(5);
    let mut t = late + d(1);
    let mut entries = vec![
        ScheduleEntry {
            task: TaskId(0),
            worker: 0,
            start: Time::ZERO,
            end: d(0),
        },
        ScheduleEntry {
            task: TaskId(1),
            worker: 1,
            start: late,
            end: late + d(1),
        },
    ];
    for task in [TaskId(2), TaskId(3)] {
        let dur = profile.time(graph.task(task).kernel(), 0);
        entries.push(ScheduleEntry {
            task,
            worker: 0,
            start: t,
            end: t + dur,
        });
        t += dur;
    }
    let schedule = Schedule::from_entries(entries);
    let mut trace = trace_of(&schedule, &graph, 2);
    for e in schedule.entries() {
        trace.queue_events.push(QueueEvent {
            worker: e.worker,
            task: e.task,
            prio: 0,
            seq: e.task.0 as u64,
            // t1 was startable from t=0; the others only from their start.
            at: if e.task == TaskId(1) {
                Time::ZERO
            } else {
                e.start
            },
            data_ready: if e.task == TaskId(1) {
                Time::ZERO
            } else {
                e.start
            },
        });
    }
    let report = Linter::new(&graph, &platform, &profile).lint_trace(&trace);
    let hits = report.by_rule(Rule::IdleGap);
    assert_eq!(hits.len(), 1, "{}", report.to_json());
    assert_eq!(hits[0].task, Some(TaskId(1)));
    assert_eq!(hits[0].worker, Some(1));
    assert_eq!(report.diagnostics.len(), 1, "{}", report.to_json());
    // A forgiving threshold silences the warning.
    let quiet = Linter::new(&graph, &platform, &profile)
        .idle_gap_threshold(Time::from_secs(1))
        .lint_trace(&trace);
    assert!(quiet.is_clean(), "{}", quiet.to_json());
}

#[test]
fn off_plan_placement_trips_replay_divergence() {
    let graph = TaskGraph::cholesky(2);
    let platform = Platform::homogeneous(2).without_comm();
    let profile = TimingProfile::mirage_homogeneous();
    let executed = serial_schedule(&graph, &platform, &profile, |_| 0);
    let trace = trace_of(&executed, &graph, 2);
    // The plan wanted t1 on worker 1.
    let mut planned = executed.entries().to_vec();
    planned[1].worker = 1;
    let prescribed = Schedule::from_entries(planned);
    let report = Linter::new(&graph, &platform, &profile)
        .with_prescribed(&prescribed)
        .lint_trace(&trace);
    let hits = report.by_rule(Rule::ReplayDivergence);
    assert_eq!(hits.len(), 1, "{}", report.to_json());
    assert_eq!(hits[0].task, Some(TaskId(1)));
    // Following the plan exactly lints clean.
    let clean = Linter::new(&graph, &platform, &profile)
        .with_prescribed(&executed)
        .lint_trace(&trace);
    assert!(clean.is_clean(), "{}", clean.to_json());
}

#[test]
fn swapped_order_trips_replay_divergence() {
    let graph = TaskGraph::cholesky(2);
    let platform = Platform::homogeneous(2).without_comm();
    let profile = TimingProfile::mirage_homogeneous();
    let executed = serial_schedule(&graph, &platform, &profile, |_| 0);
    let trace = trace_of(&executed, &graph, 2);
    // Same placements, but the plan ordered t2 before t1 on worker 0.
    let mut planned = executed.entries().to_vec();
    let (s1, e1) = (planned[1].start, planned[1].end);
    planned[1].start = planned[2].start;
    planned[1].end = planned[2].end;
    planned[2].start = s1;
    planned[2].end = e1;
    let prescribed = Schedule::from_entries(planned);
    let report = Linter::new(&graph, &platform, &profile)
        .with_prescribed(&prescribed)
        .lint_trace(&trace);
    assert!(
        !report.by_rule(Rule::ReplayDivergence).is_empty(),
        "{}",
        report.to_json()
    );
}

#[test]
fn obs_armed_runs_lint_clean_with_every_rule() {
    // The span-fed record path must agree with the QueueEvent
    // reconstruction: an obs-armed simulated run lints clean under the
    // full rule catalog, including span-consistency.
    for n in [2, 4] {
        let graph = TaskGraph::cholesky(n);
        let platform = Platform::mirage().without_comm();
        let profile = TimingProfile::mirage();
        let r = simulate_with(
            &graph,
            &platform,
            &profile,
            &mut Dmdas::new(),
            &SimOptions::default(),
            hetchol_core::obs::ObsSink::enabled(),
        );
        let bounds = BoundSet::compute(n, &platform, &profile);
        let prescribed = r.trace.to_schedule();
        let report = Linter::new(&graph, &platform, &profile)
            .with_bounds(bounds)
            .with_queue_discipline(QueueDiscipline::Sorted)
            .with_prescribed(&prescribed)
            .with_obs(&r.obs)
            .lint_trace(&r.trace);
        assert!(report.is_clean(), "n={n}: {}", report.to_json());
    }
}

#[test]
fn tampered_trace_trips_span_consistency() {
    let graph = TaskGraph::cholesky(2);
    let platform = Platform::mirage().without_comm();
    let profile = TimingProfile::mirage();
    let r = simulate_with(
        &graph,
        &platform,
        &profile,
        &mut Dmdas::new(),
        &SimOptions::default(),
        hetchol_core::obs::ObsSink::enabled(),
    );
    // Shift one execution: the span no longer matches the trace event.
    let mut trace = r.trace.clone();
    trace.events[1].start += Time::from_millis(1);
    trace.events[1].end += Time::from_millis(1);
    let report = Linter::new(&graph, &platform, &profile)
        .with_obs(&r.obs)
        .lint_trace(&trace);
    let hits = report.by_rule(Rule::SpanConsistency);
    assert_eq!(hits.len(), 1, "{}", report.to_json());
    assert_eq!(hits[0].task, Some(trace.events[1].task));
    // Dropping an event entirely is a span-count mismatch plus a
    // missing-event finding.
    let mut short = r.trace.clone();
    short.events.pop();
    let report = Linter::new(&graph, &platform, &profile)
        .with_obs(&r.obs)
        .lint_trace(&short);
    assert!(
        report.by_rule(Rule::SpanConsistency).len() >= 2,
        "{}",
        report.to_json()
    );
    // A disabled-sink report is ignored: no span rule fires.
    let disabled = simulate_with(
        &graph,
        &platform,
        &profile,
        &mut Dmdas::new(),
        &SimOptions::default(),
        hetchol_core::obs::ObsSink::disabled(),
    );
    let report = Linter::new(&graph, &platform, &profile)
        .with_obs(&disabled.obs)
        .lint_trace(&trace);
    assert!(report.by_rule(Rule::SpanConsistency).is_empty());
}

// --- Certified bound verdicts -------------------------------------------

use hetchol_analyze::Severity;

/// Certify the mirage bounds for `n` (panics are test failures).
fn certified(
    n: usize,
    platform: &Platform,
    profile: &TimingProfile,
) -> hetchol_bounds::CertifiedBoundSet {
    BoundSet::compute(n, platform, profile)
        .certify(platform, profile)
        .expect("certify")
}

#[test]
fn certified_bounds_lint_clean_on_valid_runs() {
    for n in 1..5 {
        let (graph, platform, profile, trace) = valid_run(n);
        let report = Linter::new(&graph, &platform, &profile)
            .with_certified_bounds(certified(n, &platform, &profile))
            .lint_trace(&trace);
        assert!(report.is_clean(), "n={n}: {}", report.to_json());
    }
}

#[test]
fn certified_bound_violations_are_confirmed_errors() {
    let (graph, platform, profile, trace) = valid_run(4);
    let entries = trace
        .to_schedule()
        .entries()
        .iter()
        .map(|e| ScheduleEntry {
            task: e.task,
            worker: e.worker,
            start: Time::from_nanos(e.start.as_nanos() / 100),
            end: Time::from_nanos(e.end.as_nanos() / 100),
        })
        .collect();
    let schedule = Schedule::from_entries(entries);
    let report = Linter::new(&graph, &platform, &profile)
        .duration_check(DurationCheck::Loose)
        .with_certified_bounds(certified(4, &platform, &profile))
        .lint_schedule(&schedule);
    for rule in [Rule::BoundArea, Rule::BoundMixed, Rule::BoundCriticalPath] {
        let diags = report.by_rule(rule);
        assert!(
            !diags.is_empty(),
            "{rule} did not fire: {}",
            report.to_json()
        );
        assert!(
            diags
                .iter()
                .all(|d| d.severity == Severity::Error && d.message.contains("CONFIRMED")),
            "{rule} not CONFIRMED: {}",
            report.to_json()
        );
    }
    // Exact verdicts in hand: no uncertified-bound hedge.
    assert!(report.by_rule(Rule::UncertifiedBound).is_empty());
}

#[test]
fn float_only_violations_downgrade_to_float_slop_warnings() {
    // Inflate the *stored f64* area bound past the (valid) makespan while
    // leaving the exact certificate intact: the tolerant f64 comparison
    // now flags the run, the exact one exonerates it.
    let (graph, platform, profile, trace) = valid_run(3);
    let schedule = trace.to_schedule();
    let mut cert = certified(3, &platform, &profile);
    cert.set.area = Time::from_secs_f64(schedule.makespan().as_secs_f64() * 1.01);
    let report = Linter::new(&graph, &platform, &profile)
        .with_certified_bounds(cert)
        .lint_schedule(&schedule);
    let diags = report.by_rule(Rule::BoundArea);
    assert_eq!(diags.len(), 1, "{}", report.to_json());
    assert_eq!(diags[0].severity, Severity::Warning);
    assert!(
        diags[0].message.contains("FLOAT-SLOP"),
        "{}",
        diags[0].message
    );
    assert_eq!(report.n_errors(), 0, "{}", report.to_json());
}

#[test]
fn rejected_certificates_fall_back_with_an_uncertified_warning() {
    let (graph, platform, profile, trace) = valid_run(3);
    let mut cert = certified(3, &platform, &profile);
    // Corrupt the embedded LP: the independent checker must refuse it.
    let rhs = &mut cert.area.lp.rows[0].rhs;
    *rhs = rhs.checked_add(hetchol_bounds::Rat::ONE).unwrap();
    let report = Linter::new(&graph, &platform, &profile)
        .with_certified_bounds(cert)
        .lint_trace(&trace);
    let diags = report.by_rule(Rule::UncertifiedBound);
    assert_eq!(diags.len(), 1, "{}", report.to_json());
    assert!(
        diags[0].message.contains("rejected"),
        "{}",
        diags[0].message
    );
    // The valid run still passes the f64 fallback: warning only.
    assert_eq!(report.n_errors(), 0, "{}", report.to_json());
}

#[test]
fn uncertified_float_bound_findings_carry_a_warning() {
    let (graph, platform, profile, trace) = valid_run(4);
    let bounds = BoundSet::compute(4, &platform, &profile);
    let entries = trace
        .to_schedule()
        .entries()
        .iter()
        .map(|e| ScheduleEntry {
            task: e.task,
            worker: e.worker,
            start: Time::from_nanos(e.start.as_nanos() / 100),
            end: Time::from_nanos(e.end.as_nanos() / 100),
        })
        .collect();
    let schedule = Schedule::from_entries(entries);
    let report = Linter::new(&graph, &platform, &profile)
        .duration_check(DurationCheck::Loose)
        .with_bounds(bounds)
        .lint_schedule(&schedule);
    let diags = report.by_rule(Rule::UncertifiedBound);
    assert_eq!(diags.len(), 1, "{}", report.to_json());
    assert!(diags[0].message.contains("f64"), "{}", diags[0].message);
}

// ---------------------------------------------------------------------------
// Rule 17 (recovery-consistency) golden tests
// ---------------------------------------------------------------------------

/// A degraded-but-recovered simulated run: worker 1 dies mid-schedule.
fn degraded_run() -> (TaskGraph, Platform, TimingProfile, Trace) {
    use hetchol_core::fault::{FaultPlan, RetryPolicy};
    let graph = TaskGraph::cholesky(4);
    let platform = Platform::homogeneous(3).without_comm();
    let profile = TimingProfile::mirage_homogeneous();
    let plan = FaultPlan::new().kill_worker(1, 6);
    let r = hetchol_sim::simulate_resilient(
        &graph,
        &platform,
        &profile,
        &mut Dmdas::new(),
        &SimOptions::default(),
        hetchol_core::obs::ObsSink::disabled(),
        &plan,
        &RetryPolicy::default(),
    )
    .unwrap();
    assert!(r.outcome.is_success(), "{:?}", r.outcome);
    (graph, platform, profile, r.trace)
}

#[test]
fn clean_recovery_passes_the_recovery_consistency_rule() {
    let (graph, platform, profile, trace) = degraded_run();
    let report = Linter::new(&graph, &platform, &profile)
        .duration_check(DurationCheck::Loose)
        .lint_trace(&trace);
    assert!(
        report.by_rule(Rule::RecoveryConsistency).is_empty(),
        "{}",
        report.to_json()
    );
    assert_eq!(report.n_errors(), 0, "{}", report.to_json());
}

#[test]
fn execution_after_a_recorded_death_is_flagged() {
    use hetchol_core::fault::FaultEventKind;
    let (graph, platform, profile, mut trace) = degraded_run();
    let died_at = trace
        .fault_events
        .iter()
        .find_map(|fe| match fe.kind {
            FaultEventKind::WorkerDied { worker: 1 } => Some(fe.at),
            _ => None,
        })
        .expect("the plan kills worker 1");
    // Seed the violation: teleport one post-death execution onto the
    // corpse, as a buggy engine draining a dead worker's queue would.
    let ev = trace
        .events
        .iter_mut()
        .find(|e| e.start >= died_at)
        .expect("work continues after the death");
    ev.worker = 1;
    let bad_task = ev.task;
    let report = Linter::new(&graph, &platform, &profile)
        .duration_check(DurationCheck::Loose)
        .lint_trace(&trace);
    let diags = report.by_rule(Rule::RecoveryConsistency);
    assert!(
        diags
            .iter()
            .any(|d| d.task == Some(bad_task) && d.worker == Some(1)),
        "{}",
        report.to_json()
    );
}

#[test]
fn a_failed_attempt_with_no_retry_or_abort_is_flagged() {
    use hetchol_core::fault::{FaultEvent, FaultEventKind, FaultKind};
    let (graph, platform, profile, mut trace) = valid_run(3);
    let makespan = trace.events.iter().map(|e| e.end).max().unwrap();
    let task = trace.events.last().unwrap().task;
    // A failure recorded after the task's only execution, with no abort:
    // the engine lost track of the task.
    trace.fault_events.push(FaultEvent {
        at: makespan,
        kind: FaultEventKind::AttemptFailed {
            task,
            worker: 0,
            attempt: 1,
            fault: FaultKind::Transient,
        },
    });
    let report = Linter::new(&graph, &platform, &profile).lint_trace(&trace);
    let diags = report.by_rule(Rule::RecoveryConsistency);
    assert!(
        diags.iter().any(|d| d.task == Some(task)),
        "{}",
        report.to_json()
    );
    // An explicit abort record answers the failure: the rule stands down.
    trace.fault_events.push(FaultEvent {
        at: makespan,
        kind: FaultEventKind::Aborted { task, attempts: 1 },
    });
    let report = Linter::new(&graph, &platform, &profile).lint_trace(&trace);
    assert!(
        report.by_rule(Rule::RecoveryConsistency).is_empty(),
        "{}",
        report.to_json()
    );
}

// ---------------------------------------------------------------------------
// Rule 18 (mc-witness) golden tests
// ---------------------------------------------------------------------------

/// Like [`degraded_run`], but also returns the engine's own outcome
/// classification so the mc-witness rule can re-check it.
fn degraded_run_with_outcome() -> (
    TaskGraph,
    Platform,
    TimingProfile,
    Trace,
    hetchol_core::fault::RunOutcome,
) {
    use hetchol_core::fault::{FaultPlan, RetryPolicy};
    let graph = TaskGraph::cholesky(4);
    let platform = Platform::homogeneous(3).without_comm();
    let profile = TimingProfile::mirage_homogeneous();
    let plan = FaultPlan::new().kill_worker(1, 6);
    let r = hetchol_sim::simulate_resilient(
        &graph,
        &platform,
        &profile,
        &mut Dmdas::new(),
        &SimOptions::default(),
        hetchol_core::obs::ObsSink::disabled(),
        &plan,
        &RetryPolicy::default(),
    )
    .unwrap();
    assert!(r.outcome.is_success(), "{:?}", r.outcome);
    (graph, platform, profile, r.trace, r.outcome)
}

#[test]
fn reproduced_mc_witness_is_a_confirmed_error() {
    use hetchol_analyze::Invariant;
    use hetchol_core::fault::FaultEventKind;
    let (graph, platform, profile, mut trace, outcome) = degraded_run_with_outcome();
    let died_at = trace
        .fault_events
        .iter()
        .find_map(|fe| match fe.kind {
            FaultEventKind::WorkerDied { worker: 1 } => Some(fe.at),
            _ => None,
        })
        .expect("the plan kills worker 1");
    // Seed the witnessed bug: one post-death execution on the corpse.
    let ev = trace
        .events
        .iter_mut()
        .find(|e| e.start >= died_at)
        .expect("work continues after the death");
    ev.worker = 1;
    let report = Linter::new(&graph, &platform, &profile)
        .duration_check(DurationCheck::Loose)
        .with_mc_witness(Invariant::NoExecAfterDeath, outcome)
        .lint_trace(&trace);
    let diags = report.by_rule(Rule::McWitness);
    assert_eq!(diags.len(), 1, "{}", report.to_json());
    assert_eq!(
        diags[0].severity,
        hetchol_analyze::Severity::Error,
        "{}",
        report.to_json()
    );
    assert!(
        diags[0].message.starts_with("CONFIRMED"),
        "{}",
        diags[0].message
    );
}

#[test]
fn stale_mc_witness_downgrades_to_a_warning() {
    use hetchol_analyze::Invariant;
    // The trace is the engine's own (correct) recovery: the recorded
    // violation does not reproduce, so the witness is stale — warn, don't
    // fail the build over a fixed bug.
    let (graph, platform, profile, trace, outcome) = degraded_run_with_outcome();
    let report = Linter::new(&graph, &platform, &profile)
        .duration_check(DurationCheck::Loose)
        .with_mc_witness(Invariant::NoExecAfterDeath, outcome)
        .lint_trace(&trace);
    let diags = report.by_rule(Rule::McWitness);
    assert_eq!(diags.len(), 1, "{}", report.to_json());
    assert_eq!(
        diags[0].severity,
        hetchol_analyze::Severity::Warning,
        "{}",
        report.to_json()
    );
    assert!(
        diags[0].message.contains("did not reproduce"),
        "{}",
        diags[0].message
    );
    assert_eq!(report.n_errors(), 0, "{}", report.to_json());
}
