//! The passive happens-before recorder and lockdep, golden-tested.
//!
//! The report JSON is a stable interface (CI diffs it, `repro race`
//! prints it), so these tests pin exact bytes for one seeded race and one
//! seeded lock-order cycle, then property-test the lockdep graph: lock
//! acquisitions that respect a global order never produce a cycle, and a
//! single seeded inversion always does.

use hetchol_analyze::hb;
use hetchol_analyze::race_report;
use parking_lot::{explore, Mutex};

/// Two threads touch the same object under *different* locks, sequenced
/// in real time by a std channel the shim cannot see: no recorded edge
/// orders the touches, so the race is reported under every timing — and,
/// because the std channel fixes which thread registers first, the report
/// bytes are deterministic.
#[test]
fn golden_race_report() {
    let ((), report) = hb::record(|| {
        let m1 = Mutex::new(());
        let m2 = Mutex::new(());
        explore::label(&m1, "lock.a");
        explore::label(&m2, "lock.b");
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        std::thread::scope(|s| {
            // Borrow the mutexes: moving them into the closures would
            // change their addresses and orphan the labels above.
            let (m1, m2) = (&m1, &m2);
            s.spawn(move || {
                let g = m1.lock();
                explore::touch("golden.obj", true);
                drop(g);
                done_tx.send(()).expect("receiver lives");
            });
            s.spawn(move || {
                done_rx.recv().expect("sender lives");
                let g = m2.lock();
                explore::touch("golden.obj", true);
                drop(g);
            });
        });
    });

    assert_eq!(report.races.len(), 1);
    assert!(report.cycles.is_empty());
    assert_eq!(
        report.to_json(),
        concat!(
            "{\n  \"races\": [\n    ",
            "{\"obj\": \"golden.obj\", ",
            "\"first\": {\"thread\": \"thread 1\", \"access\": \"write\", ",
            "\"held\": [\"lock.a\"], \"recent\": [\"acquire lock.a\"]}, ",
            "\"second\": {\"thread\": \"thread 2\", \"access\": \"write\", ",
            "\"held\": [\"lock.b\"], \"recent\": [\"acquire lock.b\"]}}\n  ",
            "],\n  \"cycles\": [],\n  \"threads\": 3,\n  \"events\": 8\n}"
        )
    );

    // The linter conversion: one rule-19 error carrying both sides.
    let lint = race_report(&report);
    assert_eq!(lint.n_errors(), 1);
    let diag = &lint.diagnostics[0];
    assert_eq!(diag.rule.id(), "race-witness");
    assert!(diag.message.contains("golden.obj"), "{}", diag.message);
    assert!(diag.message.contains("lock.a"), "{}", diag.message);
    assert!(diag.message.contains("lock.b"), "{}", diag.message);
}

/// One thread acquiring a → b and later b → a is already a deadlock
/// hazard; lockdep needs no unlucky timing, and the report is exact.
#[test]
fn golden_lockdep_report() {
    let ((), report) = hb::record(|| {
        let a = Mutex::new(());
        let b = Mutex::new(());
        explore::label(&a, "lock.a");
        explore::label(&b, "lock.b");
        {
            let ga = a.lock();
            let gb = b.lock();
            drop(gb);
            drop(ga);
        }
        {
            let gb = b.lock();
            let ga = a.lock();
            drop(ga);
            drop(gb);
        }
    });

    assert!(report.races.is_empty());
    assert_eq!(report.cycles.len(), 1);
    assert_eq!(
        report.to_json(),
        concat!(
            "{\n  \"races\": [],\n  \"cycles\": [\n    ",
            "{\"locks\": [\"lock.a\", \"lock.b\"], ",
            "\"chains\": [\"thread 0: acquired lock.b while holding [lock.a]\", ",
            "\"thread 0: acquired lock.a while holding [lock.b]\"]}\n  ",
            "],\n  \"threads\": 1,\n  \"events\": 10\n}"
        )
    );

    let lint = race_report(&report);
    assert_eq!(lint.n_errors(), 1);
    assert!(
        lint.diagnostics[0].message.contains("lock-order cycle"),
        "{}",
        lint.diagnostics[0].message
    );
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Property: acquisition chains that respect one global lock order form a
/// DAG — lockdep must never report a cycle, whatever subsets a schedule
/// picks. Seeding a single inversion into the same schedule must always
/// close a cycle.
#[test]
fn ordered_lock_dags_never_cycle_and_seeded_inversions_always_do() {
    const LOCKS: usize = 5;
    for seed in 1..=16u64 {
        let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;

        // Random nested subsets, always acquired in increasing index
        // order (the global order).
        let ((), clean) = hb::record(|| {
            let locks: Vec<Mutex<()>> = (0..LOCKS).map(|_| Mutex::new(())).collect();
            for _ in 0..8 {
                let chain: Vec<usize> = (0..LOCKS)
                    .filter(|_| xorshift(&mut rng).is_multiple_of(2))
                    .collect();
                let guards: Vec<_> = chain.iter().map(|&i| locks[i].lock()).collect();
                drop(guards);
            }
        });
        assert!(
            clean.cycles.is_empty(),
            "seed {seed}: ordered chains produced {:?}",
            clean.cycles
        );

        // One inverted pair against an ordered chain over the same pair.
        let i = (xorshift(&mut rng) % (LOCKS as u64 - 1)) as usize;
        let j = i + 1 + (xorshift(&mut rng) as usize) % (LOCKS - 1 - i);
        let ((), dirty) = hb::record(|| {
            let locks: Vec<Mutex<()>> = (0..LOCKS).map(|_| Mutex::new(())).collect();
            {
                let gi = locks[i].lock();
                let gj = locks[j].lock();
                drop(gj);
                drop(gi);
            }
            {
                let gj = locks[j].lock();
                let gi = locks[i].lock();
                drop(gi);
                drop(gj);
            }
        });
        assert!(
            !dirty.cycles.is_empty(),
            "seed {seed}: inversion {j} before {i} was not reported"
        );
    }
}
