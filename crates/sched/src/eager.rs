//! StarPU's `eager` baseline: a greedy policy with *no* performance model.
//!
//! The real StarPU `eager` scheduler keeps one central queue that idle
//! workers pull from. In the push-model interface used here the equivalent
//! behaviour is to hand each ready task to the worker that will be
//! available first — ignoring both execution-time heterogeneity and data
//! placement. It sits between `random` (no state at all) and `dmda`
//! (full completion-time model) in the scheduler hierarchy, which is
//! exactly the gap the paper's Section V measures.

use hetchol_core::platform::WorkerId;
use hetchol_core::scheduler::{ExecutionView, SchedContext, Scheduler};
use hetchol_core::task::TaskId;

/// Earliest-available-worker scheduling, model-free.
#[derive(Default)]
pub struct EagerScheduler;

impl EagerScheduler {
    /// Create an `eager` scheduler.
    pub fn new() -> EagerScheduler {
        EagerScheduler
    }
}

impl Scheduler for EagerScheduler {
    fn name(&self) -> &str {
        "eager"
    }

    fn assign(&mut self, _task: TaskId, ctx: &SchedContext, view: &dyn ExecutionView) -> WorkerId {
        ctx.platform
            .workers()
            .min_by_key(|&w| (view.worker_available_at(w), w))
            .expect("platform has at least one worker")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetchol_core::dag::TaskGraph;
    use hetchol_core::platform::Platform;
    use hetchol_core::profiles::TimingProfile;
    use hetchol_core::scheduler::StaticView;
    use hetchol_core::time::Time;

    #[test]
    fn picks_least_loaded_worker_regardless_of_speed() {
        let graph = TaskGraph::cholesky(4);
        let platform = Platform::mirage().without_comm();
        let profile = TimingProfile::mirage();
        let ctx = SchedContext {
            graph: &graph,
            platform: &platform,
            profile: &profile,
        };
        let mut s = EagerScheduler::new();
        // GPU workers idle, CPU 0 idle: eager picks worker 0 (lowest id
        // among equally-available) even for a GEMM a GPU would crush.
        let view = StaticView {
            now: Time::ZERO,
            available: vec![Time::ZERO; 12],
        };
        let gemm = graph
            .find(hetchol_core::task::TaskCoords::Gemm { k: 0, i: 3, j: 1 })
            .unwrap();
        assert_eq!(s.assign(gemm, &ctx, &view), 0);
        // Load worker 0: eager moves on to worker 1.
        let mut available = vec![Time::ZERO; 12];
        available[0] = Time::from_millis(1);
        let view = StaticView {
            now: Time::ZERO,
            available,
        };
        assert_eq!(s.assign(gemm, &ctx, &view), 1);
    }

    #[test]
    fn is_fifo() {
        assert!(!EagerScheduler::new().sorted_queues());
    }
}
