//! A classical static HEFT list scheduler (Topcuoglu et al.), the
//! heuristic the paper credits as the ancestor of `dmdas`.
//!
//! Tasks are ranked by *upward rank* — bottom level with task weights
//! averaged over all workers, the standard HEFT weighting in heterogeneous
//! environments — then greedily placed on the worker with the earliest
//! finish time. Communications are not modelled (the CP formulation the
//! schedule seeds ignores them too).

use hetchol_core::dag::TaskGraph;
use hetchol_core::platform::Platform;
use hetchol_core::profiles::TimingProfile;
use hetchol_core::schedule::{Schedule, ScheduleEntry};
use hetchol_core::time::Time;

/// Compute a static HEFT schedule for `graph` on `platform`.
///
/// The returned schedule passes the exact-duration validator and is a good
/// warm start for the CP search (the paper seeds CP Optimizer with a HEFT
/// solution for the same reason).
///
/// ```
/// use hetchol_core::{dag::TaskGraph, platform::Platform, profiles::TimingProfile};
/// use hetchol_core::schedule::DurationCheck;
/// use hetchol_sched::heft_schedule;
///
/// let graph = TaskGraph::cholesky(6);
/// let platform = Platform::mirage();
/// let profile = TimingProfile::mirage();
/// let s = heft_schedule(&graph, &platform, &profile);
/// s.validate(&graph, &platform, &profile, DurationCheck::Exact).unwrap();
/// ```
pub fn heft_schedule(graph: &TaskGraph, platform: &Platform, profile: &TimingProfile) -> Schedule {
    let n_workers = platform.n_workers();
    assert!(n_workers > 0, "platform has no workers");

    // Upward ranks with platform-averaged task weights.
    let avg = |kernel| -> Time {
        let total: f64 = platform
            .workers()
            .map(|w| profile.time(kernel, platform.class_of(w)).as_secs_f64())
            .sum();
        Time::from_secs_f64(total / n_workers as f64)
    };
    let ranks = graph.bottom_levels(|t| avg(graph.task(t).kernel()));

    // Decreasing rank order (ties by submission order for determinism);
    // bottom levels strictly decrease along edges, so this is topological.
    let mut order: Vec<usize> = (0..graph.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(ranks[i]), i));

    let mut worker_ready = vec![Time::ZERO; n_workers];
    let mut finish = vec![Time::ZERO; graph.len()];
    let mut entries = Vec::with_capacity(graph.len());
    for &i in &order {
        let task = &graph.tasks()[i];
        let deps_ready = graph
            .predecessors(task.id)
            .iter()
            .map(|p| finish[p.index()])
            .max()
            .unwrap_or(Time::ZERO);
        // Earliest finish time over all workers (append-only placement).
        let (best_w, best_start, best_end) = platform
            .workers()
            .map(|w| {
                let start = deps_ready.max(worker_ready[w]);
                let end = start + profile.time(task.kernel(), platform.class_of(w));
                (w, start, end)
            })
            .min_by_key(|&(w, _, end)| (end, w))
            .expect("at least one worker");
        worker_ready[best_w] = best_end;
        finish[i] = best_end;
        entries.push(ScheduleEntry {
            task: task.id,
            worker: best_w,
            start: best_start,
            end: best_end,
        });
    }
    Schedule::from_entries(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetchol_core::schedule::DurationCheck;

    #[test]
    fn heft_schedule_is_valid() {
        let graph = TaskGraph::cholesky(8);
        let platform = Platform::mirage();
        let profile = TimingProfile::mirage();
        let s = heft_schedule(&graph, &platform, &profile);
        s.validate(&graph, &platform, &profile, DurationCheck::Exact)
            .unwrap();
    }

    #[test]
    fn heft_beats_serial_execution() {
        let graph = TaskGraph::cholesky(8);
        let platform = Platform::mirage();
        let profile = TimingProfile::mirage();
        let s = heft_schedule(&graph, &platform, &profile);
        // Serial on the fastest class (GPU) as a generous baseline.
        let serial: Time = graph
            .tasks()
            .iter()
            .map(|t| profile.fastest_time(t.kernel()))
            .sum();
        assert!(s.makespan() < serial);
    }

    #[test]
    fn heft_exploits_heterogeneity() {
        let graph = TaskGraph::cholesky(10);
        let platform = Platform::mirage();
        let profile = TimingProfile::mirage();
        let s = heft_schedule(&graph, &platform, &profile);
        // Most GEMMs should land on GPUs.
        let gemm_on_gpu = s
            .entries()
            .iter()
            .filter(|e| {
                graph.task(e.task).kernel() == hetchol_core::kernel::Kernel::Gemm && e.worker >= 9
            })
            .count();
        let gemm_total = hetchol_core::kernel::Kernel::Gemm.count_in_cholesky(10);
        assert!(
            gemm_on_gpu * 2 > gemm_total,
            "{gemm_on_gpu}/{gemm_total} GEMMs on GPU"
        );
    }

    #[test]
    fn heft_respects_critical_path() {
        let graph = TaskGraph::cholesky(6);
        let platform = Platform::mirage();
        let profile = TimingProfile::mirage();
        let s = heft_schedule(&graph, &platform, &profile);
        let cp = graph.critical_path(|t| profile.fastest_time(graph.task(t).kernel()));
        assert!(s.makespan() >= cp);
    }

    #[test]
    fn homogeneous_heft_is_load_balanced() {
        let graph = TaskGraph::cholesky(8);
        let platform = Platform::homogeneous(4);
        let profile = TimingProfile::mirage_homogeneous();
        let s = heft_schedule(&graph, &platform, &profile);
        s.validate(&graph, &platform, &profile, DurationCheck::Exact)
            .unwrap();
        // No worker should be idle more than ~50% of the makespan on a
        // graph this parallel.
        let mut busy = [Time::ZERO; 4];
        for e in s.entries() {
            busy[e.worker] += e.end - e.start;
        }
        let span = s.makespan();
        for (w, b) in busy.iter().enumerate() {
            assert!(
                b.as_secs_f64() > 0.5 * span.as_secs_f64(),
                "worker {w} busy {b} of {span}"
            );
        }
    }
}
