//! # hetchol-sched
//!
//! The scheduling policies studied by the paper (Section V):
//!
//! * [`random::RandomScheduler`] — StarPU's `random`: workers drawn with
//!   probability proportional to their class's average acceleration ratio.
//! * [`dm::Dmda`] — StarPU's `dmda` (*deque model data aware*): minimum
//!   estimated completion time, accounting for queued work and data
//!   transfers; FIFO worker queues.
//! * [`dm::Dmdas`] — StarPU's `dmdas`: `dmda` plus HEFT-style priorities
//!   (bottom levels at fastest execution times) and priority-sorted worker
//!   queues.
//! * [`heft::heft_schedule`] — a classical static HEFT list scheduler,
//!   used as the constraint-programming warm start and as a baseline.
//! * [`hints`] — the paper's *static knowledge* hybrids (Section V-C3):
//!   forcing GEMM/SYRK onto GPUs, and forcing TRSMs at least `k` tiles
//!   below the diagonal onto CPUs (the "triangle" heuristic of Figures 9
//!   to 11).
//! * [`inject`] — replaying an externally computed schedule through the
//!   dynamic runtime: full injection (mapping + order) and mapping-only
//!   injection (Section VI-B).
//! * [`registry`] — scheduler selection by *name* (`"dmdas"`,
//!   `"triangle:6"`, ...), the resolver behind the serializable job API
//!   and the `hetchol-serve` wire format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dm;
pub mod eager;
pub mod heft;
pub mod hints;
pub mod inject;
pub mod random;
pub mod registry;

pub use dm::{bottom_level_priorities, Dmda, Dmdas};
pub use eager::EagerScheduler;
pub use heft::heft_schedule;
pub use hints::{ForcedClass, GemmSyrkOnGpu, TriangleTrsmOnCpu};
pub use inject::{MappingInjector, ScheduleInjector};
pub use random::RandomScheduler;
