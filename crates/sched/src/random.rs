//! StarPU's `random` scheduler.
//!
//! From the paper (Section V-A): *"The random scheduler assigns tasks
//! randomly over all the computation resources. It uses an estimation of
//! the relative performance of the resources as coefficients to balance
//! the randomness, so that GPUs will be assigned more tasks, according to
//! their average acceleration ratio."*
//!
//! It is deliberately oblivious to queue lengths, data placement and task
//! affinity — the paper uses it as the representative of platform-aware
//! but task-oblivious partitioning heuristics.

use hetchol_core::platform::WorkerId;
use hetchol_core::scheduler::{ExecutionView, SchedContext, Scheduler};
use hetchol_core::task::TaskId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Weighted-random worker selection.
pub struct RandomScheduler {
    rng: ChaCha8Rng,
    /// Per-worker sampling weight (relative class speed), filled in `init`.
    weights: Vec<f64>,
    total_weight: f64,
}

impl RandomScheduler {
    /// Create with a seed (runs are reproducible per seed).
    pub fn new(seed: u64) -> RandomScheduler {
        RandomScheduler {
            rng: ChaCha8Rng::seed_from_u64(seed),
            weights: Vec::new(),
            total_weight: 0.0,
        }
    }
}

impl Scheduler for RandomScheduler {
    fn name(&self) -> &str {
        "random"
    }

    fn init(&mut self, ctx: &SchedContext) {
        let class_speed = ctx.profile.relative_class_speeds(ctx.platform);
        self.weights = ctx
            .platform
            .workers()
            .map(|w| class_speed[ctx.platform.class_of(w)])
            .collect();
        self.total_weight = self.weights.iter().sum();
        assert!(
            self.total_weight > 0.0,
            "platform must have at least one worker"
        );
    }

    fn assign(
        &mut self,
        _task: TaskId,
        _ctx: &SchedContext,
        _view: &dyn ExecutionView,
    ) -> WorkerId {
        // Roulette-wheel selection over worker weights.
        let mut target = self.rng.gen::<f64>() * self.total_weight;
        for (w, &weight) in self.weights.iter().enumerate() {
            target -= weight;
            if target <= 0.0 {
                return w;
            }
        }
        self.weights.len() - 1 // numerical fringe
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetchol_core::dag::TaskGraph;
    use hetchol_core::platform::Platform;
    use hetchol_core::profiles::TimingProfile;
    use hetchol_core::scheduler::StaticView;

    fn assign_many(seed: u64, n: usize) -> Vec<usize> {
        let graph = TaskGraph::cholesky(4);
        let platform = Platform::mirage();
        let profile = TimingProfile::mirage();
        let ctx = SchedContext {
            graph: &graph,
            platform: &platform,
            profile: &profile,
        };
        let mut s = RandomScheduler::new(seed);
        s.init(&ctx);
        let view = StaticView::default();
        let mut counts = vec![0usize; platform.n_workers()];
        for _ in 0..n {
            counts[s.assign(TaskId(0), &ctx, &view)] += 1;
        }
        counts
    }

    #[test]
    fn gpus_receive_more_tasks_per_worker() {
        let counts = assign_many(1, 30_000);
        let cpu_mean = counts[..9].iter().sum::<usize>() as f64 / 9.0;
        let gpu_mean = counts[9..].iter().sum::<usize>() as f64 / 3.0;
        // The average acceleration ratio is ~6x.
        assert!(
            gpu_mean > 4.0 * cpu_mean,
            "gpu {gpu_mean} vs cpu {cpu_mean}"
        );
        // ...but every worker still gets some tasks.
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(assign_many(7, 100), assign_many(7, 100));
        assert_ne!(assign_many(7, 100), assign_many(8, 100));
    }

    #[test]
    fn homogeneous_is_roughly_uniform() {
        let graph = TaskGraph::cholesky(4);
        let platform = Platform::homogeneous(4);
        let profile = TimingProfile::mirage_homogeneous();
        let ctx = SchedContext {
            graph: &graph,
            platform: &platform,
            profile: &profile,
        };
        let mut s = RandomScheduler::new(3);
        s.init(&ctx);
        let view = StaticView::default();
        let mut counts = vec![0usize; 4];
        let n = 40_000;
        for _ in 0..n {
            counts[s.assign(TaskId(0), &ctx, &view)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((0.23..0.27).contains(&frac), "{counts:?}");
        }
    }
}
