//! Static-knowledge scheduling hints (paper Section V-C3).
//!
//! The paper improves on purely dynamic scheduling by injecting structural
//! knowledge of the Cholesky DAG:
//!
//! * forcing GEMM and SYRK kernels onto GPUs (marginal gains — `dmda`
//!   already sends most of them there);
//! * forcing every TRSM at least `k` tiles below the diagonal onto CPUs
//!   (Figure 9), which protects the GPU-critical diagonal chain and yields
//!   the paper's best small/medium-matrix performance with `k ≈ 6–8`.
//!
//! Both are expressed with [`ForcedClass`]: a rule restricting some tasks
//! to one resource class, delegating everything else (and the choice of
//! worker *within* the class) to an inner dynamic scheduler.

use hetchol_core::kernel::Kernel;
use hetchol_core::platform::{ClassId, WorkerId};
use hetchol_core::scheduler::{ExecutionView, SchedContext, Scheduler};
use hetchol_core::task::{TaskCoords, TaskId};

/// A scheduler wrapper that pins rule-matched tasks to a resource class.
///
/// Matched tasks go to the worker of the forced class with the minimum
/// estimated completion time; unmatched tasks are delegated to the inner
/// scheduler. Priorities and queue discipline are inherited from the inner
/// scheduler so the hint composes with both `dmda` and `dmdas`.
pub struct ForcedClass<S> {
    inner: S,
    name: String,
    rule: Box<dyn Fn(TaskCoords) -> Option<ClassId> + Send>,
}

impl<S: Scheduler> ForcedClass<S> {
    /// Wrap `inner` with a forcing `rule` (`Some(class)` pins the task).
    pub fn new(
        inner: S,
        name: impl Into<String>,
        rule: impl Fn(TaskCoords) -> Option<ClassId> + Send + 'static,
    ) -> ForcedClass<S> {
        ForcedClass {
            inner,
            name: name.into(),
            rule: Box::new(rule),
        }
    }

    /// The wrapped scheduler.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: Scheduler> Scheduler for ForcedClass<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn init(&mut self, ctx: &SchedContext) {
        self.inner.init(ctx);
    }

    fn assign(&mut self, task: TaskId, ctx: &SchedContext, view: &dyn ExecutionView) -> WorkerId {
        match (self.rule)(ctx.graph.task(task).coords) {
            Some(class) => view
                .min_completion_worker(task, ctx, ctx.platform.workers_in_class(class))
                .expect("forced class has at least one worker"),
            None => self.inner.assign(task, ctx, view),
        }
    }

    fn priority(&self, task: TaskId, ctx: &SchedContext) -> i64 {
        self.inner.priority(task, ctx)
    }

    fn sorted_queues(&self) -> bool {
        self.inner.sorted_queues()
    }
}

/// Marker constants for the Mirage class layout.
pub const CPU_CLASS: ClassId = 0;
/// GPU class index on two-class platforms built like [`hetchol_core::platform::Platform::mirage`].
pub const GPU_CLASS: ClassId = 1;

/// "GEMM and SYRK kernels are well suited to execute on GPUs" — force them
/// there, delegate the rest (paper Section V-C3, first experiment).
#[allow(non_snake_case)]
pub fn GemmSyrkOnGpu<S: Scheduler>(inner: S) -> ForcedClass<S> {
    ForcedClass::new(inner, "gemm-syrk-on-gpu", |coords| match coords.kernel() {
        Kernel::Gemm | Kernel::Syrk => Some(GPU_CLASS),
        _ => None,
    })
}

/// The paper's triangle heuristic: every TRSM whose output tile lies at
/// least `k_offset` tiles below the diagonal is forced onto the CPUs
/// (Figure 9); the diagonal-adjacent TRSMs stay schedulable on GPUs to
/// keep the critical chain fast. Best observed `k_offset` is 6–8.
#[allow(non_snake_case)]
pub fn TriangleTrsmOnCpu<S: Scheduler>(inner: S, k_offset: u32) -> ForcedClass<S> {
    ForcedClass::new(
        inner,
        format!("triangle-trsm-cpu(k={k_offset})"),
        move |coords| match coords {
            TaskCoords::Trsm { .. } if coords.diagonal_offset() >= k_offset => Some(CPU_CLASS),
            _ => None,
        },
    )
}

/// Render which TRSMs a given offset forces to CPUs, as an ASCII lower
/// triangle (the textual analogue of the paper's Figure 9). `C` marks a
/// forced TRSM tile, `g` a GPU-allowed TRSM tile, `P` the diagonal.
pub fn render_forced_triangle(n_tiles: usize, k_offset: u32) -> String {
    let mut out = String::new();
    for i in 0..n_tiles as u32 {
        for j in 0..=i {
            out.push(if i == j {
                'P'
            } else if i - j >= k_offset {
                'C'
            } else {
                'g'
            });
            out.push(' ');
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dm::{Dmda, Dmdas};
    use hetchol_core::dag::TaskGraph;
    use hetchol_core::platform::Platform;
    use hetchol_core::profiles::TimingProfile;
    use hetchol_core::scheduler::StaticView;
    use hetchol_core::time::Time;

    fn fixture() -> (TaskGraph, Platform, TimingProfile) {
        (
            TaskGraph::cholesky(10),
            Platform::mirage().without_comm(),
            TimingProfile::mirage(),
        )
    }

    #[test]
    fn triangle_rule_pins_far_trsms_to_cpu() {
        let (graph, platform, profile) = fixture();
        let ctx = SchedContext {
            graph: &graph,
            platform: &platform,
            profile: &profile,
        };
        let mut s = TriangleTrsmOnCpu(Dmda::new(), 3);
        s.init(&ctx);
        let view = StaticView {
            now: Time::ZERO,
            available: vec![Time::ZERO; 12],
        };
        for t in graph.tasks() {
            let w = s.assign(t.id, &ctx, &view);
            if let TaskCoords::Trsm { k, i } = t.coords {
                if i - k >= 3 {
                    assert!(w < 9, "{} forced to CPU, got {w}", t.coords);
                } else {
                    // Near-diagonal TRSMs follow dmda: idle GPU wins.
                    assert!(w >= 9, "{} should stay dynamic, got {w}", t.coords);
                }
            }
        }
    }

    #[test]
    fn gemm_syrk_rule_pins_to_gpu_even_when_loaded() {
        let (graph, platform, profile) = fixture();
        let ctx = SchedContext {
            graph: &graph,
            platform: &platform,
            profile: &profile,
        };
        let mut s = GemmSyrkOnGpu(Dmda::new());
        s.init(&ctx);
        // GPUs heavily loaded: dmda would fall back to CPUs, the hint not.
        let mut available = vec![Time::ZERO; 12];
        for a in available.iter_mut().skip(9) {
            *a = Time::from_secs(10);
        }
        let view = StaticView {
            now: Time::ZERO,
            available,
        };
        for t in graph.tasks() {
            let w = s.assign(t.id, &ctx, &view);
            match t.kernel() {
                Kernel::Gemm | Kernel::Syrk => assert!(w >= 9, "{}", t.coords),
                _ => {}
            }
        }
    }

    #[test]
    fn hint_inherits_inner_discipline() {
        let (graph, platform, profile) = fixture();
        let ctx = SchedContext {
            graph: &graph,
            platform: &platform,
            profile: &profile,
        };
        let mut on_dmdas = TriangleTrsmOnCpu(Dmdas::new(), 6);
        on_dmdas.init(&ctx);
        assert!(on_dmdas.sorted_queues());
        let entry = graph.entry_tasks()[0];
        assert!(on_dmdas.priority(entry, &ctx) > 0);
        let on_dmda = TriangleTrsmOnCpu(Dmda::new(), 6);
        assert!(!on_dmda.sorted_queues());
        assert!(on_dmda.name().contains("k=6"));
    }

    #[test]
    fn offset_one_forces_all_offdiagonal_trsms() {
        let (graph, platform, profile) = fixture();
        let ctx = SchedContext {
            graph: &graph,
            platform: &platform,
            profile: &profile,
        };
        let mut s = TriangleTrsmOnCpu(Dmda::new(), 1);
        s.init(&ctx);
        let view = StaticView {
            now: Time::ZERO,
            available: vec![Time::ZERO; 12],
        };
        for t in graph.tasks() {
            if matches!(t.coords, TaskCoords::Trsm { .. }) {
                assert!(s.assign(t.id, &ctx, &view) < 9, "{}", t.coords);
            }
        }
    }

    #[test]
    fn triangle_rendering_matches_rule() {
        let art = render_forced_triangle(5, 2);
        let rows: Vec<&str> = art.lines().collect();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].trim(), "P");
        assert_eq!(rows[1].trim(), "g P");
        assert_eq!(rows[2].trim(), "C g P");
        assert_eq!(rows[4].trim(), "C C C g P");
    }
}
