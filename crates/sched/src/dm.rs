//! StarPU's `dmda` and `dmdas` schedulers (paper Section V-A).
//!
//! Both assign each ready task to the worker with the *minimum estimated
//! completion time*, combining the worker's queued work, the estimated
//! data-transfer time to its memory node, and the calibrated execution
//! time on its class. They differ only in queue discipline:
//!
//! * `dmda` — FIFO worker queues;
//! * `dmdas` — queues sorted by HEFT-style priority: the bottom level of
//!   the task (longest path to an exit task), computed with the fastest
//!   execution time of each task among the resource types, exactly as the
//!   paper describes.

use hetchol_core::dag::TaskGraph;
use hetchol_core::platform::WorkerId;
use hetchol_core::profiles::TimingProfile;
use hetchol_core::scheduler::{ExecutionView, SchedContext, Scheduler};
use hetchol_core::task::TaskId;

/// Bottom-level priorities (nanoseconds, saturating into `i64`), using the
/// fastest execution time of each task among the resource types.
pub fn bottom_level_priorities(graph: &TaskGraph, profile: &TimingProfile) -> Vec<i64> {
    graph
        .bottom_levels(|t| profile.fastest_time(graph.task(t).kernel()))
        .into_iter()
        .map(|t| i64::try_from(t.as_nanos()).unwrap_or(i64::MAX))
        .collect()
}

/// Pick the worker minimising the estimated completion time (ties broken
/// towards the lowest worker id, like StarPU's deterministic iteration).
fn min_completion_worker(task: TaskId, ctx: &SchedContext, view: &dyn ExecutionView) -> WorkerId {
    view.min_completion_worker(task, ctx, ctx.platform.workers())
        .expect("platform has at least one worker")
}

/// The `dmda` scheduler: minimum completion time, FIFO queues.
#[derive(Default)]
pub struct Dmda;

impl Dmda {
    /// Create a `dmda` scheduler.
    pub fn new() -> Dmda {
        Dmda
    }
}

impl Scheduler for Dmda {
    fn name(&self) -> &str {
        "dmda"
    }

    fn assign(&mut self, task: TaskId, ctx: &SchedContext, view: &dyn ExecutionView) -> WorkerId {
        min_completion_worker(task, ctx, view)
    }
}

/// The `dmdas` scheduler: minimum completion time, priority-sorted queues.
#[derive(Default)]
pub struct Dmdas {
    priorities: Vec<i64>,
}

impl Dmdas {
    /// Create a `dmdas` scheduler (priorities are computed in `init`).
    pub fn new() -> Dmdas {
        Dmdas {
            priorities: Vec::new(),
        }
    }
}

impl Scheduler for Dmdas {
    fn name(&self) -> &str {
        "dmdas"
    }

    fn init(&mut self, ctx: &SchedContext) {
        self.priorities = bottom_level_priorities(ctx.graph, ctx.profile);
    }

    fn assign(&mut self, task: TaskId, ctx: &SchedContext, view: &dyn ExecutionView) -> WorkerId {
        min_completion_worker(task, ctx, view)
    }

    fn priority(&self, task: TaskId, _ctx: &SchedContext) -> i64 {
        self.priorities[task.index()]
    }

    fn sorted_queues(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetchol_core::kernel::Kernel;
    use hetchol_core::platform::Platform;
    use hetchol_core::scheduler::StaticView;
    use hetchol_core::task::TaskCoords;
    use hetchol_core::time::Time;

    fn ctx_fixture() -> (TaskGraph, Platform, TimingProfile) {
        (
            TaskGraph::cholesky(5),
            Platform::mirage().without_comm(),
            TimingProfile::mirage(),
        )
    }

    #[test]
    fn dmda_picks_idle_gpu_for_gemm() {
        let (graph, platform, profile) = ctx_fixture();
        let ctx = SchedContext {
            graph: &graph,
            platform: &platform,
            profile: &profile,
        };
        let gemm = graph.find(TaskCoords::Gemm { k: 0, i: 2, j: 1 }).unwrap();
        let view = StaticView {
            now: Time::ZERO,
            available: vec![Time::ZERO; 12],
        };
        let mut dmda = Dmda::new();
        let w = dmda.assign(gemm, &ctx, &view);
        assert!(w >= 9, "GEMM belongs on an idle GPU, got worker {w}");
    }

    #[test]
    fn dmda_avoids_loaded_gpus() {
        let (graph, platform, profile) = ctx_fixture();
        let ctx = SchedContext {
            graph: &graph,
            platform: &platform,
            profile: &profile,
        };
        let gemm = graph.find(TaskCoords::Gemm { k: 0, i: 2, j: 1 }).unwrap();
        // GPUs busy for the next second; CPU GEMM takes 186 ms.
        let mut available = vec![Time::ZERO; 12];
        for a in available.iter_mut().skip(9) {
            *a = Time::from_secs(1);
        }
        let view = StaticView {
            now: Time::ZERO,
            available,
        };
        let mut dmda = Dmda::new();
        let w = dmda.assign(gemm, &ctx, &view);
        assert!(w < 9, "loaded GPUs should lose to an idle CPU, got {w}");
    }

    #[test]
    fn dmda_prefers_cpu_for_potrf_when_all_idle() {
        // POTRF is only 2x faster on GPU; with everything idle the GPU still
        // wins on raw time, so check the tie-breaking logic the other way:
        // make GPUs just busy enough that the CPU finishes first.
        let (graph, platform, profile) = ctx_fixture();
        let ctx = SchedContext {
            graph: &graph,
            platform: &platform,
            profile: &profile,
        };
        let potrf = graph.find(TaskCoords::Potrf { k: 0 }).unwrap();
        let mut available = vec![Time::ZERO; 12];
        for a in available.iter_mut().skip(9) {
            *a = Time::from_millis(40); // 40 + 29.5 > 59
        }
        let view = StaticView {
            now: Time::ZERO,
            available,
        };
        let w = Dmda::new().assign(potrf, &ctx, &view);
        assert!(w < 9, "CPU finishes POTRF first here, got {w}");
    }

    #[test]
    fn dmdas_priorities_follow_bottom_levels() {
        let (graph, platform, profile) = ctx_fixture();
        let ctx = SchedContext {
            graph: &graph,
            platform: &platform,
            profile: &profile,
        };
        let mut dmdas = Dmdas::new();
        dmdas.init(&ctx);
        assert!(dmdas.sorted_queues());
        // The first POTRF heads the longest chain: maximal priority.
        let potrf0 = graph.find(TaskCoords::Potrf { k: 0 }).unwrap();
        let max_prio = graph
            .tasks()
            .iter()
            .map(|t| dmdas.priority(t.id, &ctx))
            .max()
            .unwrap();
        assert_eq!(dmdas.priority(potrf0, &ctx), max_prio);
        // The last POTRF is an exit task: minimal bottom level among POTRFs.
        let potrf_last = graph.find(TaskCoords::Potrf { k: 4 }).unwrap();
        assert_eq!(
            dmdas.priority(potrf_last, &ctx),
            profile.fastest_time(Kernel::Potrf).as_nanos() as i64
        );
        // Priorities strictly decrease along every edge.
        for (from, to) in graph.edges() {
            assert!(dmdas.priority(from, &ctx) > dmdas.priority(to, &ctx));
        }
    }

    #[test]
    fn dmda_is_fifo_dmdas_is_sorted() {
        assert!(!Dmda::new().sorted_queues());
        assert!(Dmdas::new().sorted_queues());
        let (graph, platform, profile) = ctx_fixture();
        let ctx = SchedContext {
            graph: &graph,
            platform: &platform,
            profile: &profile,
        };
        // dmda gives every task priority zero.
        assert_eq!(Dmda::new().priority(TaskId(3), &ctx), 0);
    }
}
