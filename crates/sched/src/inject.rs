//! Injecting externally-computed schedules into the dynamic runtime.
//!
//! The paper (Sections V-C3 and VI-B) replays constraint-programming
//! solutions through StarPU in two flavours:
//!
//! * **full injection** ([`ScheduleInjector`]): both the task→worker
//!   mapping and the precise execution order are enforced — the paper
//!   observes the replayed performance matches the CP objective within 1%;
//! * **mapping-only injection** ([`MappingInjector`]): only the CPU/GPU
//!   placement is kept, ordering is left to the dynamic scheduler — the
//!   paper observes *no* improvement, showing the CP solution's value lies
//!   in its precise ordering.

use hetchol_core::platform::{ClassId, WorkerId};
use hetchol_core::schedule::Schedule;
use hetchol_core::scheduler::{ExecutionView, SchedContext, Scheduler};
use hetchol_core::task::TaskId;

/// Replay a complete schedule: fixed workers, fixed per-worker order.
///
/// Per-worker order is enforced *strictly*: a worker holds for its
/// planned-next task even when other ready tasks sit in its queue
/// (no backfilling), so a valid injected schedule replays with a makespan
/// no worse than the plan's — the paper's <1% replay fidelity.
pub struct ScheduleInjector {
    workers: Vec<WorkerId>,
    /// Higher = earlier: the negated start-order of the injected schedule.
    priorities: Vec<i64>,
    /// Planned task sequence of each worker, in start order.
    plan: Vec<Vec<TaskId>>,
    /// Next plan position per worker.
    cursor: Vec<usize>,
}

impl ScheduleInjector {
    /// Build an injector from an explicit schedule (one entry per task).
    pub fn new(schedule: &Schedule) -> ScheduleInjector {
        let n = schedule.len();
        let mut workers = vec![0usize; n];
        let mut priorities = vec![0i64; n];
        // Rank entries by start time (ties by task id for determinism).
        let mut order: Vec<_> = schedule.entries().to_vec();
        order.sort_by_key(|e| (e.start, e.task));
        let n_workers = order.iter().map(|e| e.worker + 1).max().unwrap_or(0);
        let mut plan = vec![Vec::new(); n_workers];
        for (rank, e) in order.iter().enumerate() {
            workers[e.task.index()] = e.worker;
            priorities[e.task.index()] = -(rank as i64);
            plan[e.worker].push(e.task);
        }
        ScheduleInjector {
            workers,
            priorities,
            cursor: vec![0; plan.len()],
            plan,
        }
    }
}

impl Scheduler for ScheduleInjector {
    fn name(&self) -> &str {
        "inject-schedule"
    }

    fn assign(&mut self, task: TaskId, _ctx: &SchedContext, _view: &dyn ExecutionView) -> WorkerId {
        self.workers[task.index()]
    }

    fn priority(&self, task: TaskId, _ctx: &SchedContext) -> i64 {
        self.priorities[task.index()]
    }

    fn sorted_queues(&self) -> bool {
        true
    }

    fn may_start(&mut self, task: TaskId, worker: WorkerId) -> bool {
        self.plan
            .get(worker)
            .and_then(|p| p.get(self.cursor[worker]))
            .is_some_and(|&next| next == task)
    }

    fn notify_start(&mut self, task: TaskId, worker: WorkerId) {
        debug_assert_eq!(self.plan[worker].get(self.cursor[worker]), Some(&task));
        self.cursor[worker] += 1;
    }
}

/// Keep only the class placement of a schedule; order and worker choice
/// within the class stay dynamic (minimum estimated completion, FIFO).
pub struct MappingInjector {
    classes: Vec<ClassId>,
}

impl MappingInjector {
    /// Build from an explicit schedule, retaining each task's class.
    pub fn new(schedule: &Schedule, ctx: &SchedContext) -> MappingInjector {
        let mut classes = vec![0usize; schedule.len()];
        for e in schedule.entries() {
            classes[e.task.index()] = ctx.platform.class_of(e.worker);
        }
        MappingInjector { classes }
    }

    /// Build directly from a class-per-task vector.
    pub fn from_classes(classes: Vec<ClassId>) -> MappingInjector {
        MappingInjector { classes }
    }
}

impl Scheduler for MappingInjector {
    fn name(&self) -> &str {
        "inject-mapping"
    }

    fn assign(&mut self, task: TaskId, ctx: &SchedContext, view: &dyn ExecutionView) -> WorkerId {
        view.min_completion_worker(
            task,
            ctx,
            ctx.platform.workers_in_class(self.classes[task.index()]),
        )
        .expect("mapped class has at least one worker")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetchol_core::dag::TaskGraph;
    use hetchol_core::platform::Platform;
    use hetchol_core::profiles::TimingProfile;
    use hetchol_core::schedule::ScheduleEntry;
    use hetchol_core::scheduler::StaticView;
    use hetchol_core::time::Time;

    fn fixture() -> (TaskGraph, Platform, TimingProfile) {
        (
            TaskGraph::cholesky(3),
            Platform::mirage().without_comm(),
            TimingProfile::mirage(),
        )
    }

    /// A synthetic schedule placing everything sequentially on worker 2.
    fn serial_schedule(graph: &TaskGraph, profile: &TimingProfile) -> Schedule {
        let mut t = Time::ZERO;
        Schedule::from_entries(
            graph
                .tasks()
                .iter()
                .map(|task| {
                    let d = profile.time(task.kernel(), 0);
                    let e = ScheduleEntry {
                        task: task.id,
                        worker: 2,
                        start: t,
                        end: t + d,
                    };
                    t += d;
                    e
                })
                .collect(),
        )
    }

    #[test]
    fn schedule_injector_reproduces_mapping_and_order() {
        let (graph, platform, profile) = fixture();
        let ctx = SchedContext {
            graph: &graph,
            platform: &platform,
            profile: &profile,
        };
        let sched = serial_schedule(&graph, &profile);
        let mut inj = ScheduleInjector::new(&sched);
        let view = StaticView::default();
        assert!(inj.sorted_queues());
        for t in graph.tasks() {
            assert_eq!(inj.assign(t.id, &ctx, &view), 2);
        }
        // Priorities strictly decrease in start order.
        let entries = sched.entries();
        for pair in entries.windows(2) {
            assert!(inj.priority(pair[0].task, &ctx) > inj.priority(pair[1].task, &ctx));
        }
    }

    #[test]
    fn mapping_injector_keeps_class_not_worker() {
        let (graph, platform, profile) = fixture();
        let ctx = SchedContext {
            graph: &graph,
            platform: &platform,
            profile: &profile,
        };
        let sched = serial_schedule(&graph, &profile); // all on CPU worker 2
        let mut inj = MappingInjector::new(&sched, &ctx);
        // CPU 2 loaded, CPU 5 idle: the injector may move within the class.
        let mut available = vec![Time::ZERO; 12];
        available[2] = Time::from_secs(1);
        let view = StaticView {
            now: Time::ZERO,
            available,
        };
        let w = inj.assign(graph.entry_tasks()[0], &ctx, &view);
        assert!(w < 9, "stays in CPU class");
        assert_ne!(w, 2, "free to pick a less-loaded CPU");
        assert!(!inj.sorted_queues(), "ordering stays dynamic");
    }

    #[test]
    fn mapping_injector_from_classes() {
        let (graph, platform, profile) = fixture();
        let ctx = SchedContext {
            graph: &graph,
            platform: &platform,
            profile: &profile,
        };
        let classes = vec![1usize; graph.len()];
        let mut inj = MappingInjector::from_classes(classes);
        let view = StaticView {
            now: Time::ZERO,
            available: vec![Time::ZERO; 12],
        };
        for t in graph.tasks() {
            let w = inj.assign(t.id, &ctx, &view);
            assert!(w >= 9, "class 1 = GPUs");
        }
    }
}
