//! Scheduler selection by *name* — the registry behind the serializable
//! job API.
//!
//! The `Run` builder accepts any `impl Scheduler`, which is the right
//! interface for library code but cannot travel over a wire. A serialized
//! `JobSpec` names its policy with a string instead and both the library
//! facade and `hetchol-serve` resolve it here, so a job submitted over
//! HTTP instantiates *exactly* the scheduler a direct library call would.
//!
//! Names are stable API: the dynamic policies are their paper names
//! (`random`, `eager`, `dmda`, `dmdas`), the static-knowledge hybrids take
//! their hint parameters after a colon (`gemmsyrk-gpu`,
//! `triangle:<k>` — both layered on `dmdas`, as in the paper's
//! Section V-C3 experiments).
//!
//! ```
//! use hetchol_sched::registry;
//!
//! let s = registry::build("triangle:3", 0).unwrap();
//! assert_eq!(s.name(), "triangle-trsm-cpu(k=3)");
//! assert!(registry::build("no-such-policy", 0).is_err());
//! ```

use crate::dm::{Dmda, Dmdas};
use crate::eager::EagerScheduler;
use crate::hints::{GemmSyrkOnGpu, TriangleTrsmOnCpu};
use crate::random::RandomScheduler;
use hetchol_core::scheduler::Scheduler;
use std::fmt;

/// The registry's resolvable scheduler names (parameterised entries shown
/// with their placeholder). Kept sorted for stable error messages.
pub const NAMES: [&str; 6] = [
    "dmda",
    "dmdas",
    "eager",
    "gemmsyrk-gpu",
    "random",
    "triangle:<k>",
];

/// A scheduler name the registry does not know.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownScheduler {
    /// The rejected name, verbatim.
    pub name: String,
}

impl fmt::Display for UnknownScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown scheduler {:?}; known: {}",
            self.name,
            NAMES.join(", ")
        )
    }
}

impl std::error::Error for UnknownScheduler {}

/// Instantiate the named scheduling policy. `seed` is consumed only by
/// stochastic policies (`random`); deterministic ones ignore it, so the
/// same name resolves to the same behaviour regardless of seed.
pub fn build(name: &str, seed: u64) -> Result<Box<dyn Scheduler + Send>, UnknownScheduler> {
    match name {
        "random" => Ok(Box::new(RandomScheduler::new(seed))),
        "eager" => Ok(Box::new(EagerScheduler::new())),
        "dmda" => Ok(Box::new(Dmda::new())),
        "dmdas" => Ok(Box::new(Dmdas::new())),
        "gemmsyrk-gpu" => Ok(Box::new(GemmSyrkOnGpu(Dmdas::new()))),
        _ => {
            if let Some(k) = name.strip_prefix("triangle:") {
                if let Ok(k) = k.parse::<u32>() {
                    return Ok(Box::new(TriangleTrsmOnCpu(Dmdas::new(), k)));
                }
            }
            Err(UnknownScheduler { name: name.into() })
        }
    }
}

/// Whether the named policy is stochastic (needs a seed / averaging even
/// in deterministic simulation mode). Unknown names are conservatively
/// `false`; resolve them through [`build`] first for a real error.
pub fn is_stochastic(name: &str) -> bool {
    name == "random"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_name_builds() {
        for name in [
            "random",
            "eager",
            "dmda",
            "dmdas",
            "gemmsyrk-gpu",
            "triangle:2",
        ] {
            assert!(build(name, 7).is_ok(), "{name} should resolve");
        }
    }

    #[test]
    fn unknown_names_error_with_catalog() {
        let err = build("dmdax", 0).err().expect("dmdax must not resolve");
        assert_eq!(err.name, "dmdax");
        let msg = err.to_string();
        assert!(msg.contains("dmdax") && msg.contains("dmdas"));
        // A malformed triangle parameter is an unknown name, not a panic.
        assert!(build("triangle:", 0).is_err());
        assert!(build("triangle:x", 0).is_err());
    }

    #[test]
    fn seed_only_affects_random() {
        use hetchol_core::dag::TaskGraph;
        use hetchol_core::platform::Platform;
        use hetchol_core::profiles::TimingProfile;
        use hetchol_core::scheduler::{SchedContext, StaticView};
        use hetchol_core::task::TaskId;

        let graph = TaskGraph::cholesky(3);
        let platform = Platform::mirage();
        let profile = TimingProfile::mirage();
        let ctx = SchedContext {
            graph: &graph,
            platform: &platform,
            profile: &profile,
        };
        let view = StaticView {
            now: hetchol_core::time::Time::ZERO,
            available: vec![hetchol_core::time::Time::ZERO; platform.n_workers()],
        };
        for name in ["dmda", "dmdas", "eager"] {
            let mut a = build(name, 1).unwrap();
            let mut b = build(name, 2).unwrap();
            a.init(&ctx);
            b.init(&ctx);
            assert_eq!(
                a.assign(TaskId(0), &ctx, &view),
                b.assign(TaskId(0), &ctx, &view),
                "{name} must ignore the seed"
            );
        }
    }
}
