//! Integration tests for exact bound certification: the paper-grid
//! acceptance sweep, float/exact agreement on random instances, and the
//! corruption suite the checker must reject.

use hetchol_bounds::cert::{certify_bound, BoundKind, LeafCert, LeafVerdict, Rat};
use hetchol_bounds::ilp::BranchStep;
use hetchol_bounds::{BoundSet, CertReject, Relation};
use hetchol_core::algorithm::Algorithm;
use hetchol_core::kernel::Kernel;
use hetchol_core::platform::{Platform, ResourceClass, ResourceKind};
use hetchol_core::profiles::TimingProfile;
use hetchol_core::time::Time;
use proptest::prelude::*;

/// `BoundSet` stores bounds as integer-nanosecond `Time`s, so the f64 and
/// exact values can differ by half an ns on top of simplex float error.
fn close(secs_f64: f64, exact: &Rat) -> bool {
    let e = exact.to_f64();
    (secs_f64 - e).abs() <= 1e-6 * secs_f64.abs().max(e.abs()) + 2e-9
}

/// Certify + verify a bound set and check the exact bounds agree with the
/// f64 ones.
fn certify_and_check(
    algo: Algorithm,
    n: usize,
    platform: &Platform,
    profile: &TimingProfile,
) -> hetchol_bounds::CertifiedBoundSet {
    let set = BoundSet::compute_algo(algo, n, platform, profile);
    let cert = set
        .certify(platform, profile)
        .unwrap_or_else(|e| panic!("certify {algo:?} n={n}: {e}"));
    let verified = cert
        .verify(platform, profile)
        .unwrap_or_else(|e| panic!("verify {algo:?} n={n}: {e}"));
    assert!(
        close(cert.set.area.as_secs_f64(), &verified.area),
        "{algo:?} n={n}: area f64 {} vs exact {}",
        cert.set.area.as_secs_f64(),
        verified.area
    );
    assert!(
        close(cert.set.mixed.as_secs_f64(), &verified.mixed),
        "{algo:?} n={n}: mixed f64 {} vs exact {}",
        cert.set.mixed.as_secs_f64(),
        verified.mixed
    );
    cert
}

#[test]
fn paper_grid_cholesky_on_mirage_is_fully_certified() {
    let platform = Platform::mirage().without_comm();
    let profile = TimingProfile::mirage();
    for n in 4..=16 {
        certify_and_check(Algorithm::Cholesky, n, &platform, &profile);
    }
}

#[test]
fn lu_and_qr_bounds_certify_on_mirage() {
    let platform = Platform::mirage().without_comm();
    let profile = TimingProfile::mirage();
    for algo in [Algorithm::Lu, Algorithm::Qr] {
        for n in [4, 8] {
            certify_and_check(algo, n, &platform, &profile);
        }
    }
}

#[test]
fn cpu_only_platform_certifies() {
    let platform = Platform::homogeneous(9);
    let profile = TimingProfile::mirage_homogeneous();
    for n in [4, 8, 12] {
        certify_and_check(Algorithm::Cholesky, n, &platform, &profile);
    }
}

#[test]
fn certificate_json_names_kind_bound_and_leaves() {
    let platform = Platform::mirage().without_comm();
    let profile = TimingProfile::mirage();
    let cert = certify_and_check(Algorithm::Cholesky, 4, &platform, &profile);
    let json = cert.area.to_json();
    assert!(json.contains("\"kind\":\"area\""), "{json}");
    assert!(json.contains("\"bound\":\""), "{json}");
    assert!(json.contains("\"tree_complete\":"), "{json}");
    assert!(json.contains("\"leaves\":["), "{json}");
    // The repo's JSON validator must accept the hand-rolled output.
    hetchol_core::obs::parse_json(&json).expect("certificate JSON parses");
}

fn random_platform_profile(
    n_classes: usize,
    counts: &[usize],
    ms: &[u64],
) -> (Platform, TimingProfile) {
    let classes: Vec<ResourceClass> = (0..n_classes)
        .map(|r| ResourceClass {
            name: format!("class{r}"),
            kind: if r == 0 {
                ResourceKind::Cpu
            } else {
                ResourceKind::Gpu
            },
            count: counts[r],
        })
        .collect();
    let platform = Platform::new(classes, None);
    let times: Vec<[Time; Kernel::COUNT]> = (0..n_classes)
        .map(|r| {
            let mut row = [Time::from_millis(1); Kernel::COUNT];
            for (t, slot) in row.iter_mut().enumerate() {
                *slot = Time::from_millis(ms[r * Kernel::COUNT + t]);
            }
            row
        })
        .collect();
    (platform, TimingProfile::new(960, times))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On random platforms and profiles the certified exact bounds agree
    /// with the f64 pipeline to 1e-6 relative, for both LP-backed bounds.
    #[test]
    fn certified_and_float_bounds_agree_on_random_instances(
        n_classes in 1usize..=3,
        counts in proptest::collection::vec(1usize..=8, 3..4),
        ms in proptest::collection::vec(1u64..=50, (3 * Kernel::COUNT)..(3 * Kernel::COUNT + 1)),
        n_tiles in 2usize..=6,
    ) {
        let (platform, profile) = random_platform_profile(n_classes, &counts, &ms);
        let set = BoundSet::compute_algo(Algorithm::Cholesky, n_tiles, &platform, &profile);
        let cert = set.certify(&platform, &profile).expect("certify");
        let verified = cert.verify(&platform, &profile).expect("verify");
        prop_assert!(
            close(cert.set.area.as_secs_f64(), &verified.area),
            "area f64 {} vs exact {}", cert.set.area.as_secs_f64(), verified.area
        );
        prop_assert!(
            close(cert.set.mixed.as_secs_f64(), &verified.mixed),
            "mixed f64 {} vs exact {}", cert.set.mixed.as_secs_f64(), verified.mixed
        );
    }
}

// --- Corruption suite: the checker must reject each seeded defect. ---

fn certified_mirage() -> (hetchol_bounds::CertifiedBoundSet, Platform, TimingProfile) {
    let platform = Platform::mirage().without_comm();
    let profile = TimingProfile::mirage();
    let set = BoundSet::compute(6, &platform, &profile);
    let cert = set.certify(&platform, &profile).expect("certify");
    (cert, platform, profile)
}

#[test]
fn checker_rejects_perturbed_dual() {
    let (mut cert, platform, profile) = certified_mirage();
    for leaf in &mut cert.area.leaves {
        if let LeafVerdict::Bounded { y, .. } = &mut leaf.verdict {
            y[0] = y[0].checked_add(Rat::ONE).unwrap();
            break;
        }
    }
    match cert.verify(&platform, &profile) {
        Err(CertReject::BadLeaf { .. }) => {}
        other => panic!("perturbed dual not rejected as BadLeaf: {other:?}"),
    }
}

#[test]
fn checker_rejects_wrong_rhs() {
    let (mut cert, platform, profile) = certified_mirage();
    let rhs = &mut cert.mixed.lp.rows[0].rhs;
    *rhs = rhs.checked_add(Rat::ONE).unwrap();
    match cert.verify(&platform, &profile) {
        Err(CertReject::LpMismatch) => {}
        other => panic!("wrong rhs not rejected as LpMismatch: {other:?}"),
    }
}

#[test]
fn checker_rejects_flipped_relation() {
    let (mut cert, platform, profile) = certified_mirage();
    let last = cert.area.lp.rows.len() - 1;
    cert.area.lp.rows[last].rel = Relation::Ge;
    match cert.verify(&platform, &profile) {
        Err(CertReject::LpMismatch) => {}
        other => panic!("flipped relation not rejected as LpMismatch: {other:?}"),
    }
}

#[test]
fn checker_rejects_bad_rounding_step() {
    // Replace the tree with two leaves whose branch bounds are NOT
    // complementary (x0 ≤ 2 vs x0 ≥ 4 leaves x0 = 3 uncovered) — the
    // integrality rounding argument `x ≤ k ∨ x ≥ k+1` is broken.
    let (mut cert, platform, profile) = certified_mirage();
    let verdict = cert.area.leaves[0].verdict.clone();
    cert.area.leaves = vec![
        LeafCert {
            path: vec![BranchStep {
                var: 0,
                ge: false,
                bound: 2,
            }],
            verdict: verdict.clone(),
        },
        LeafCert {
            path: vec![BranchStep {
                var: 0,
                ge: true,
                bound: 4,
            }],
            verdict,
        },
    ];
    match cert.verify(&platform, &profile) {
        Err(CertReject::BadTree(_)) => {}
        other => panic!("bad rounding step not rejected as BadTree: {other:?}"),
    }
}

#[test]
fn checker_rejects_truncated_certificate() {
    let (mut cert, platform, profile) = certified_mirage();
    cert.area.leaves.pop();
    match cert.verify(&platform, &profile) {
        Err(CertReject::BadTree(_)) => {}
        other => panic!("truncated certificate not rejected as BadTree: {other:?}"),
    }
}

#[test]
fn checker_rejects_inflated_bound_claim() {
    let (mut cert, platform, profile) = certified_mirage();
    cert.mixed.bound = cert.mixed.bound.checked_add(Rat::ONE).unwrap();
    match cert.verify(&platform, &profile) {
        Err(CertReject::WrongBound) => {}
        other => panic!("inflated bound not rejected as WrongBound: {other:?}"),
    }
}

#[test]
fn a_split_on_the_continuous_variable_is_rejected() {
    // Branching on the continuous makespan variable would not cover the
    // fractional values between the two branch bounds.
    let (mut cert, platform, profile) = certified_mirage();
    let l_var = platform.n_classes() * Kernel::COUNT;
    let verdict = cert.area.leaves[0].verdict.clone();
    cert.area.leaves = vec![
        LeafCert {
            path: vec![BranchStep {
                var: l_var,
                ge: false,
                bound: 2,
            }],
            verdict: verdict.clone(),
        },
        LeafCert {
            path: vec![BranchStep {
                var: l_var,
                ge: true,
                bound: 3,
            }],
            verdict,
        },
    ];
    match cert.verify(&platform, &profile) {
        Err(CertReject::BadTree(_)) => {}
        other => panic!("continuous split not rejected as BadTree: {other:?}"),
    }
}

#[test]
fn standalone_certify_bound_matches_boundset_path() {
    let platform = Platform::mirage().without_comm();
    let profile = TimingProfile::mirage();
    let set = BoundSet::compute(5, &platform, &profile);
    let cert = set.certify(&platform, &profile).expect("certify");
    let direct = certify_bound(BoundKind::Area, Algorithm::Cholesky, 5, &platform, &profile)
        .expect("direct certify");
    assert_eq!(direct.bound, cert.area.bound);
    assert_eq!(direct.lp, cert.area.lp);
}
