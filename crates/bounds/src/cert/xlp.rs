//! Exact rational linear programs and a two-phase Bland simplex over
//! [`Rat`], with dual-solution / Farkas-certificate extraction from the
//! final tableau.
//!
//! This is the *prover* side of the certification story: it produces the
//! `(x, y)` pairs (or infeasibility vectors) that the independent checker
//! in [`crate::cert::verify`] re-validates from scratch. The checker never
//! calls into this module — see the module docs over there.

use crate::cert::rat::{CertError, Rat};
use crate::simplex::Relation;

/// One exact linear constraint `coeffs · x REL rhs`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RatRow {
    /// Coefficients, always full-width (`n_vars` entries).
    pub coeffs: Vec<Rat>,
    /// Constraint relation.
    pub rel: Relation,
    /// Right-hand side.
    pub rhs: Rat,
}

/// An exact minimization LP over non-negative variables.
///
/// `PartialEq` is exact structural equality (canonical [`Rat`] form), which
/// the checker uses to compare a certificate's embedded LP against its own
/// independently rebuilt one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RatLp {
    /// Number of decision variables.
    pub n_vars: usize,
    /// Objective coefficients (length `n_vars`), always minimized.
    pub objective: Vec<Rat>,
    /// The constraint rows.
    pub rows: Vec<RatRow>,
}

/// Verdict of the exact solver on one LP.
#[derive(Clone, Debug)]
pub enum XlpOutcome {
    /// Optimal `x` with dual multipliers `y` (one per input row, stated for
    /// the *original* row orientation) proving optimality by strong duality:
    /// `c·x == y·b` with `Aᵀy ≤ c`, `y_i ≤ 0` on `≤` rows, `y_i ≥ 0` on `≥`
    /// rows, free on `=` rows.
    Optimal {
        /// Primal optimum.
        x: Vec<Rat>,
        /// Dual optimum (certificate of optimality).
        y: Vec<Rat>,
        /// The optimal objective value `c·x`.
        obj: Rat,
    },
    /// Infeasible, with a Farkas vector `y` (same sign conventions as the
    /// duals) satisfying `Aᵀy ≤ 0` and `y·b > 0`: no non-negative `x` can
    /// satisfy the rows.
    Infeasible {
        /// The Farkas infeasibility certificate.
        farkas: Vec<Rat>,
    },
    /// The objective is unbounded below over the feasible region.
    Unbounded,
}

/// Pivot budget per phase. Bland's rule cannot cycle in exact arithmetic,
/// so this is purely a backstop against absurdly large instances.
const MAX_PIVOTS: usize = 20_000;

/// Where each input row's dual multiplier lives in the final z-row:
/// `y_i = sign * z[col]` (for the *normalized* row orientation).
struct DualSlot {
    col: usize,
    sign: i64,
    /// Whether the row was negated to make its rhs non-negative; the
    /// reported dual is un-flipped accordingly.
    flipped: bool,
    /// The phase-1 slot: for rows with an artificial column `a`, the
    /// phase-1 dual is `1 - z1[a]`; for plain `≤` rows it is `-z1[slack]`.
    art: Option<usize>,
}

struct XTableau {
    /// `m × (n_cols + 1)` rows, last column is the RHS.
    rows: Vec<Vec<Rat>>,
    /// Reduced-cost row, length `n_cols + 1`.
    z: Vec<Rat>,
    basis: Vec<usize>,
    n_cols: usize,
}

impl XTableau {
    fn pivot(&mut self, row: usize, col: usize) -> Result<(), CertError> {
        let piv = self.rows[row][col];
        debug_assert!(!piv.is_zero(), "exact pivot on zero");
        for v in self.rows[row].iter_mut() {
            *v = v.checked_div(piv)?;
        }
        let pivot_row = self.rows[row].clone();
        for (r, current) in self.rows.iter_mut().enumerate() {
            if r == row {
                continue;
            }
            let factor = current[col];
            if factor.is_zero() {
                continue;
            }
            for (v, p) in current.iter_mut().zip(&pivot_row) {
                *v = v.checked_sub(factor.checked_mul(*p)?)?;
            }
        }
        let factor = self.z[col];
        if !factor.is_zero() {
            for (v, p) in self.z.iter_mut().zip(&pivot_row) {
                *v = v.checked_sub(factor.checked_mul(*p)?)?;
            }
        }
        self.basis[row] = col;
        Ok(())
    }

    /// Bland's rule pivot loop over the first `allowed_cols` columns.
    /// `Ok(true)` = optimal, `Ok(false)` = unbounded.
    fn optimize(&mut self, allowed_cols: usize) -> Result<bool, CertError> {
        for _ in 0..MAX_PIVOTS {
            let Some(col) = (0..allowed_cols).find(|&c| self.z[c].is_negative()) else {
                return Ok(true);
            };
            let mut best: Option<(Rat, usize, usize)> = None; // (ratio, basis var, row)
            for (r, row) in self.rows.iter().enumerate() {
                if row[col].is_positive() {
                    let ratio = row[self.n_cols].checked_div(row[col])?;
                    let better = match &best {
                        None => true,
                        Some((br, bb, _)) => ratio < *br || (ratio == *br && self.basis[r] < *bb),
                    };
                    if better {
                        best = Some((ratio, self.basis[r], r));
                    }
                }
            }
            let Some((_, _, row)) = best else {
                return Ok(false);
            };
            self.pivot(row, col)?;
        }
        Err(CertError::PivotLimit)
    }
}

/// Solve an exact minimization LP with the two-phase primal simplex method
/// and extract the dual (or Farkas) certificate from the final tableau.
pub(crate) fn solve_exact(lp: &RatLp) -> Result<XlpOutcome, CertError> {
    let n = lp.n_vars;
    let m = lp.rows.len();
    debug_assert!(lp.objective.len() == n);

    // Normalize rows to rhs ≥ 0, remembering which were negated.
    struct Norm {
        coeffs: Vec<Rat>,
        rel: Relation,
        rhs: Rat,
        flipped: bool,
    }
    let mut norm = Vec::with_capacity(m);
    for row in &lp.rows {
        debug_assert!(row.coeffs.len() == n);
        if row.rhs.is_negative() {
            let coeffs = row
                .coeffs
                .iter()
                .map(|c| c.checked_neg())
                .collect::<Result<Vec<_>, _>>()?;
            let rel = match row.rel {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
            norm.push(Norm {
                coeffs,
                rel,
                rhs: row.rhs.checked_neg()?,
                flipped: true,
            });
        } else {
            norm.push(Norm {
                coeffs: row.coeffs.clone(),
                rel: row.rel,
                rhs: row.rhs,
                flipped: false,
            });
        }
    }

    let n_slack = norm
        .iter()
        .filter(|r| matches!(r.rel, Relation::Le | Relation::Ge))
        .count();
    let n_art = norm
        .iter()
        .filter(|r| matches!(r.rel, Relation::Eq | Relation::Ge))
        .count();
    let n_cols = n + n_slack + n_art;

    let mut tab = XTableau {
        rows: Vec::with_capacity(m),
        z: vec![Rat::ZERO; n_cols + 1],
        basis: Vec::with_capacity(m),
        n_cols,
    };
    let mut slots = Vec::with_capacity(m);
    let mut art_cols = Vec::new();
    let mut next_slack = n;
    let mut next_art = n + n_slack;
    for r in &norm {
        let mut row = vec![Rat::ZERO; n_cols + 1];
        row[..n].copy_from_slice(&r.coeffs);
        row[n_cols] = r.rhs;
        match r.rel {
            Relation::Le => {
                row[next_slack] = Rat::ONE;
                tab.basis.push(next_slack);
                // z[slack] = 0 - y·e_i  ⟹  y_i = -z[slack].
                slots.push(DualSlot {
                    col: next_slack,
                    sign: -1,
                    flipped: r.flipped,
                    art: None,
                });
                next_slack += 1;
            }
            Relation::Ge => {
                row[next_slack] = Rat::new(-1, 1).expect("valid literal");
                // z[surplus] = 0 - y·(-e_i)  ⟹  y_i = +z[surplus].
                slots.push(DualSlot {
                    col: next_slack,
                    sign: 1,
                    flipped: r.flipped,
                    art: Some(next_art),
                });
                next_slack += 1;
                row[next_art] = Rat::ONE;
                tab.basis.push(next_art);
                art_cols.push(next_art);
                next_art += 1;
            }
            Relation::Eq => {
                row[next_art] = Rat::ONE;
                tab.basis.push(next_art);
                art_cols.push(next_art);
                // z[art] = 0 - y·e_i  ⟹  y_i = -z[art] (phase-2 cost 0).
                slots.push(DualSlot {
                    col: next_art,
                    sign: -1,
                    flipped: r.flipped,
                    art: Some(next_art),
                });
                next_art += 1;
            }
        }
        tab.rows.push(row);
    }

    // Phase 1: minimize the artificial sum.
    if !art_cols.is_empty() {
        for &a in &art_cols {
            tab.z[a] = Rat::ONE;
        }
        for (r, &b) in tab.basis.clone().iter().enumerate() {
            if !tab.z[b].is_zero() {
                let factor = tab.z[b];
                let row = tab.rows[r].clone();
                for (v, p) in tab.z.iter_mut().zip(&row) {
                    *v = v.checked_sub(factor.checked_mul(*p)?)?;
                }
            }
        }
        let bounded = tab.optimize(n_cols)?;
        debug_assert!(bounded, "artificial sum is bounded below by zero");
        let phase1_obj = tab.z[n_cols].checked_neg()?;
        if phase1_obj.is_positive() {
            // Infeasible: the phase-1 duals are a Farkas certificate. For a
            // row with artificial column a, y_i = 1 - z1[a]; for a plain ≤
            // row, y_i = -z1[slack]. Un-flip negated rows.
            let mut farkas = Vec::with_capacity(m);
            for slot in &slots {
                let y = match slot.art {
                    Some(a) => Rat::ONE.checked_sub(tab.z[a])?,
                    None => tab.z[slot.col].checked_neg()?,
                };
                farkas.push(if slot.flipped { y.checked_neg()? } else { y });
            }
            return Ok(XlpOutcome::Infeasible { farkas });
        }
        // Drive leftover (degenerate, value-zero) artificials out.
        for r in 0..tab.rows.len() {
            if art_cols.contains(&tab.basis[r]) {
                if let Some(col) = (0..n + n_slack).find(|&c| !tab.rows[r][c].is_zero()) {
                    tab.pivot(r, col)?;
                }
                // else: redundant row; the artificial stays basic at zero
                // and its phase-2 reduced cost stays zero (dual 0).
            }
        }
    }

    // Phase 2: install the real objective, priced out over the basis;
    // artificials are excluded from the entering-column search but their
    // z entries keep being updated, which is what the duals read.
    tab.z = vec![Rat::ZERO; n_cols + 1];
    tab.z[..n].copy_from_slice(&lp.objective);
    let allowed = n + n_slack;
    for (r, &b) in tab.basis.clone().iter().enumerate() {
        if !tab.z[b].is_zero() {
            let factor = tab.z[b];
            let row = tab.rows[r].clone();
            for (v, p) in tab.z.iter_mut().zip(&row) {
                *v = v.checked_sub(factor.checked_mul(*p)?)?;
            }
        }
    }
    if !tab.optimize(allowed)? {
        return Ok(XlpOutcome::Unbounded);
    }

    let mut x = vec![Rat::ZERO; n];
    for (r, &b) in tab.basis.iter().enumerate() {
        if b < n {
            x[b] = tab.rows[r][n_cols];
        }
    }
    let mut y = Vec::with_capacity(m);
    for slot in &slots {
        let mut v = tab.z[slot.col];
        if slot.sign < 0 {
            v = v.checked_neg()?;
        }
        if slot.flipped {
            v = v.checked_neg()?;
        }
        y.push(v);
    }
    let mut obj = Rat::ZERO;
    for (c, v) in lp.objective.iter().zip(&x) {
        obj = obj.checked_add(c.checked_mul(*v)?)?;
    }
    Ok(XlpOutcome::Optimal { x, y, obj })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rat {
        Rat::new(n, d).unwrap()
    }

    fn row(coeffs: Vec<i128>, rel: Relation, rhs: i128) -> RatRow {
        RatRow {
            coeffs: coeffs.into_iter().map(|c| r(c, 1)).collect(),
            rel,
            rhs: r(rhs, 1),
        }
    }

    /// Brute-force dual/weak-duality validation of an Optimal outcome.
    fn assert_duality(lp: &RatLp, out: &XlpOutcome) {
        let XlpOutcome::Optimal { x, y, obj } = out else {
            panic!("expected optimal, got {out:?}");
        };
        // Primal feasibility.
        for rw in &lp.rows {
            let mut lhs = Rat::ZERO;
            for (c, v) in rw.coeffs.iter().zip(x) {
                lhs = lhs.checked_add(c.checked_mul(*v).unwrap()).unwrap();
            }
            match rw.rel {
                Relation::Le => assert!(lhs <= rw.rhs),
                Relation::Ge => assert!(lhs >= rw.rhs),
                Relation::Eq => assert_eq!(lhs, rw.rhs),
            }
        }
        // Dual sign conventions + feasibility Aᵀy ≤ c.
        for (rw, yi) in lp.rows.iter().zip(y) {
            match rw.rel {
                Relation::Le => assert!(!yi.is_positive(), "≤ row dual must be ≤ 0"),
                Relation::Ge => assert!(!yi.is_negative(), "≥ row dual must be ≥ 0"),
                Relation::Eq => {}
            }
        }
        for j in 0..lp.n_vars {
            let mut col = Rat::ZERO;
            for (rw, yi) in lp.rows.iter().zip(y) {
                col = col
                    .checked_add(rw.coeffs[j].checked_mul(*yi).unwrap())
                    .unwrap();
            }
            assert!(col <= lp.objective[j], "dual infeasible at var {j}");
        }
        // Strong duality at the optimum.
        let mut yb = Rat::ZERO;
        for (rw, yi) in lp.rows.iter().zip(y) {
            yb = yb.checked_add(rw.rhs.checked_mul(*yi).unwrap()).unwrap();
        }
        assert_eq!(yb, *obj, "c·x != y·b");
    }

    #[test]
    fn textbook_min_with_ge() {
        // min 2x + 3y s.t. x + y ≥ 10, x ≤ 8, y ≤ 8  ⟹  (8, 2), obj 22.
        let lp = RatLp {
            n_vars: 2,
            objective: vec![r(2, 1), r(3, 1)],
            rows: vec![
                row(vec![1, 1], Relation::Ge, 10),
                row(vec![1, 0], Relation::Le, 8),
                row(vec![0, 1], Relation::Le, 8),
            ],
        };
        let out = solve_exact(&lp).unwrap();
        assert_duality(&lp, &out);
        let XlpOutcome::Optimal { x, obj, .. } = out else {
            unreachable!()
        };
        assert_eq!(obj, r(22, 1));
        assert_eq!(x, vec![r(8, 1), r(2, 1)]);
    }

    #[test]
    fn equalities_and_fractional_optimum() {
        // min x + 2y s.t. x + y = 5, x - y = 1 ⟹ (3, 2), obj 7; and a
        // fractional variant via rational rhs.
        let lp = RatLp {
            n_vars: 2,
            objective: vec![r(1, 1), r(2, 1)],
            rows: vec![
                row(vec![1, 1], Relation::Eq, 5),
                row(vec![1, -1], Relation::Eq, 1),
            ],
        };
        let out = solve_exact(&lp).unwrap();
        assert_duality(&lp, &out);
        let XlpOutcome::Optimal { obj, .. } = out else {
            unreachable!()
        };
        assert_eq!(obj, r(7, 1));

        let lp2 = RatLp {
            n_vars: 1,
            objective: vec![r(3, 1)],
            rows: vec![RatRow {
                coeffs: vec![r(2, 1)],
                rel: Relation::Ge,
                rhs: r(1, 3),
            }],
        };
        let out2 = solve_exact(&lp2).unwrap();
        assert_duality(&lp2, &out2);
        let XlpOutcome::Optimal { obj, .. } = out2 else {
            unreachable!()
        };
        assert_eq!(obj, r(1, 2)); // 3 · (1/6)
    }

    #[test]
    fn infeasible_yields_valid_farkas() {
        // x ≥ 5 and x ≤ 3: Farkas combination must prove emptiness.
        let lp = RatLp {
            n_vars: 1,
            objective: vec![r(1, 1)],
            rows: vec![row(vec![1], Relation::Ge, 5), row(vec![1], Relation::Le, 3)],
        };
        let XlpOutcome::Infeasible { farkas } = solve_exact(&lp).unwrap() else {
            panic!("expected infeasible");
        };
        // Sign conventions.
        assert!(!farkas[0].is_negative());
        assert!(!farkas[1].is_positive());
        // Aᵀy ≤ 0 and y·b > 0.
        let col = farkas[0].checked_add(farkas[1]).unwrap();
        assert!(!col.is_positive());
        let yb = farkas[0]
            .checked_mul(r(5, 1))
            .unwrap()
            .checked_add(farkas[1].checked_mul(r(3, 1)).unwrap())
            .unwrap();
        assert!(yb.is_positive());
    }

    #[test]
    fn negative_rhs_unflips_duals() {
        // min x s.t. -x ≤ -4 (x ≥ 4): the row gets normalized; the reported
        // dual must still certify against the ORIGINAL orientation.
        let lp = RatLp {
            n_vars: 1,
            objective: vec![r(1, 1)],
            rows: vec![row(vec![-1], Relation::Le, -4)],
        };
        let out = solve_exact(&lp).unwrap();
        assert_duality(&lp, &out);
        let XlpOutcome::Optimal { x, obj, .. } = out else {
            unreachable!()
        };
        assert_eq!(x, vec![r(4, 1)]);
        assert_eq!(obj, r(4, 1));
    }

    #[test]
    fn unbounded_detected() {
        // min -x with x ≥ 1 only.
        let lp = RatLp {
            n_vars: 1,
            objective: vec![r(-1, 1)],
            rows: vec![row(vec![1], Relation::Ge, 1)],
        };
        assert!(matches!(solve_exact(&lp), Ok(XlpOutcome::Unbounded)));
    }

    #[test]
    fn degenerate_beale_terminates_exactly() {
        // The Beale cycling instance, exact: Bland's rule must terminate at
        // the known optimum 1/20 (min form: -1/20).
        let lp = RatLp {
            n_vars: 4,
            objective: vec![r(-3, 4), r(150, 1), r(-1, 50), r(6, 1)],
            rows: vec![
                RatRow {
                    coeffs: vec![r(1, 4), r(-60, 1), r(-1, 25), r(9, 1)],
                    rel: Relation::Le,
                    rhs: Rat::ZERO,
                },
                RatRow {
                    coeffs: vec![r(1, 2), r(-90, 1), r(-1, 50), r(3, 1)],
                    rel: Relation::Le,
                    rhs: Rat::ZERO,
                },
                row(vec![0, 0, 1, 0], Relation::Le, 1),
            ],
        };
        let out = solve_exact(&lp).unwrap();
        assert_duality(&lp, &out);
        let XlpOutcome::Optimal { obj, .. } = out else {
            unreachable!()
        };
        assert_eq!(obj, r(-1, 20));
    }

    #[test]
    fn redundant_equalities_leave_zero_duals() {
        // x + y = 4 twice; min y ⟹ optimum 0. The redundant row's
        // artificial stays basic at zero and its dual must be zero-safe.
        let lp = RatLp {
            n_vars: 2,
            objective: vec![r(0, 1), r(1, 1)],
            rows: vec![
                row(vec![1, 1], Relation::Eq, 4),
                row(vec![2, 2], Relation::Eq, 8),
            ],
        };
        let out = solve_exact(&lp).unwrap();
        assert_duality(&lp, &out);
    }
}
