//! Overflow-checked exact rational arithmetic on `i128` numerators and
//! denominators.
//!
//! This is deliberately *not* a general bignum: the certified bound LPs are
//! built from integer-nanosecond kernel times (denominator `10^9`, reduced
//! by gcd), so every quantity the solver and checker touch fits easily in
//! `i128` after cross-reduction. Rather than silently wrapping or promoting,
//! every operation is checked and an [`CertError::Overflow`] is reported —
//! a certificate that cannot be computed exactly is *no certificate*, never
//! a wrong one.

use std::cmp::Ordering;
use std::fmt;

/// Failure of exact certificate construction or checking arithmetic.
///
/// None of these mean "the bound is wrong": they mean no exact statement
/// could be produced, and callers must degrade to the uncertified f64 path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertError {
    /// An exact numerator or denominator left the `i128` range. The module
    /// has no bignum promotion by design (offline, dependency-free); the
    /// error is explicit instead.
    Overflow,
    /// A zero denominator or division by an exact zero.
    DivisionByZero,
    /// The exact simplex exceeded its pivot budget. Bland's rule makes
    /// cycling impossible in exact arithmetic, so this only guards
    /// pathologically large instances.
    PivotLimit,
    /// A leaf LP was unbounded below; the bound LPs are bounded by
    /// construction (`l ≥ 0` with positive times), so this indicates a
    /// malformed problem rather than a property of the paper's bounds.
    Unbounded,
    /// Every branch-and-bound leaf was infeasible: the integer program has
    /// no solution, so there is no finite bound to certify.
    Infeasible,
    /// A float could not be represented exactly (non-finite input).
    NotRepresentable,
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertError::Overflow => write!(f, "exact arithmetic overflowed i128"),
            CertError::DivisionByZero => write!(f, "exact division by zero"),
            CertError::PivotLimit => write!(f, "exact simplex exceeded its pivot budget"),
            CertError::Unbounded => write!(f, "exact LP is unbounded"),
            CertError::Infeasible => write!(f, "integer program is infeasible"),
            CertError::NotRepresentable => write!(f, "value is not exactly representable"),
        }
    }
}

impl std::error::Error for CertError {}

/// An exact rational `num/den` with `den > 0`, always gcd-reduced.
///
/// Equality and ordering are exact; `PartialEq`/`Eq` can be derived because
/// the representation is canonical.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    // Plain Euclid on magnitudes; inputs are pre-checked to be < i128::MAX
    // in magnitude so `abs` cannot overflow.
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

impl Rat {
    /// Exact zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// Exact one.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Build `num/den` in canonical form (`den > 0`, reduced).
    pub fn new(num: i128, den: i128) -> Result<Rat, CertError> {
        if den == 0 {
            return Err(CertError::DivisionByZero);
        }
        // i128::MIN has no magnitude in-range; reject rather than wrap.
        if num == i128::MIN || den == i128::MIN {
            return Err(CertError::Overflow);
        }
        let sign = if (num < 0) != (den < 0) { -1 } else { 1 };
        let (num, den) = (num.abs(), den.abs());
        let g = gcd(num, den);
        Ok(Rat {
            num: sign * (num / g),
            den: den / g,
        })
    }

    /// Exact integer.
    pub fn from_int(v: i64) -> Rat {
        Rat {
            num: v as i128,
            den: 1,
        }
    }

    /// Exact seconds from an integer nanosecond count (the repo's `Time`
    /// representation), i.e. `ns / 10^9`.
    pub fn from_nanos(ns: u64) -> Rat {
        Rat::new(ns as i128, 1_000_000_000).expect("10^9 denominator is valid")
    }

    /// Exact value of a finite f64 (every finite f64 is a dyadic rational).
    /// Fails with [`CertError::NotRepresentable`] on NaN/infinity and with
    /// [`CertError::Overflow`] when the dyadic form exceeds `i128`.
    pub fn try_from_f64(v: f64) -> Result<Rat, CertError> {
        if !v.is_finite() {
            return Err(CertError::NotRepresentable);
        }
        let mut scaled = v;
        let mut den: i128 = 1;
        while scaled.fract() != 0.0 {
            scaled *= 2.0;
            den = den.checked_mul(2).ok_or(CertError::Overflow)?;
        }
        if scaled.abs() >= i128::MAX as f64 {
            return Err(CertError::Overflow);
        }
        Rat::new(scaled as i128, den)
    }

    /// Numerator (canonical form).
    pub fn num(&self) -> i128 {
        self.num
    }

    /// Denominator (canonical form, always positive).
    pub fn den(&self) -> i128 {
        self.den
    }

    /// `self == 0`.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// `self < 0`.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// `self > 0`.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// Nearest f64 (for reporting only; never used in verification).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Exact negation.
    pub fn checked_neg(self) -> Result<Rat, CertError> {
        Ok(Rat {
            num: self.num.checked_neg().ok_or(CertError::Overflow)?,
            den: self.den,
        })
    }

    /// Exact sum. Cross-reduces by `gcd(den, den)` first to delay overflow.
    pub fn checked_add(self, o: Rat) -> Result<Rat, CertError> {
        let g = gcd(self.den, o.den);
        let (da, db) = (self.den / g, o.den / g);
        let l = self.num.checked_mul(db).ok_or(CertError::Overflow)?;
        let r = o.num.checked_mul(da).ok_or(CertError::Overflow)?;
        let num = l.checked_add(r).ok_or(CertError::Overflow)?;
        let den = self.den.checked_mul(db).ok_or(CertError::Overflow)?;
        Rat::new(num, den)
    }

    /// Exact difference.
    pub fn checked_sub(self, o: Rat) -> Result<Rat, CertError> {
        self.checked_add(o.checked_neg()?)
    }

    /// Exact product. Cross-reduces `num/den'` and `num'/den` first.
    pub fn checked_mul(self, o: Rat) -> Result<Rat, CertError> {
        let g1 = gcd(self.num, o.den);
        let g2 = gcd(o.num, self.den);
        let (g1, g2) = (g1.max(1), g2.max(1));
        let num = (self.num / g1)
            .checked_mul(o.num / g2)
            .ok_or(CertError::Overflow)?;
        let den = (self.den / g2)
            .checked_mul(o.den / g1)
            .ok_or(CertError::Overflow)?;
        Rat::new(num, den)
    }

    /// Exact quotient.
    pub fn checked_div(self, o: Rat) -> Result<Rat, CertError> {
        if o.is_zero() {
            return Err(CertError::DivisionByZero);
        }
        self.checked_mul(Rat {
            num: o.den * o.num.signum(),
            den: o.num.abs(),
        })
    }
}

/// Exact comparison of `an/ad` vs `bn/bd` (`ad, bd > 0`, `an, bn ≥ 0`)
/// without cross-multiplying: compare integer parts, then recurse on the
/// reciprocals of the fractional remainders (the continued-fraction
/// expansion). Terminates because the denominators strictly shrink.
fn cmp_nonneg(an: i128, ad: i128, bn: i128, bd: i128) -> Ordering {
    let (qa, qb) = (an / ad, bn / bd);
    if qa != qb {
        return qa.cmp(&qb);
    }
    let (ra, rb) = (an % ad, bn % bd);
    match (ra == 0, rb == 0) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        // fa = ra/ad and fb = rb/bd are in (0,1); fa < fb ⟺ ad/ra > bd/rb.
        (false, false) => cmp_nonneg(bd, rb, ad, ra),
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        // Sign fast paths keep the recursion on non-negative operands.
        match (self.num.signum(), other.num.signum()) {
            (a, b) if a != b => return a.cmp(&b),
            (0, 0) => return Ordering::Equal,
            _ => {}
        }
        if self.num >= 0 {
            cmp_nonneg(self.num, self.den, other.num, other.den)
        } else {
            cmp_nonneg(-other.num, other.den, -self.num, self.den)
        }
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(n: i128, d: i128) -> Rat {
        Rat::new(n, d).unwrap()
    }

    #[test]
    fn canonical_form() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, -7), Rat::ZERO);
        assert_eq!(r(6, 3).to_string(), "2");
        assert_eq!(r(-1, 3).to_string(), "-1/3");
    }

    #[test]
    fn arithmetic_identities() {
        let a = r(1, 3);
        let b = r(1, 6);
        assert_eq!(a.checked_add(b).unwrap(), r(1, 2));
        assert_eq!(a.checked_sub(b).unwrap(), b);
        assert_eq!(a.checked_mul(b).unwrap(), r(1, 18));
        assert_eq!(a.checked_div(b).unwrap(), r(2, 1));
        assert_eq!(a.checked_neg().unwrap(), r(-1, 3));
    }

    #[test]
    fn explicit_errors() {
        assert_eq!(Rat::new(1, 0), Err(CertError::DivisionByZero));
        assert_eq!(
            r(1, 2).checked_div(Rat::ZERO),
            Err(CertError::DivisionByZero)
        );
        let huge = r(i128::MAX, 1);
        assert_eq!(huge.checked_add(Rat::ONE), Err(CertError::Overflow));
        assert_eq!(huge.checked_mul(r(2, 1)), Err(CertError::Overflow));
        assert_eq!(
            Rat::try_from_f64(f64::NAN),
            Err(CertError::NotRepresentable)
        );
        assert_eq!(
            Rat::try_from_f64(f64::INFINITY),
            Err(CertError::NotRepresentable)
        );
    }

    #[test]
    fn nanos_and_dyadic_conversions() {
        assert_eq!(Rat::from_nanos(500_000_000), r(1, 2));
        assert_eq!(Rat::from_nanos(0), Rat::ZERO);
        assert_eq!(Rat::try_from_f64(0.25).unwrap(), r(1, 4));
        assert_eq!(Rat::try_from_f64(-3.0).unwrap(), r(-3, 1));
        // 0.1 is not exactly 1/10 in binary: the dyadic expansion is exact.
        let tenth = Rat::try_from_f64(0.1).unwrap();
        assert_ne!(tenth, r(1, 10));
        assert_eq!(tenth.to_f64(), 0.1);
    }

    #[test]
    fn comparison_survives_cross_multiplication_overflow() {
        // Denominators near 2^63: naive cross-multiplication would overflow
        // i128; the continued-fraction comparison must not.
        let big = 1i128 << 100;
        let a = r(big + 1, big);
        let b = r(big + 2, big + 1);
        // (big+1)/big > (big+2)/(big+1)  ⟺  (big+1)^2 > big(big+2)  (true).
        assert_eq!(a.cmp(&b), Ordering::Greater);
        assert_eq!(b.cmp(&a), Ordering::Less);
        assert_eq!(a.cmp(&a), Ordering::Equal);
        assert!(r(-1, big) < r(1, big + 1));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn cmp_matches_f64_on_small_rationals(
            an in -1000i64..1000, ad in 1i64..1000,
            bn in -1000i64..1000, bd in 1i64..1000,
        ) {
            let a = r(an as i128, ad as i128);
            let b = r(bn as i128, bd as i128);
            let exact = a.cmp(&b);
            let float = (an as f64 / ad as f64)
                .partial_cmp(&(bn as f64 / bd as f64))
                .unwrap();
            // f64 is exact for these magnitudes only when the quotients are
            // distinguishable; equality is exact in both.
            if a != b {
                prop_assert_eq!(exact, float);
            } else {
                prop_assert_eq!(exact, Ordering::Equal);
            }
        }

        #[test]
        fn field_axioms_hold(
            an in -100i64..100, ad in 1i64..100,
            bn in -100i64..100, bd in 1i64..100,
        ) {
            let a = r(an as i128, ad as i128);
            let b = r(bn as i128, bd as i128);
            prop_assert_eq!(
                a.checked_add(b).unwrap(),
                b.checked_add(a).unwrap()
            );
            prop_assert_eq!(
                a.checked_sub(b).unwrap().checked_add(b).unwrap(),
                a
            );
            prop_assert_eq!(
                a.checked_mul(b).unwrap(),
                b.checked_mul(a).unwrap()
            );
            if !b.is_zero() {
                prop_assert_eq!(
                    a.checked_div(b).unwrap().checked_mul(b).unwrap(),
                    a
                );
            }
        }
    }
}
