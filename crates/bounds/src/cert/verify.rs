//! The independent certificate checker.
//!
//! This module deliberately shares no code with the exact solver
//! ([`super::xlp`]) or the builder-side LP construction in `cert/mod.rs`:
//! it rebuilds the LP from the platform/profile ground truth with its own
//! code, walks the branch tree with its own cover check, and validates
//! every leaf proof by evaluating rational inequalities only. A bug in the
//! solver (or in the builder) therefore cannot self-certify — the two
//! implementations would have to agree on the wrong answer independently.
//!
//! Keep it that way: do NOT "deduplicate" this file against the builder.

use super::rat::{CertError, Rat};
use super::xlp::{RatLp, RatRow};
use super::{BoundCertificate, LeafVerdict};
use crate::ilp::BranchStep;
use crate::simplex::Relation;
use hetchol_core::algorithm::Algorithm;
use hetchol_core::kernel::Kernel;
use hetchol_core::platform::Platform;
use hetchol_core::profiles::TimingProfile;

/// Why the checker refused a certificate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertReject {
    /// A certificate was presented for the wrong bound kind.
    WrongKind,
    /// The embedded LP differs from the one rebuilt from ground truth
    /// (wrong coefficient, rhs, relation, or shape).
    LpMismatch,
    /// The branch tree's leaves do not partition the integer search space.
    BadTree(String),
    /// A specific leaf proof failed (index + reason).
    BadLeaf {
        /// Index into `cert.leaves`.
        leaf: usize,
        /// Human-readable description of the failed check.
        reason: String,
    },
    /// The claimed bound is not the minimum of the verified leaf bounds.
    WrongBound,
    /// Exact arithmetic overflowed while evaluating the certificate.
    Arithmetic(CertError),
}

impl std::fmt::Display for CertReject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertReject::WrongKind => write!(f, "certificate is for the wrong bound kind"),
            CertReject::LpMismatch => {
                write!(f, "embedded LP does not match the ground-truth rebuild")
            }
            CertReject::BadTree(why) => write!(f, "branch tree is not a cover: {why}"),
            CertReject::BadLeaf { leaf, reason } => {
                write!(f, "leaf {leaf} proof rejected: {reason}")
            }
            CertReject::WrongBound => {
                write!(f, "claimed bound is not the minimum over verified leaves")
            }
            CertReject::Arithmetic(e) => write!(f, "exact arithmetic failed: {e}"),
        }
    }
}

impl std::error::Error for CertReject {}

impl From<CertError> for CertReject {
    fn from(e: CertError) -> Self {
        CertReject::Arithmetic(e)
    }
}

/// Rebuild the exact bound LP from ground truth — the checker's own
/// implementation, intentionally written independently of
/// [`super::exact_bound_lp`].
fn rebuild_lp(
    mixed: bool,
    algo: Algorithm,
    n_tiles: usize,
    platform: &Platform,
    profile: &TimingProfile,
) -> Result<RatLp, CertError> {
    let classes = platform.classes();
    let n_assign = classes.len() * Kernel::COUNT;
    let n_vars = n_assign + 1;

    let mut rows: Vec<RatRow> = Vec::new();

    // Count rows: for each kernel type, the per-class assignments sum to
    // the algorithm's task count. Column j = r * COUNT + t encodes
    // (class r, kernel t); the makespan variable sits at column n_assign.
    let counts = algo.counts(n_tiles);
    for (ti, t) in Kernel::ALL.iter().enumerate() {
        let coeffs = (0..n_vars)
            .map(|j| {
                if j < n_assign && j % Kernel::COUNT == t.index() {
                    Rat::ONE
                } else {
                    Rat::ZERO
                }
            })
            .collect();
        rows.push(RatRow {
            coeffs,
            rel: Relation::Eq,
            rhs: Rat::from_int(counts[ti] as i64),
        });
    }

    // Capacity rows: class r's assigned work fits in l across its workers,
    // Σ_t T_rt·n_rt − M_r·l ≤ 0, with T_rt taken from the integer-ns times.
    for (r, class) in classes.iter().enumerate() {
        let mut coeffs = vec![Rat::ZERO; n_vars];
        for (j, c) in coeffs.iter_mut().enumerate().take(n_assign) {
            if j / Kernel::COUNT == r {
                let t = Kernel::ALL[j % Kernel::COUNT];
                *c = Rat::from_nanos(profile.time(t, r).as_nanos());
            }
        }
        coeffs[n_assign] = Rat::ZERO.checked_sub(Rat::from_int(class.count as i64))?;
        rows.push(RatRow {
            coeffs,
            rel: Relation::Le,
            rhs: Rat::ZERO,
        });
    }

    // Mixed bound only: l − Σ_r T_r,diag·n_r,diag ≥ (n−1)·Σ_chain min_r T.
    if mixed {
        let diag = algo.diag_kernel();
        let mut tail = Rat::ZERO;
        for &k in algo.chain_kernels() {
            tail = tail.checked_add(Rat::from_nanos(profile.fastest_time(k).as_nanos()))?;
        }
        let mut coeffs = vec![Rat::ZERO; n_vars];
        for r in 0..classes.len() {
            let t = Rat::from_nanos(profile.time(diag, r).as_nanos());
            coeffs[r * Kernel::COUNT + diag.index()] = Rat::ZERO.checked_sub(t)?;
        }
        coeffs[n_assign] = Rat::ONE;
        rows.push(RatRow {
            coeffs,
            rel: Relation::Ge,
            rhs: Rat::from_int(n_tiles as i64 - 1).checked_mul(tail)?,
        });
    }

    let objective = (0..n_vars)
        .map(|j| if j == n_assign { Rat::ONE } else { Rat::ZERO })
        .collect();
    Ok(RatLp {
        n_vars,
        objective,
        rows,
    })
}

/// Check that a set of branch paths partitions the integer search space.
///
/// A valid (sub)tree is either a single leaf reached by an empty remaining
/// path, or every remaining path starts by splitting one shared variable
/// `v` into `v ≤ k` / `v ≥ k+1` — which covers all integer values of `v`
/// precisely because `v` is integer-constrained (`v < n_int_vars`); a
/// split on the continuous makespan variable would leave fractional values
/// uncovered and is rejected.
fn cover_rec(paths: &[&[BranchStep]], n_int_vars: usize) -> Result<(), String> {
    if paths.is_empty() {
        return Err("a subtree has no covering leaf (truncated certificate?)".into());
    }
    if paths.iter().any(|p| p.is_empty()) {
        return if paths.len() == 1 {
            Ok(())
        } else {
            Err("a leaf overlaps another leaf's subtree".into())
        };
    }
    let first = paths[0][0];
    let (var, bound) = if first.ge {
        (first.var, first.bound - 1)
    } else {
        (first.var, first.bound)
    };
    if var >= n_int_vars {
        return Err(format!(
            "branch on variable {var} which is not integer-constrained"
        ));
    }
    let mut le: Vec<&[BranchStep]> = Vec::new();
    let mut ge: Vec<&[BranchStep]> = Vec::new();
    for p in paths {
        let s = p[0];
        if s.var != var {
            return Err(format!(
                "sibling leaves branch on different variables ({} vs {var})",
                s.var
            ));
        }
        if !s.ge && s.bound == bound {
            le.push(&p[1..]);
        } else if s.ge && s.bound == bound + 1 {
            ge.push(&p[1..]);
        } else {
            return Err(format!(
                "branch bounds on variable {var} are not complementary"
            ));
        }
    }
    if le.is_empty() || ge.is_empty() {
        return Err(format!(
            "one side of the split on variable {var} is uncovered"
        ));
    }
    cover_rec(&le, n_int_vars)?;
    cover_rec(&ge, n_int_vars)
}

/// The rows of one leaf's LP: the root rows plus one bound row per branch
/// step (the checker's own materialisation).
fn leaf_rows(root: &RatLp, path: &[BranchStep]) -> Vec<RatRow> {
    let mut rows = root.rows.clone();
    for s in path {
        let mut coeffs = vec![Rat::ZERO; root.n_vars];
        coeffs[s.var] = Rat::ONE;
        rows.push(RatRow {
            coeffs,
            rel: if s.ge { Relation::Ge } else { Relation::Le },
            rhs: Rat::from_int(s.bound),
        });
    }
    rows
}

/// Exact dot product, or an arithmetic rejection.
fn dot(a: &[Rat], b: &[Rat]) -> Result<Rat, CertError> {
    let mut acc = Rat::ZERO;
    for (x, y) in a.iter().zip(b) {
        acc = acc.checked_add(x.checked_mul(*y)?)?;
    }
    Ok(acc)
}

/// Verify one leaf's duality (or Farkas) proof against its exact rows.
/// Returns the certified leaf lower bound, or `None` for a proven-empty
/// leaf (which contributes `+∞` to the tree minimum).
fn check_leaf(lp: &RatLp, rows: &[RatRow], verdict: &LeafVerdict) -> Result<Option<Rat>, String> {
    let arith = |e: CertError| format!("exact arithmetic failed: {e}");
    match verdict {
        LeafVerdict::Bounded { x, y, dual_obj } => {
            // Primal witness: right shape, non-negative, satisfies rows.
            if x.len() != lp.n_vars {
                return Err(format!("primal witness has {} entries", x.len()));
            }
            if x.iter().any(|v| v.is_negative()) {
                return Err("primal witness has a negative entry".into());
            }
            for (i, row) in rows.iter().enumerate() {
                let lhs = dot(&row.coeffs, x).map_err(arith)?;
                let ok = match row.rel {
                    Relation::Le => lhs <= row.rhs,
                    Relation::Ge => lhs >= row.rhs,
                    Relation::Eq => lhs == row.rhs,
                };
                if !ok {
                    return Err(format!("primal witness violates row {i}"));
                }
            }
            // Dual signs: for a minimisation, multipliers on ≤ rows must
            // be ≤ 0 and on ≥ rows ≥ 0 (equality rows are free).
            if y.len() != rows.len() {
                return Err(format!("dual vector has {} entries", y.len()));
            }
            for (i, (yi, row)) in y.iter().zip(rows).enumerate() {
                let ok = match row.rel {
                    Relation::Le => !yi.is_positive(),
                    Relation::Ge => !yi.is_negative(),
                    Relation::Eq => true,
                };
                if !ok {
                    return Err(format!("dual multiplier {i} has the wrong sign"));
                }
            }
            // Dual feasibility: Aᵀy ≤ c componentwise.
            for j in 0..lp.n_vars {
                let mut aty = Rat::ZERO;
                for (yi, row) in y.iter().zip(rows) {
                    aty = aty
                        .checked_add(yi.checked_mul(row.coeffs[j]).map_err(arith)?)
                        .map_err(arith)?;
                }
                if aty > lp.objective[j] {
                    return Err(format!("dual infeasible at column {j}"));
                }
            }
            // The claimed bound is exactly y·b, and weak duality holds.
            let rhs: Vec<Rat> = rows.iter().map(|r| r.rhs).collect();
            let yb = dot(y, &rhs).map_err(arith)?;
            if yb != *dual_obj {
                return Err("claimed dual objective is not y·b".into());
            }
            let cx = dot(&lp.objective, x).map_err(arith)?;
            if *dual_obj > cx {
                return Err("weak duality violated (y·b > c·x)".into());
            }
            Ok(Some(*dual_obj))
        }
        LeafVerdict::Infeasible { farkas } => {
            // Farkas: same sign pattern as a dual vector, Aᵀw ≤ 0, and
            // w·b > 0 — together impossible for any feasible x ≥ 0.
            if farkas.len() != rows.len() {
                return Err(format!("Farkas vector has {} entries", farkas.len()));
            }
            for (i, (wi, row)) in farkas.iter().zip(rows).enumerate() {
                let ok = match row.rel {
                    Relation::Le => !wi.is_positive(),
                    Relation::Ge => !wi.is_negative(),
                    Relation::Eq => true,
                };
                if !ok {
                    return Err(format!("Farkas multiplier {i} has the wrong sign"));
                }
            }
            for j in 0..lp.n_vars {
                let mut atw = Rat::ZERO;
                for (wi, row) in farkas.iter().zip(rows) {
                    atw = atw
                        .checked_add(wi.checked_mul(row.coeffs[j]).map_err(arith)?)
                        .map_err(arith)?;
                }
                if atw.is_positive() {
                    return Err(format!("Farkas combination is positive at column {j}"));
                }
            }
            let rhs: Vec<Rat> = rows.iter().map(|r| r.rhs).collect();
            let wb = dot(farkas, &rhs).map_err(arith)?;
            if !wb.is_positive() {
                return Err("Farkas product w·b is not positive".into());
            }
            Ok(None)
        }
    }
}

/// Verify a [`BoundCertificate`] against the ground truth it claims to
/// bound. On success returns the exact bound the checker itself derived
/// (equal, by the final check, to `cert.bound`).
pub fn verify_certificate(
    cert: &BoundCertificate,
    algo: Algorithm,
    n_tiles: usize,
    platform: &Platform,
    profile: &TimingProfile,
) -> Result<Rat, CertReject> {
    // 1. The LP in the certificate must be the ground-truth LP.
    let rebuilt = rebuild_lp(
        cert.kind == super::BoundKind::Mixed,
        algo,
        n_tiles,
        platform,
        profile,
    )?;
    if rebuilt != cert.lp {
        return Err(CertReject::LpMismatch);
    }

    // 2. The leaves must partition the integer search space.
    let n_int_vars = platform.n_classes() * Kernel::COUNT;
    let paths: Vec<&[BranchStep]> = cert.leaves.iter().map(|l| l.path.as_slice()).collect();
    cover_rec(&paths, n_int_vars).map_err(CertReject::BadTree)?;

    // 3. Every leaf proof must hold against its own exact rows.
    let mut best: Option<Rat> = None;
    for (i, leaf) in cert.leaves.iter().enumerate() {
        let rows = leaf_rows(&cert.lp, &leaf.path);
        match check_leaf(&cert.lp, &rows, &leaf.verdict) {
            Ok(Some(b)) => {
                best = Some(match best {
                    Some(cur) if cur <= b => cur,
                    _ => b,
                });
            }
            Ok(None) => {}
            Err(reason) => return Err(CertReject::BadLeaf { leaf: i, reason }),
        }
    }

    // 4. The claimed bound must be exactly the minimum over the leaves.
    match best {
        Some(b) if b == cert.bound => Ok(b),
        _ => Err(CertReject::WrongBound),
    }
}
