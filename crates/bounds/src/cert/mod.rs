//! Exact-arithmetic certification of the paper's LP/ILP lower bounds.
//!
//! Every area/mixed bound the repo reports comes out of an f64 two-phase
//! simplex plus branch-and-bound, so a lint verdict like "this schedule
//! beats the lower bound" could be float slop rather than a real anomaly.
//! This module closes that gap with machine-checkable proofs:
//!
//! 1. [`rat`] — hand-rolled overflow-checked rational arithmetic
//!    (`i128` numerator/denominator, gcd-normalized, explicit promotion
//!    errors; no external bigint, per the offline dependency policy).
//! 2. [`xlp`] — the *prover*: an exact two-phase Bland simplex over the
//!    rationals that extracts dual solutions (and Farkas infeasibility
//!    vectors) from its final tableau.
//! 3. [`verify`] — the *independent checker*: re-verifies primal
//!    feasibility, dual feasibility and weak duality of every certificate
//!    purely by evaluating rational inequalities. It rebuilds the LP from
//!    the platform/profile ground truth on its own and never calls the
//!    solver, so a solver bug cannot self-certify.
//!
//! The exact LPs are built from the *integer-nanosecond* kernel times (the
//! repo's `Time` representation), not from the f64 coefficients — the
//! certificate speaks about the true problem, with denominators that stay
//! tiny after gcd reduction.
//!
//! The ILP bounds are certified by replaying the recorded branch-and-bound
//! tree: the leaves partition the integer search space (each branch splits
//! `x ≤ k ∨ x ≥ k+1`, the integrality rounding argument), so `min` over the
//! leaves' exact LP dual objectives — with infeasible leaves discharged by
//! Farkas certificates — is a proven lower bound on the integer optimum.

pub mod rat;
pub mod verify;
pub mod xlp;

use crate::bounds::{area_lp, mixed_lp, rounded_incumbent, BoundSet, BOUND_REL_GAP, NODE_LIMIT};
use crate::ilp::{solve_ilp_traced, BranchStep};
use crate::simplex::Relation;
use hetchol_core::algorithm::Algorithm;
use hetchol_core::kernel::Kernel;
use hetchol_core::platform::Platform;
use hetchol_core::profiles::TimingProfile;

pub use rat::{CertError, Rat};
pub use verify::{verify_certificate, CertReject};
pub use xlp::{RatLp, RatRow};

use xlp::{solve_exact, XlpOutcome};

/// Which of the two LP-based bounds a certificate speaks about.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BoundKind {
    /// The Section III-A area bound (work conservation per class).
    Area,
    /// The mixed bound (area + diagonal-chain constraint).
    Mixed,
}

impl BoundKind {
    /// Stable lowercase name (used in JSON reports).
    pub fn name(&self) -> &'static str {
        match self {
            BoundKind::Area => "area",
            BoundKind::Mixed => "mixed",
        }
    }
}

/// The proof attached to one branch-and-bound leaf.
#[derive(Clone, Debug)]
pub enum LeafVerdict {
    /// The leaf LP is feasible with optimum `dual_obj`: `x` witnesses
    /// primal feasibility and `y` is a dual-feasible vector with
    /// `y·b = dual_obj ≤ c·x`, so `dual_obj` lower-bounds the leaf.
    Bounded {
        /// Primal witness (feasible for the leaf LP).
        x: Vec<Rat>,
        /// Dual-feasible multipliers, one per leaf-LP row.
        y: Vec<Rat>,
        /// The certified leaf lower bound `y·b`.
        dual_obj: Rat,
    },
    /// The leaf LP is empty: `farkas` combines the rows into `0 ≤ lhs` with
    /// a positive rhs, so the leaf contributes `+∞` to the minimum.
    Infeasible {
        /// The Farkas infeasibility vector, one entry per leaf-LP row.
        farkas: Vec<Rat>,
    },
}

/// One leaf of the branch-and-bound tree together with its proof.
#[derive(Clone, Debug)]
pub struct LeafCert {
    /// Branching path from the root (empty = the root itself).
    pub path: Vec<BranchStep>,
    /// The leaf's duality or infeasibility proof.
    pub verdict: LeafVerdict,
}

/// A self-contained exact certificate for one area/mixed bound.
///
/// The embedded [`RatLp`] is part of the claim: the checker independently
/// rebuilds the LP from the platform/profile and rejects the certificate if
/// they differ, so a certificate cannot smuggle in a weakened problem.
#[derive(Clone, Debug)]
pub struct BoundCertificate {
    /// Which bound this certifies.
    pub kind: BoundKind,
    /// The exact root LP the proof is stated against.
    pub lp: RatLp,
    /// The certified lower bound (seconds, exact): the minimum over the
    /// leaves' dual objectives.
    pub bound: Rat,
    /// One proof per branch-and-bound leaf; together the paths must cover
    /// the integer search space.
    pub leaves: Vec<LeafCert>,
    /// Whether the f64 search explored its whole tree. When it did not,
    /// the certificate falls back to the root relaxation (a single empty
    /// path), exactly mirroring the f64 bound's own degradation.
    pub tree_complete: bool,
}

impl BoundCertificate {
    /// Compact JSON rendering of the certificate (exact bound, tree shape,
    /// per-leaf verdicts; the full witness vectors stay programmatic).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"kind\":\"{}\",\"bound\":\"{}\",\"bound_secs\":{},\"tree_complete\":{},\
             \"lp\":{{\"n_vars\":{},\"n_rows\":{}}},\"leaves\":[",
            self.kind.name(),
            self.bound,
            self.bound.to_f64(),
            self.tree_complete,
            self.lp.n_vars,
            self.lp.rows.len(),
        ));
        for (i, leaf) in self.leaves.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"path\":[");
            for (j, s) in leaf.path.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"var\":{},\"rel\":\"{}\",\"bound\":{}}}",
                    s.var,
                    if s.ge { "ge" } else { "le" },
                    s.bound
                ));
            }
            match &leaf.verdict {
                LeafVerdict::Bounded { dual_obj, .. } => {
                    out.push_str(&format!(
                        "],\"verdict\":\"bounded\",\"dual_obj\":\"{dual_obj}\"}}"
                    ));
                }
                LeafVerdict::Infeasible { .. } => {
                    out.push_str("],\"verdict\":\"infeasible\"}");
                }
            }
        }
        out.push_str("]}");
        out
    }
}

/// A [`BoundSet`] with exact certificates for its area and mixed bounds.
///
/// The critical-path bound needs no certificate: it is computed in integer
/// nanoseconds and is exact by construction; the linter compares it with
/// integer arithmetic. The GEMM peak is a closed-form rate sum, not an LP.
#[derive(Clone, Debug)]
pub struct CertifiedBoundSet {
    /// The f64 bounds the certificates accompany.
    pub set: BoundSet,
    /// Certificate for `set.area`.
    pub area: BoundCertificate,
    /// Certificate for `set.mixed`.
    pub mixed: BoundCertificate,
}

/// The checker-confirmed exact bounds (seconds).
#[derive(Copy, Clone, Debug)]
pub struct VerifiedBounds {
    /// Verified exact area bound.
    pub area: Rat,
    /// Verified exact mixed bound.
    pub mixed: Rat,
}

impl CertifiedBoundSet {
    /// Run both certificates through the independent checker against the
    /// given ground truth. `Ok` returns the exact bounds the checker
    /// itself derived (not the claimed ones — though they must agree).
    pub fn verify(
        &self,
        platform: &Platform,
        profile: &TimingProfile,
    ) -> Result<VerifiedBounds, CertReject> {
        if self.area.kind != BoundKind::Area || self.mixed.kind != BoundKind::Mixed {
            return Err(CertReject::WrongKind);
        }
        let area = verify_certificate(
            &self.area,
            self.set.algo,
            self.set.n_tiles,
            platform,
            profile,
        )?;
        let mixed = verify_certificate(
            &self.mixed,
            self.set.algo,
            self.set.n_tiles,
            platform,
            profile,
        )?;
        Ok(VerifiedBounds { area, mixed })
    }
}

/// Build the exact-rational bound LP from the integer-nanosecond ground
/// truth, mirroring the f64 layout of [`area_lp`] / [`mixed_lp`] row for
/// row. The checker does NOT call this: it has its own independent rebuild
/// in [`verify`] (keep them separate — that redundancy is the point).
pub(crate) fn exact_bound_lp(
    kind: BoundKind,
    algo: Algorithm,
    n_tiles: usize,
    platform: &Platform,
    profile: &TimingProfile,
) -> Result<RatLp, CertError> {
    let counts = algo.counts(n_tiles);
    let n_classes = platform.n_classes();
    let l_var = n_classes * Kernel::COUNT;
    let n_vars = l_var + 1;
    let var = |r: usize, t: Kernel| r * Kernel::COUNT + t.index();

    let mut rows = Vec::new();
    for t in Kernel::ALL {
        let mut coeffs = vec![Rat::ZERO; n_vars];
        for r in 0..n_classes {
            coeffs[var(r, t)] = Rat::ONE;
        }
        rows.push(RatRow {
            coeffs,
            rel: Relation::Eq,
            rhs: Rat::from_int(counts[t.index()] as i64),
        });
    }
    for (r, class) in platform.classes().iter().enumerate() {
        let mut coeffs = vec![Rat::ZERO; n_vars];
        for t in Kernel::ALL {
            coeffs[var(r, t)] = Rat::from_nanos(profile.time(t, r).as_nanos());
        }
        coeffs[l_var] = Rat::from_int(-(class.count as i64));
        rows.push(RatRow {
            coeffs,
            rel: Relation::Le,
            rhs: Rat::ZERO,
        });
    }
    if kind == BoundKind::Mixed {
        let diag = algo.diag_kernel();
        let mut chain = Rat::ZERO;
        for &k in algo.chain_kernels() {
            chain = chain.checked_add(Rat::from_nanos(profile.fastest_time(k).as_nanos()))?;
        }
        let rhs = Rat::from_int(n_tiles as i64 - 1).checked_mul(chain)?;
        let mut coeffs = vec![Rat::ZERO; n_vars];
        for r in 0..n_classes {
            coeffs[var(r, diag)] =
                Rat::from_nanos(profile.time(diag, r).as_nanos()).checked_neg()?;
        }
        coeffs[l_var] = Rat::ONE;
        rows.push(RatRow {
            coeffs,
            rel: Relation::Ge,
            rhs,
        });
    }

    let mut objective = vec![Rat::ZERO; n_vars];
    objective[l_var] = Rat::ONE;
    Ok(RatLp {
        n_vars,
        objective,
        rows,
    })
}

/// The root LP plus one row per branching step (builder side; the checker
/// materialises leaves with its own code).
fn builder_leaf_lp(base: &RatLp, path: &[BranchStep]) -> RatLp {
    let mut lp = base.clone();
    for step in path {
        let mut coeffs = vec![Rat::ZERO; lp.n_vars];
        coeffs[step.var] = Rat::ONE;
        lp.rows.push(RatRow {
            coeffs,
            rel: if step.ge { Relation::Ge } else { Relation::Le },
            rhs: Rat::from_int(step.bound),
        });
    }
    lp
}

/// Certify one bound: replay the f64 branch-and-bound, then prove every
/// leaf exactly. See [`BoundCertificate`].
pub fn certify_bound(
    kind: BoundKind,
    algo: Algorithm,
    n_tiles: usize,
    platform: &Platform,
    profile: &TimingProfile,
) -> Result<BoundCertificate, CertError> {
    let counts = algo.counts(n_tiles);
    let n_classes = platform.n_classes();
    let flp = match kind {
        BoundKind::Area => area_lp(&counts, platform, profile),
        BoundKind::Mixed => mixed_lp(algo, n_tiles, platform, profile),
    };
    let integer_vars: Vec<usize> = (0..n_classes * Kernel::COUNT).collect();
    let warm = rounded_incumbent(&flp, &counts, n_classes);
    let (_, trace) = solve_ilp_traced(&flp, &integer_vars, NODE_LIMIT, warm, BOUND_REL_GAP);

    let xlp = exact_bound_lp(kind, algo, n_tiles, platform, profile)?;
    let (paths, tree_complete) = if trace.complete {
        (trace.leaves, true)
    } else {
        // Truncated search: the f64 bound degrades to the root relaxation,
        // and so does the certificate (a single-leaf tree is a valid cover).
        (vec![Vec::new()], false)
    };

    let mut leaves = Vec::with_capacity(paths.len());
    let mut bound: Option<Rat> = None;
    for path in paths {
        let leaf = builder_leaf_lp(&xlp, &path);
        match solve_exact(&leaf)? {
            XlpOutcome::Optimal { x, y, obj } => {
                bound = Some(match bound {
                    Some(b) if b <= obj => b,
                    _ => obj,
                });
                leaves.push(LeafCert {
                    path,
                    verdict: LeafVerdict::Bounded {
                        x,
                        y,
                        dual_obj: obj,
                    },
                });
            }
            XlpOutcome::Infeasible { farkas } => {
                leaves.push(LeafCert {
                    path,
                    verdict: LeafVerdict::Infeasible { farkas },
                });
            }
            XlpOutcome::Unbounded => return Err(CertError::Unbounded),
        }
    }
    let bound = bound.ok_or(CertError::Infeasible)?;
    Ok(BoundCertificate {
        kind,
        lp: xlp,
        bound,
        leaves,
        tree_complete,
    })
}

/// Certify the area and mixed bounds of an already-computed [`BoundSet`]
/// (the entry point behind [`BoundSet::certify`]).
pub fn certify_bounds(
    set: BoundSet,
    platform: &Platform,
    profile: &TimingProfile,
) -> Result<CertifiedBoundSet, CertError> {
    let area = certify_bound(BoundKind::Area, set.algo, set.n_tiles, platform, profile)?;
    let mixed = certify_bound(BoundKind::Mixed, set.algo, set.n_tiles, platform, profile)?;
    Ok(CertifiedBoundSet { set, area, mixed })
}
