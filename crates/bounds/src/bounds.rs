//! The paper's makespan lower bounds (Section III) and performance upper
//! bounds (Figure 2).
//!
//! All bounds take the calibrated timing table `T_rt` as input:
//!
//! * **area bound** — the LP of Section III-A: assign the `N_t` tasks of
//!   each type to resource classes so that every class finishes its share
//!   within the makespan `l`; precedence is ignored entirely.
//! * **mixed bound** — area bound plus the POTRF-chain constraint: the
//!   Cholesky DAG contains a path with all `n` POTRFs, `n-1` TRSMs and
//!   `n-1` SYRKs, so `Σ_r n_rP·T_rP + (n-1)(T*_T + T*_S) ≤ l`.
//! * **critical-path bound** — longest path in the DAG with every task at
//!   its fastest resource.
//! * **GEMM peak** — the classical aggregate-GFLOP/s ceiling.

use crate::cert::rat::CertError;
use crate::cert::{certify_bounds, CertifiedBoundSet};
use crate::ilp::solve_ilp_gap;
use crate::simplex::{solve_lp, Constraint, LinearProgram, LpSolution, Relation};
use crate::tol;
use hetchol_core::algorithm::Algorithm;
use hetchol_core::dag::TaskGraph;
use hetchol_core::kernel::Kernel;
use hetchol_core::platform::Platform;
use hetchol_core::profiles::TimingProfile;
use hetchol_core::time::Time;

/// Node budget for the branch-and-bound; the paper's LPs close in a handful
/// of nodes, so this is a safety backstop rather than a tuning knob.
pub(crate) const NODE_LIMIT: usize = 600;

/// Relative optimality gap for the bound ILPs: far below anything visible
/// in a GFLOP/s plot, and the reported bound stays valid regardless (the
/// search returns the tightest pruned relaxation, never the
/// possibly-suboptimal incumbent).
pub(crate) const BOUND_REL_GAP: f64 = 1e-4;

/// Build the area-bound (I)LP from per-kernel task counts. Variable
/// layout: `n_rt` at `r * Kernel::COUNT + t` (class-major), makespan `l`
/// (seconds) last. Kernels with zero count contribute fixed-zero
/// variables, so one layout serves every algorithm. Row layout:
/// `Kernel::COUNT` equality (task-count) rows in `Kernel::ALL` order, then
/// one `≤` (class-capacity) row per resource class — the exact-rational
/// builders in `cert` mirror this layout one-to-one.
pub(crate) fn area_lp(
    counts: &[usize; Kernel::COUNT],
    platform: &Platform,
    profile: &TimingProfile,
) -> LinearProgram {
    let n_classes = platform.n_classes();
    let l_var = n_classes * Kernel::COUNT;
    let n_vars = l_var + 1;
    let var = |r: usize, t: Kernel| r * Kernel::COUNT + t.index();

    let mut constraints = Vec::new();
    // Every task of each type is placed somewhere.
    for t in Kernel::ALL {
        let mut coeffs = vec![0.0; n_vars];
        for r in 0..n_classes {
            coeffs[var(r, t)] = 1.0;
        }
        constraints.push(Constraint::new(
            coeffs,
            Relation::Eq,
            counts[t.index()] as f64,
        ));
    }
    // Each class finishes its assigned work within l: Σ_t n_rt·T_rt ≤ l·M_r.
    for (r, class) in platform.classes().iter().enumerate() {
        let mut coeffs = vec![0.0; n_vars];
        for t in Kernel::ALL {
            coeffs[var(r, t)] = profile.time(t, r).as_secs_f64();
        }
        coeffs[l_var] = -(class.count as f64);
        constraints.push(Constraint::new(coeffs, Relation::Le, 0.0));
    }

    let mut objective = vec![0.0; n_vars];
    objective[l_var] = 1.0;
    LinearProgram {
        n_vars,
        objective,
        minimize: true,
        constraints,
    }
}

/// Round the LP relaxation into an integral-feasible warm start: floor the
/// task counts, hand the per-type deficits to the classes with the largest
/// fractional parts, then take the smallest `l` satisfying every
/// constraint. This incumbent lets branch-and-bound prune the wide,
/// near-degenerate plateaus these LPs exhibit.
pub(crate) fn rounded_incumbent(
    lp: &LinearProgram,
    counts: &[usize; Kernel::COUNT],
    n_classes: usize,
) -> Option<LpSolution> {
    let relax = solve_lp(lp);
    let relax = relax.optimal()?;
    let l_var = n_classes * Kernel::COUNT;
    let mut x = vec![0.0; lp.n_vars];
    for t in Kernel::ALL {
        let total = counts[t.index()] as i64;
        let vals: Vec<f64> = (0..n_classes)
            .map(|r| relax.x[r * Kernel::COUNT + t.index()])
            .collect();
        let mut floors: Vec<i64> = vals.iter().map(|v| v.floor().max(0.0) as i64).collect();
        let mut deficit = total - floors.iter().sum::<i64>();
        // Largest fractional parts first.
        let mut order: Vec<usize> = (0..n_classes).collect();
        order.sort_by(|&a, &b| {
            let fa = vals[a] - vals[a].floor();
            let fb = vals[b] - vals[b].floor();
            fb.partial_cmp(&fa).expect("fractional parts are finite")
        });
        let mut i = 0;
        while deficit > 0 {
            floors[order[i % n_classes]] += 1;
            deficit -= 1;
            i += 1;
        }
        while deficit < 0 {
            // Over-allocation can only come from floor(v) > 0 rounding up
            // noise; shave from the largest counts.
            let j = (0..n_classes)
                .max_by_key(|&r| floors[r])
                .expect("at least one class");
            floors[j] -= 1;
            deficit += 1;
        }
        for r in 0..n_classes {
            x[r * Kernel::COUNT + t.index()] = floors[r] as f64;
        }
    }
    // Smallest l satisfying every constraint involving l.
    let mut l = 0.0f64;
    for c in &lp.constraints {
        let cl = c.coeffs.get(l_var).copied().unwrap_or(0.0);
        let s: f64 = c
            .coeffs
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != l_var)
            .map(|(i, &v)| v * x[i])
            .sum();
        match c.rel {
            Relation::Le if cl < 0.0 && tol::nonzero_coeff(cl) => l = l.max((s - c.rhs) / -cl),
            Relation::Ge if cl > 0.0 && tol::nonzero_coeff(cl) => l = l.max((c.rhs - s) / cl),
            _ => {}
        }
    }
    x[l_var] = l;
    Some(LpSolution {
        objective: l,
        x,
        duals: Vec::new(),
    })
}

/// Build the mixed-bound (I)LP: the area LP plus the diagonal-chain row
/// `l - Σ_r n_rD·T_rD ≥ (n-1)·Σ_chain T*_k` appended last.
pub(crate) fn mixed_lp(
    algo: Algorithm,
    n_tiles: usize,
    platform: &Platform,
    profile: &TimingProfile,
) -> LinearProgram {
    let counts = algo.counts(n_tiles);
    let mut lp = area_lp(&counts, platform, profile);
    let n_classes = platform.n_classes();
    let l_var = n_classes * Kernel::COUNT;

    let diag = algo.diag_kernel();
    let chain_tail: f64 = (n_tiles as f64 - 1.0)
        * algo
            .chain_kernels()
            .iter()
            .map(|&k| profile.fastest_time(k).as_secs_f64())
            .sum::<f64>();
    let mut coeffs = vec![0.0; lp.n_vars];
    for r in 0..n_classes {
        coeffs[r * Kernel::COUNT + diag.index()] = -profile.time(diag, r).as_secs_f64();
    }
    coeffs[l_var] = 1.0;
    lp.constraints
        .push(Constraint::new(coeffs, Relation::Ge, chain_tail));
    lp
}

fn solve_bound_lp(lp: &LinearProgram, counts: &[usize; Kernel::COUNT], n_classes: usize) -> Time {
    let n_int_vars = n_classes * Kernel::COUNT;
    let integer_vars: Vec<usize> = (0..n_int_vars).collect();
    let warm = rounded_incumbent(lp, counts, n_classes);
    let result = solve_ilp_gap(lp, &integer_vars, NODE_LIMIT, warm, BOUND_REL_GAP);
    // `lower_bound` is a valid makespan lower bound whether or not the
    // search closed (it degrades to the LP relaxation).
    Time::from_secs_f64(result.lower_bound.max(0.0))
}

/// The **area bound** of a factorization on the given platform
/// (generalisation of the paper's Section III-A LP to any kernel counts).
pub fn area_bound_algo(
    algo: Algorithm,
    n_tiles: usize,
    platform: &Platform,
    profile: &TimingProfile,
) -> Time {
    if n_tiles == 0 {
        return Time::ZERO;
    }
    let counts = algo.counts(n_tiles);
    let lp = area_lp(&counts, platform, profile);
    solve_bound_lp(&lp, &counts, platform.n_classes())
}

/// The paper's **area bound** for an `n_tiles × n_tiles` Cholesky.
pub fn area_bound(n_tiles: usize, platform: &Platform, profile: &TimingProfile) -> Time {
    area_bound_algo(Algorithm::Cholesky, n_tiles, platform, profile)
}

/// The **mixed bound** of a factorization: area bound plus the
/// diagonal-chain constraint. The paper's POTRF-chain argument
/// (Section III-A) applies verbatim to GETRF (LU) and GEQRT (QR): all `n`
/// diagonal factorizations sit on one path, interleaved with one
/// panel/update kernel pair per step.
pub fn mixed_bound_algo(
    algo: Algorithm,
    n_tiles: usize,
    platform: &Platform,
    profile: &TimingProfile,
) -> Time {
    if n_tiles == 0 {
        return Time::ZERO;
    }
    let counts = algo.counts(n_tiles);
    let lp = mixed_lp(algo, n_tiles, platform, profile);
    solve_bound_lp(&lp, &counts, platform.n_classes())
}

/// The paper's **mixed bound** for an `n_tiles × n_tiles` Cholesky.
pub fn mixed_bound(n_tiles: usize, platform: &Platform, profile: &TimingProfile) -> Time {
    mixed_bound_algo(Algorithm::Cholesky, n_tiles, platform, profile)
}

/// The **critical-path bound**: longest path in the DAG with each task at
/// its fastest resource type (Section III-C).
pub fn critical_path_bound(graph: &TaskGraph, profile: &TimingProfile) -> Time {
    graph.critical_path(|t| profile.fastest_time(graph.task(t).kernel()))
}

/// The **GEMM peak** in GFLOP/s: the sum over workers of their GEMM rate.
pub fn gemm_peak_gflops(platform: &Platform, profile: &TimingProfile) -> f64 {
    profile.gemm_peak(platform)
}

/// Generalisation of the GEMM peak to any algorithm: the sum over workers
/// of their best per-kernel GFLOP/s rate among the algorithm's kernels
/// (for Cholesky this is exactly the GEMM peak).
pub fn kernel_peak_gflops(algo: Algorithm, platform: &Platform, profile: &TimingProfile) -> f64 {
    platform
        .workers()
        .map(|w| {
            let class = platform.class_of(w);
            algo.kernels()
                .iter()
                .map(|&k| profile.gflops_rate(k, class))
                .fold(0.0f64, f64::max)
        })
        .sum()
}

/// All four bounds of Figure 2 for one matrix size (and, through
/// [`BoundSet::compute_algo`], for LU and QR as well).
#[derive(Clone, Debug)]
pub struct BoundSet {
    /// The factorization the bounds describe.
    pub algo: Algorithm,
    /// Matrix size in tiles.
    pub n_tiles: usize,
    /// Tile size.
    pub nb: usize,
    /// Critical-path makespan lower bound.
    pub critical_path: Time,
    /// Area-bound makespan lower bound.
    pub area: Time,
    /// Mixed-bound makespan lower bound.
    pub mixed: Time,
    /// Best-kernel aggregate peak in GFLOP/s (the GEMM peak for Cholesky;
    /// already a performance bound).
    pub gemm_peak: f64,
}

impl BoundSet {
    /// Compute every bound for one Cholesky size (the paper's Figure 2).
    ///
    /// ```
    /// use hetchol_bounds::BoundSet;
    /// use hetchol_core::{platform::Platform, profiles::TimingProfile};
    ///
    /// let set = BoundSet::compute(8, &Platform::mirage(), &TimingProfile::mirage());
    /// // The mixed bound is the tightest performance upper bound.
    /// assert!(set.mixed_gflops() <= set.area_gflops());
    /// assert!(set.mixed_gflops() <= set.gemm_peak);
    /// ```
    pub fn compute(n_tiles: usize, platform: &Platform, profile: &TimingProfile) -> BoundSet {
        Self::compute_algo(Algorithm::Cholesky, n_tiles, platform, profile)
    }

    /// Compute every bound for one size of any supported factorization.
    pub fn compute_algo(
        algo: Algorithm,
        n_tiles: usize,
        platform: &Platform,
        profile: &TimingProfile,
    ) -> BoundSet {
        let graph = algo.graph(n_tiles);
        BoundSet {
            algo,
            n_tiles,
            nb: profile.nb(),
            critical_path: critical_path_bound(&graph, profile),
            area: area_bound_algo(algo, n_tiles, platform, profile),
            mixed: mixed_bound_algo(algo, n_tiles, platform, profile),
            gemm_peak: kernel_peak_gflops(algo, platform, profile),
        }
    }

    /// Compute bound sets for a whole batch of `(algorithm, n_tiles)`
    /// requests against one platform/profile, deduplicating repeated
    /// requests so each distinct set is computed once — the entry point
    /// the `hetchol-serve` worker shards drain their bound queues
    /// through. The returned vector is index-aligned with `requests`.
    pub fn compute_batch(
        requests: &[(Algorithm, usize)],
        platform: &Platform,
        profile: &TimingProfile,
    ) -> Vec<BoundSet> {
        let mut computed: Vec<((Algorithm, usize), BoundSet)> = Vec::new();
        requests
            .iter()
            .map(|&(algo, n_tiles)| {
                if let Some((_, set)) = computed.iter().find(|(key, _)| *key == (algo, n_tiles)) {
                    return set.clone();
                }
                let set = Self::compute_algo(algo, n_tiles, platform, profile);
                computed.push(((algo, n_tiles), set.clone()));
                set
            })
            .collect()
    }

    /// The makespan lower bound implied by the kernel peak.
    pub fn gemm_peak_time(&self) -> Time {
        let flops = self.algo.flops(self.n_tiles * self.nb);
        Time::from_secs_f64(flops / (self.gemm_peak * 1e9))
    }

    /// Performance upper bound (GFLOP/s) from the critical path.
    pub fn critical_path_gflops(&self) -> f64 {
        self.algo.gflops(self.n_tiles, self.nb, self.critical_path)
    }

    /// Performance upper bound (GFLOP/s) from the area bound.
    pub fn area_gflops(&self) -> f64 {
        self.algo.gflops(self.n_tiles, self.nb, self.area)
    }

    /// Performance upper bound (GFLOP/s) from the mixed bound.
    pub fn mixed_gflops(&self) -> f64 {
        self.algo.gflops(self.n_tiles, self.nb, self.mixed)
    }

    /// Certify this set's area and mixed bounds with exact rational LP
    /// duality certificates (the critical-path bound is already exact
    /// integer-nanosecond arithmetic and needs none).
    ///
    /// The returned [`CertifiedBoundSet`] replays the branch-and-bound tree
    /// of each bound in exact arithmetic and carries one dual (or Farkas)
    /// certificate per leaf; its `verify` method hands everything to the
    /// solver-independent checker. Errors mean *no exact statement could be
    /// produced* (overflow, pivot budget), never that the f64 bound is
    /// wrong — callers degrade to the uncertified value.
    pub fn certify(
        &self,
        platform: &Platform,
        profile: &TimingProfile,
    ) -> Result<CertifiedBoundSet, CertError> {
        certify_bounds(self.clone(), platform, profile)
    }

    /// The tightest makespan lower bound in the set.
    pub fn best(&self) -> Time {
        self.critical_path
            .max(self.area)
            .max(self.mixed)
            .max(self.gemm_peak_time())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mirage() -> (Platform, TimingProfile) {
        (Platform::mirage(), TimingProfile::mirage())
    }

    #[test]
    fn batch_matches_individual_computes_in_request_order() {
        let (platform, profile) = mirage();
        let requests = [
            (Algorithm::Cholesky, 8),
            (Algorithm::Lu, 4),
            (Algorithm::Cholesky, 8), // duplicate: computed once, repeated in output
            (Algorithm::Cholesky, 4),
        ];
        let batch = BoundSet::compute_batch(&requests, &platform, &profile);
        assert_eq!(batch.len(), requests.len());
        for (&(algo, n), set) in requests.iter().zip(&batch) {
            let solo = BoundSet::compute_algo(algo, n, &platform, &profile);
            assert_eq!(set.algo, algo);
            assert_eq!(set.n_tiles, n);
            assert_eq!(set.critical_path, solo.critical_path);
            assert_eq!(set.area, solo.area);
            assert_eq!(set.mixed, solo.mixed);
            assert_eq!(set.gemm_peak, solo.gemm_peak);
        }
        assert_eq!(batch[0].mixed, batch[2].mixed);
    }

    #[test]
    fn homogeneous_area_bound_is_total_work_over_m() {
        let platform = Platform::homogeneous(9);
        let profile = TimingProfile::mirage_homogeneous();
        for n in [2usize, 4, 8, 16] {
            let bound = area_bound(n, &platform, &profile);
            let total: f64 = Kernel::ALL
                .iter()
                .map(|&k| k.count_in_cholesky(n) as f64 * profile.time(k, 0).as_secs_f64())
                .sum();
            let expected = total / 9.0;
            assert!(
                (bound.as_secs_f64() - expected).abs() < 1e-6,
                "n={n}: {} vs {expected}",
                bound.as_secs_f64()
            );
        }
    }

    #[test]
    fn mixed_dominates_area() {
        let (platform, profile) = mirage();
        for n in [2usize, 4, 8, 12, 16] {
            let a = area_bound(n, &platform, &profile);
            let m = mixed_bound(n, &platform, &profile);
            assert!(m >= a, "n={n}: mixed {m} < area {a}");
        }
    }

    #[test]
    fn mixed_dominates_chain_tail() {
        let (platform, profile) = mirage();
        for n in [2usize, 4, 8] {
            let m = mixed_bound(n, &platform, &profile).as_secs_f64();
            let chain = n as f64 * profile.fastest_time(Kernel::Potrf).as_secs_f64()
                + (n as f64 - 1.0)
                    * (profile.fastest_time(Kernel::Trsm).as_secs_f64()
                        + profile.fastest_time(Kernel::Syrk).as_secs_f64());
            assert!(m >= chain - 1e-9, "n={n}");
        }
    }

    #[test]
    fn bounds_grow_with_matrix_size() {
        let (platform, profile) = mirage();
        let mut prev = Time::ZERO;
        for n in [2usize, 4, 8, 16, 24] {
            let m = mixed_bound(n, &platform, &profile);
            assert!(m > prev, "mixed bound must strictly grow, n={n}");
            prev = m;
        }
    }

    #[test]
    fn performance_bounds_below_gemm_peak_at_scale() {
        // The paper's Figure 2: the mixed bound curve approaches but stays
        // below the GEMM peak.
        let (platform, profile) = mirage();
        for n in [4usize, 8, 16, 24, 32] {
            let set = BoundSet::compute(n, &platform, &profile);
            assert!(
                set.mixed_gflops() <= set.gemm_peak * 1.001,
                "n={n}: {} vs peak {}",
                set.mixed_gflops(),
                set.gemm_peak
            );
            assert!(set.mixed_gflops() <= set.area_gflops() + 1e-9, "n={n}");
        }
    }

    #[test]
    fn mixed_bound_binds_critical_path_for_small_sizes() {
        // For small matrices the POTRF chain dominates: the mixed bound in
        // GFLOP/s must sit well below the area bound.
        let (platform, profile) = mirage();
        let set = BoundSet::compute(4, &platform, &profile);
        assert!(
            set.mixed_gflops() < 0.8 * set.area_gflops(),
            "mixed {} area {}",
            set.mixed_gflops(),
            set.area_gflops()
        );
    }

    #[test]
    fn critical_path_matches_diagonal_chain_on_mirage() {
        // On Mirage the longest path is the POTRF/TRSM/SYRK diagonal chain
        // at GPU speeds.
        let (_, profile) = mirage();
        let n = 8usize;
        let graph = TaskGraph::cholesky(n);
        let cp = critical_path_bound(&graph, &profile);
        let chain = profile.fastest_time(Kernel::Potrf) * n as u64
            + (profile.fastest_time(Kernel::Trsm) + profile.fastest_time(Kernel::Syrk))
                * (n as u64 - 1);
        assert_eq!(cp, chain);
    }

    #[test]
    fn gemm_peak_value() {
        let (platform, profile) = mirage();
        let peak = gemm_peak_gflops(&platform, &profile);
        assert!((900.0..930.0).contains(&peak), "{peak}");
    }

    #[test]
    fn zero_tiles_edge_case() {
        let (platform, profile) = mirage();
        assert_eq!(area_bound(0, &platform, &profile), Time::ZERO);
        assert_eq!(mixed_bound(0, &platform, &profile), Time::ZERO);
    }

    #[test]
    fn n1_bounds_are_single_potrf() {
        // One tile: the whole factorization is one POTRF; the mixed bound
        // must be at least the fastest POTRF, area bound likewise.
        let (platform, profile) = mirage();
        let fastest = profile.fastest_time(Kernel::Potrf);
        // The area bound divides by the class size, so for a single task it
        // is weak (T/M_r) but must stay positive; the mixed bound's chain
        // constraint restores the full single-POTRF duration.
        assert!(area_bound(1, &platform, &profile) > Time::ZERO);
        assert!(mixed_bound(1, &platform, &profile) >= fastest);
        let graph = TaskGraph::cholesky(1);
        assert_eq!(critical_path_bound(&graph, &profile), fastest);
    }

    #[test]
    fn best_is_max_of_all() {
        let (platform, profile) = mirage();
        let set = BoundSet::compute(8, &platform, &profile);
        let best = set.best();
        assert!(best >= set.critical_path);
        assert!(best >= set.area);
        assert!(best >= set.mixed);
        assert!(best >= set.gemm_peak_time());
    }

    #[test]
    fn lu_and_qr_bounds_are_ordered() {
        let (platform, profile) = mirage();
        use hetchol_core::algorithm::Algorithm;
        for algo in [Algorithm::Lu, Algorithm::Qr] {
            for n in [2usize, 4, 8] {
                let set = BoundSet::compute_algo(algo, n, &platform, &profile);
                assert!(set.area > Time::ZERO, "{algo} n={n}");
                assert!(
                    set.mixed.as_secs_f64() >= set.area.as_secs_f64() * 0.999,
                    "{algo} n={n}: mixed {} < area {}",
                    set.mixed,
                    set.area
                );
                // Critical path dominates the diagonal chain constant.
                let chain = profile.fastest_time(algo.diag_kernel()) * n as u64
                    + algo
                        .chain_kernels()
                        .iter()
                        .map(|&k| profile.fastest_time(k))
                        .sum::<Time>()
                        * (n as u64 - 1);
                assert!(set.critical_path >= chain, "{algo} n={n}");
                // Performance bounds below the kernel peak.
                assert!(set.mixed_gflops() <= set.gemm_peak * 1.001, "{algo} n={n}");
            }
        }
    }

    #[test]
    fn qr_peak_below_cholesky_peak() {
        // TSMQR's best GPU rate is below GEMM's, so the QR kernel peak sits
        // below the Cholesky GEMM peak on the same platform.
        let (platform, profile) = mirage();
        use hetchol_core::algorithm::Algorithm;
        let chol = kernel_peak_gflops(Algorithm::Cholesky, &platform, &profile);
        let qr = kernel_peak_gflops(Algorithm::Qr, &platform, &profile);
        assert!((chol - gemm_peak_gflops(&platform, &profile)).abs() < 1e-9);
        assert!(qr < chol, "qr {qr} vs cholesky {chol}");
    }

    #[test]
    fn related_platform_bounds_sane() {
        // The related profile changes GPU times but bounds must stay ordered.
        let platform = Platform::mirage();
        for n in [4usize, 8, 16] {
            let profile = TimingProfile::mirage_related(n);
            let a = area_bound(n, &platform, &profile);
            let m = mixed_bound(n, &platform, &profile);
            // Both are solved to a 0.01% gap independently, so dominance
            // holds up to that tolerance.
            assert!(
                m.as_secs_f64() >= a.as_secs_f64() * 0.999,
                "n={n}: mixed {m} area {a}"
            );
            assert!(a > Time::ZERO);
        }
    }
}
