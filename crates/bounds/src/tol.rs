//! The floating-point tolerances of the LP/ILP stack, in one place.
//!
//! The f64 simplex and branch-and-bound previously scattered ad-hoc
//! epsilons (`1e-9`, `1e-7`, `1e-6`, `1e-12`) through their pivot loops.
//! They are consolidated here with their *meaning* attached, so every
//! comparison in `simplex.rs` / `ilp.rs` / `bounds.rs` names the tolerance
//! it relies on. Certified verdicts never use these: the `cert` module
//! re-verifies every bound in exact rational arithmetic.

/// Pivot tolerance: a tableau entry within `PIVOT_TOL` of zero is treated
/// as zero when selecting entering/leaving columns. This is the classical
/// anti-noise guard for dense f64 simplex; Bland's rule handles the
/// degeneracy, `PIVOT_TOL` handles the rounding.
pub const PIVOT_TOL: f64 = 1e-9;

/// Phase-1 feasibility threshold: the artificial-variable objective of a
/// feasible LP is exactly zero in exact arithmetic, so anything above this
/// (looser than `PIVOT_TOL` to absorb accumulated elimination error) is a
/// genuine infeasibility verdict.
pub const PHASE1_FEAS_TOL: f64 = 1e-7;

/// Integrality tolerance of the branch-and-bound: a relaxation value
/// within `INT_TOL` of an integer is accepted as integral (and rounded).
pub const INT_TOL: f64 = 1e-6;

/// Structural-zero tolerance: coefficients read back from an LP that are
/// this close to zero are treated as absent (used when inverting the
/// makespan column of the area LP in the rounding heuristic).
pub const COEFF_TOL: f64 = 1e-12;

/// `v` is a strictly negative reduced cost (an improving entering column).
#[inline]
pub fn improving(v: f64) -> bool {
    v < -PIVOT_TOL
}

/// `v` is usable as a (positive) ratio-test denominator.
#[inline]
pub fn positive_pivot(v: f64) -> bool {
    v > PIVOT_TOL
}

/// `v` is numerically nonzero at pivot precision.
#[inline]
pub fn nonzero_pivot(v: f64) -> bool {
    v.abs() > PIVOT_TOL
}

/// `v` is integral at branch-and-bound precision.
#[inline]
pub fn integral(v: f64) -> bool {
    (v - v.round()).abs() <= INT_TOL
}

/// A phase-1 objective this small certifies (floating-point) feasibility.
#[inline]
pub fn phase1_feasible(obj: f64) -> bool {
    obj <= PHASE1_FEAS_TOL
}

/// `v` is a structurally present (nonzero) coefficient.
#[inline]
pub fn nonzero_coeff(v: f64) -> bool {
    v.abs() > COEFF_TOL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_are_ordered() {
        // The stack depends on this ordering: structural zero < pivot noise
        // < phase-1 slack < integrality fuzz.
        const { assert!(COEFF_TOL < PIVOT_TOL) };
        const { assert!(PIVOT_TOL < PHASE1_FEAS_TOL) };
        const { assert!(PHASE1_FEAS_TOL < INT_TOL) };
    }

    #[test]
    fn helpers_agree_with_constants() {
        assert!(improving(-1e-8));
        assert!(!improving(-1e-10));
        assert!(positive_pivot(1e-8));
        assert!(!positive_pivot(1e-10));
        assert!(nonzero_pivot(-1e-8));
        assert!(!nonzero_pivot(1e-10));
        assert!(integral(3.0000004));
        assert!(!integral(3.4));
        assert!(phase1_feasible(5e-8));
        assert!(!phase1_feasible(1e-6));
        assert!(nonzero_coeff(1e-11));
        assert!(!nonzero_coeff(1e-13));
    }
}
