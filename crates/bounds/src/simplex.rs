//! A dense two-phase primal simplex solver.
//!
//! Solves `min/max c·x` subject to linear constraints (`≤`, `=`, `≥`) and
//! `x ≥ 0`. Designed for the paper's bound LPs — a handful of variables and
//! constraints — so clarity and numerical robustness (Bland's rule, the
//! shared [`crate::tol`] tolerances) win over sparse-matrix sophistication.
//! Optimal solutions carry the dual multipliers read off the final tableau,
//! which is what the exact certification layer cross-checks.

use crate::tol;

/// Relation of a linear constraint.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Relation {
    /// `coeffs · x ≤ rhs`
    Le,
    /// `coeffs · x = rhs`
    Eq,
    /// `coeffs · x ≥ rhs`
    Ge,
}

/// One linear constraint over the LP's variables.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// Coefficient of each variable. Length must be at most `n_vars`:
    /// shorter vectors are implicitly zero-padded, and *longer* vectors are
    /// rejected by [`solve_lp`] (they used to be silently truncated, which
    /// hid misindexed LP builders).
    pub coeffs: Vec<f64>,
    /// Constraint relation.
    pub rel: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

impl Constraint {
    /// Convenience constructor.
    pub fn new(coeffs: Vec<f64>, rel: Relation, rhs: f64) -> Constraint {
        Constraint { coeffs, rel, rhs }
    }
}

/// A linear program over non-negative variables.
#[derive(Clone, Debug)]
pub struct LinearProgram {
    /// Number of decision variables.
    pub n_vars: usize,
    /// Objective coefficients (length = `n_vars`).
    pub objective: Vec<f64>,
    /// `true` to minimize, `false` to maximize.
    pub minimize: bool,
    /// The constraints.
    pub constraints: Vec<Constraint>,
}

/// An optimal LP solution.
#[derive(Clone, Debug)]
pub struct LpSolution {
    /// Objective value at the optimum.
    pub objective: f64,
    /// Optimal variable values.
    pub x: Vec<f64>,
    /// Dual multipliers, one per constraint, read off the final tableau.
    ///
    /// At the optimum `objective ≈ duals · rhs` (strong duality). For a
    /// minimization, `duals[i] ≤ 0` on `≤` rows and `≥ 0` on `≥` rows
    /// (free on `=`); for a maximization the signs are reversed. Empty for
    /// hand-constructed solutions (e.g. warm starts) that never went
    /// through [`solve_lp`].
    pub duals: Vec<f64>,
}

/// Result of solving an LP.
#[derive(Clone, Debug)]
pub enum LpOutcome {
    /// A finite optimum was found.
    Optimal(LpSolution),
    /// The constraint set is empty.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// The solver gave up without a verdict (see [`SimplexError`]); the
    /// instance may still be feasible and bounded.
    Error(SimplexError),
}

impl LpOutcome {
    /// The solution if optimal, else `None`.
    pub fn optimal(&self) -> Option<&LpSolution> {
        match self {
            LpOutcome::Optimal(s) => Some(s),
            _ => None,
        }
    }
}

/// Failure of the simplex iteration itself, as opposed to a verdict about
/// the LP ([`LpOutcome::Infeasible`] / [`LpOutcome::Unbounded`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SimplexError {
    /// The pivot loop hit its iteration cap without reaching optimality.
    /// Bland's rule makes cycling impossible in exact arithmetic, so this
    /// signals either a pathologically large instance or floating-point
    /// stalling — callers must treat the outcome as "no information".
    MaxIterations {
        /// The cap that was exhausted.
        max_iters: usize,
    },
}

impl std::fmt::Display for SimplexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimplexError::MaxIterations { max_iters } => {
                write!(
                    f,
                    "simplex failed to converge within {max_iters} iterations"
                )
            }
        }
    }
}

impl std::error::Error for SimplexError {}

/// Dense simplex tableau with explicit basis bookkeeping.
struct Tableau {
    /// `rows × (n_cols + 1)`; the last column is the RHS.
    rows: Vec<Vec<f64>>,
    /// Objective row (reduced costs), length `n_cols + 1`; the last entry is
    /// minus the current objective value.
    z: Vec<f64>,
    /// Basic variable (column) of each row.
    basis: Vec<usize>,
    n_cols: usize,
}

impl Tableau {
    fn pivot(&mut self, row: usize, col: usize) {
        let piv = self.rows[row][col];
        debug_assert!(tol::nonzero_pivot(piv), "pivot on ~zero element");
        let inv = 1.0 / piv;
        for v in self.rows[row].iter_mut() {
            *v *= inv;
        }
        let pivot_row = self.rows[row].clone();
        for (r, current) in self.rows.iter_mut().enumerate() {
            if r != row {
                let factor = current[col];
                if factor != 0.0 {
                    for (v, p) in current.iter_mut().zip(&pivot_row) {
                        *v -= factor * p;
                    }
                }
            }
        }
        let factor = self.z[col];
        if factor != 0.0 {
            for (v, p) in self.z.iter_mut().zip(&pivot_row) {
                *v -= factor * p;
            }
        }
        self.basis[row] = col;
    }

    /// Run the simplex loop on the current objective row. `Ok(false)` means
    /// the problem is unbounded in the direction of optimization;
    /// `Err(MaxIterations)` means the pivot cap was exhausted without a
    /// verdict.
    fn optimize(&mut self, allowed_cols: usize, max_iters: usize) -> Result<bool, SimplexError> {
        for _ in 0..max_iters {
            // Bland's rule: entering column = lowest index with negative
            // reduced cost.
            let Some(col) = (0..allowed_cols).find(|&c| tol::improving(self.z[c])) else {
                return Ok(true); // optimal
            };
            // Ratio test; Bland tie-break on the basic variable index.
            let mut best: Option<(f64, usize, usize)> = None; // (ratio, basis var, row)
            for (r, row) in self.rows.iter().enumerate() {
                if tol::positive_pivot(row[col]) {
                    let ratio = row[self.n_cols] / row[col];
                    let key = (ratio, self.basis[r]);
                    if best.is_none_or(|(br, bb, _)| key < (br, bb)) {
                        best = Some((ratio, self.basis[r], r));
                    }
                }
            }
            let Some((_, _, row)) = best else {
                return Ok(false); // unbounded
            };
            self.pivot(row, col);
        }
        Err(SimplexError::MaxIterations { max_iters })
    }
}

/// Pivot cap per phase: a cycling backstop on top of Bland's rule, far above
/// anything the bound LPs (≤ 9 variables) can need.
const MAX_ITERS: usize = 50_000;

/// Solve a linear program with the two-phase primal simplex method.
///
/// # Panics
/// Panics if any constraint's coefficient vector (or the objective) is
/// longer than `lp.n_vars`: extra coefficients cannot be attached to any
/// variable, so such an LP is a builder bug, not a solvable instance.
pub fn solve_lp(lp: &LinearProgram) -> LpOutcome {
    let n = lp.n_vars;
    let m = lp.constraints.len();
    assert!(
        lp.objective.len() <= n,
        "objective has {} coefficients for {} variables",
        lp.objective.len(),
        n
    );

    // Normalise rows to have rhs >= 0 and count auxiliary columns.
    struct Row {
        coeffs: Vec<f64>,
        rel: Relation,
        rhs: f64,
        /// Negated during normalisation: the reported dual is un-flipped.
        flipped: bool,
    }
    let rows_in: Vec<Row> = lp
        .constraints
        .iter()
        .enumerate()
        .map(|(ci, c)| {
            assert!(
                c.coeffs.len() <= n,
                "constraint {ci} has {} coefficients for {n} variables",
                c.coeffs.len()
            );
            let mut coeffs = vec![0.0; n];
            coeffs[..c.coeffs.len()].copy_from_slice(&c.coeffs);
            if c.rhs < 0.0 {
                let rel = match c.rel {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
                Row {
                    coeffs: coeffs.iter().map(|v| -v).collect(),
                    rel,
                    rhs: -c.rhs,
                    flipped: true,
                }
            } else {
                Row {
                    coeffs,
                    rel: c.rel,
                    rhs: c.rhs,
                    flipped: false,
                }
            }
        })
        .collect();

    let n_slack = rows_in
        .iter()
        .filter(|r| matches!(r.rel, Relation::Le | Relation::Ge))
        .count();
    let n_art = rows_in
        .iter()
        .filter(|r| matches!(r.rel, Relation::Eq | Relation::Ge))
        .count();
    let n_cols = n + n_slack + n_art;

    let mut tab = Tableau {
        rows: Vec::with_capacity(m),
        z: vec![0.0; n_cols + 1],
        basis: Vec::with_capacity(m),
        n_cols,
    };

    // Where each row's dual multiplier lives in the final z-row:
    // y_i = sign · z[col] for the normalised row, un-flipped afterwards.
    struct DualSlot {
        col: usize,
        sign: f64,
        flipped: bool,
    }
    let mut slots: Vec<DualSlot> = Vec::with_capacity(m);
    let mut next_slack = n;
    let mut next_art = n + n_slack;
    let mut art_cols = Vec::new();
    for r in &rows_in {
        let mut row = vec![0.0; n_cols + 1];
        row[..n].copy_from_slice(&r.coeffs);
        row[n_cols] = r.rhs;
        match r.rel {
            Relation::Le => {
                row[next_slack] = 1.0;
                tab.basis.push(next_slack);
                // z[slack] = 0 - y·e_i  ⟹  y_i = -z[slack].
                slots.push(DualSlot {
                    col: next_slack,
                    sign: -1.0,
                    flipped: r.flipped,
                });
                next_slack += 1;
            }
            Relation::Ge => {
                row[next_slack] = -1.0;
                // z[surplus] = 0 - y·(-e_i)  ⟹  y_i = +z[surplus].
                slots.push(DualSlot {
                    col: next_slack,
                    sign: 1.0,
                    flipped: r.flipped,
                });
                next_slack += 1;
                row[next_art] = 1.0;
                tab.basis.push(next_art);
                art_cols.push(next_art);
                next_art += 1;
            }
            Relation::Eq => {
                row[next_art] = 1.0;
                tab.basis.push(next_art);
                art_cols.push(next_art);
                // Phase-2 cost of the artificial is 0: z[art] = -y·e_i.
                slots.push(DualSlot {
                    col: next_art,
                    sign: -1.0,
                    flipped: r.flipped,
                });
                next_art += 1;
            }
        }
        tab.rows.push(row);
    }

    // Phase 1: minimise the sum of artificials.
    if !art_cols.is_empty() {
        for &a in &art_cols {
            tab.z[a] = 1.0;
        }
        // Price out the artificial basis: z-row must have zero reduced cost
        // on basic columns.
        for (r, &b) in tab.basis.clone().iter().enumerate() {
            if tab.z[b] != 0.0 {
                let factor = tab.z[b];
                let row = tab.rows[r].clone();
                for (v, p) in tab.z.iter_mut().zip(&row) {
                    *v -= factor * p;
                }
            }
        }
        let bounded = match tab.optimize(n_cols, MAX_ITERS) {
            Ok(b) => b,
            Err(e) => return LpOutcome::Error(e),
        };
        debug_assert!(bounded, "phase-1 objective is bounded by construction");
        let phase1_obj = -tab.z[n_cols];
        if !tol::phase1_feasible(phase1_obj) {
            return LpOutcome::Infeasible;
        }
        // Drive any artificial still in the basis out (degenerate case).
        for r in 0..tab.rows.len() {
            if art_cols.contains(&tab.basis[r]) {
                if let Some(col) = (0..n + n_slack).find(|&c| tol::nonzero_pivot(tab.rows[r][c])) {
                    tab.pivot(r, col);
                } else {
                    // Redundant constraint row: harmless, leave the
                    // artificial basic at value ~0.
                }
            }
        }
    }

    // Phase 2: install the true objective (as minimisation).
    let sign = if lp.minimize { 1.0 } else { -1.0 };
    tab.z = vec![0.0; n_cols + 1];
    for i in 0..n {
        tab.z[i] = sign * lp.objective.get(i).copied().unwrap_or(0.0);
    }
    // Forbid artificials from re-entering by pricing: restrict the entering
    // column search to structural + slack columns.
    let allowed = n + n_slack;
    for (r, &b) in tab.basis.clone().iter().enumerate() {
        if tab.z[b] != 0.0 {
            let factor = tab.z[b];
            let row = tab.rows[r].clone();
            for (v, p) in tab.z.iter_mut().zip(&row) {
                *v -= factor * p;
            }
        }
    }
    match tab.optimize(allowed, MAX_ITERS) {
        Ok(true) => {}
        Ok(false) => return LpOutcome::Unbounded,
        Err(e) => return LpOutcome::Error(e),
    }

    let mut x = vec![0.0; n];
    for (r, &b) in tab.basis.iter().enumerate() {
        if b < n {
            x[b] = tab.rows[r][n_cols];
        }
    }
    // Duals from the final reduced costs; `sign` converts back from the
    // internal minimisation so that `objective ≈ duals · rhs` holds for the
    // user's stated objective sense.
    let duals: Vec<f64> = slots
        .iter()
        .map(|s| {
            let y = s.sign * tab.z[s.col];
            sign * if s.flipped { -y } else { y }
        })
        .collect();
    let objective: f64 = lp.objective.iter().zip(&x).map(|(c, v)| c * v).sum();
    LpOutcome::Optimal(LpSolution {
        objective,
        x,
        duals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Simplex vs brute-force vertex enumeration on random 2-variable
        /// LPs: `min c·x` over `x ≥ 0` and `≤` constraints with
        /// non-negative rhs (always feasible at the origin) and
        /// non-negative costs (always bounded below by 0). The optimum of
        /// a bounded LP is attained at a vertex of the feasible polygon,
        /// so enumerating all pairwise constraint intersections (plus the
        /// axes) finds it.
        #[test]
        fn simplex_matches_vertex_enumeration(
            c in prop::array::uniform2(0.0f64..10.0),
            rows in prop::collection::vec((0.1f64..10.0, 0.1f64..10.0, 0.1f64..20.0), 1..6),
        ) {
            let lp = LinearProgram {
                n_vars: 2,
                objective: c.to_vec(),
                minimize: true,
                constraints: rows
                    .iter()
                    .map(|&(a, b, r)| Constraint::new(vec![a, b], Relation::Le, r))
                    .collect(),
            };
            let sol = solve_lp(&lp);
            let sol = sol.optimal().expect("feasible & bounded by construction");

            // Brute force: all intersections of constraint boundaries and
            // the axes. Boundaries: a·x + b·y = r for each row, x = 0, y = 0.
            let mut lines: Vec<(f64, f64, f64)> = rows.clone();
            lines.push((1.0, 0.0, 0.0)); // x = 0
            lines.push((0.0, 1.0, 0.0)); // y = 0
            let feasible = |x: f64, y: f64| {
                x >= -1e-9
                    && y >= -1e-9
                    && rows.iter().all(|&(a, b, r)| a * x + b * y <= r + 1e-7)
            };
            let mut best = f64::INFINITY;
            for i in 0..lines.len() {
                for j in (i + 1)..lines.len() {
                    let (a1, b1, r1) = lines[i];
                    let (a2, b2, r2) = lines[j];
                    let det = a1 * b2 - a2 * b1;
                    if det.abs() < 1e-9 {
                        continue;
                    }
                    let x = (r1 * b2 - r2 * b1) / det;
                    let y = (a1 * r2 - a2 * r1) / det;
                    if feasible(x, y) {
                        best = best.min(c[0] * x + c[1] * y);
                    }
                }
            }
            // The origin is always a vertex candidate too.
            best = best.min(0.0);
            prop_assert!(
                (sol.objective - best).abs() < 1e-5 * (1.0 + best.abs()),
                "simplex {} vs brute force {best}",
                sol.objective
            );
        }
    }

    fn assert_opt(outcome: &LpOutcome, expect_obj: f64, expect_x: Option<&[f64]>) {
        let sol = outcome.optimal().unwrap_or_else(|| panic!("{outcome:?}"));
        assert!(
            (sol.objective - expect_obj).abs() < 1e-6,
            "objective {} != {expect_obj}",
            sol.objective
        );
        if let Some(xs) = expect_x {
            for (got, want) in sol.x.iter().zip(xs) {
                assert!((got - want).abs() < 1e-6, "x = {:?}", sol.x);
            }
        }
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => (2, 6), 36.
        let lp = LinearProgram {
            n_vars: 2,
            objective: vec![3.0, 5.0],
            minimize: false,
            constraints: vec![
                Constraint::new(vec![1.0, 0.0], Relation::Le, 4.0),
                Constraint::new(vec![0.0, 2.0], Relation::Le, 12.0),
                Constraint::new(vec![3.0, 2.0], Relation::Le, 18.0),
            ],
        };
        assert_opt(&solve_lp(&lp), 36.0, Some(&[2.0, 6.0]));
    }

    #[test]
    fn minimization_with_ge_needs_phase1() {
        // min 2x + 3y s.t. x + y >= 10, x <= 8, y <= 8  => x=8, y=2, obj 22.
        let lp = LinearProgram {
            n_vars: 2,
            objective: vec![2.0, 3.0],
            minimize: true,
            constraints: vec![
                Constraint::new(vec![1.0, 1.0], Relation::Ge, 10.0),
                Constraint::new(vec![1.0, 0.0], Relation::Le, 8.0),
                Constraint::new(vec![0.0, 1.0], Relation::Le, 8.0),
            ],
        };
        assert_opt(&solve_lp(&lp), 22.0, Some(&[8.0, 2.0]));
    }

    #[test]
    fn equality_constraints() {
        // min x + 2y s.t. x + y = 5, x - y = 1 => (3, 2), obj 7.
        let lp = LinearProgram {
            n_vars: 2,
            objective: vec![1.0, 2.0],
            minimize: true,
            constraints: vec![
                Constraint::new(vec![1.0, 1.0], Relation::Eq, 5.0),
                Constraint::new(vec![1.0, -1.0], Relation::Eq, 1.0),
            ],
        };
        assert_opt(&solve_lp(&lp), 7.0, Some(&[3.0, 2.0]));
    }

    #[test]
    fn infeasible_detected() {
        // x >= 5 and x <= 3.
        let lp = LinearProgram {
            n_vars: 1,
            objective: vec![1.0],
            minimize: true,
            constraints: vec![
                Constraint::new(vec![1.0], Relation::Ge, 5.0),
                Constraint::new(vec![1.0], Relation::Le, 3.0),
            ],
        };
        assert!(matches!(solve_lp(&lp), LpOutcome::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        // max x with x >= 1 only.
        let lp = LinearProgram {
            n_vars: 1,
            objective: vec![1.0],
            minimize: false,
            constraints: vec![Constraint::new(vec![1.0], Relation::Ge, 1.0)],
        };
        assert!(matches!(solve_lp(&lp), LpOutcome::Unbounded));
    }

    #[test]
    fn negative_rhs_normalised() {
        // min x s.t. -x <= -4  (i.e. x >= 4).
        let lp = LinearProgram {
            n_vars: 1,
            objective: vec![1.0],
            minimize: true,
            constraints: vec![Constraint::new(vec![-1.0], Relation::Le, -4.0)],
        };
        assert_opt(&solve_lp(&lp), 4.0, Some(&[4.0]));
    }

    #[test]
    fn degenerate_pivoting_terminates() {
        // A classic degenerate instance (Beale-like); Bland's rule must not
        // cycle. max 0.75a - 150b + 0.02c - 6d with the standard rows.
        let lp = LinearProgram {
            n_vars: 4,
            objective: vec![0.75, -150.0, 0.02, -6.0],
            minimize: false,
            constraints: vec![
                Constraint::new(vec![0.25, -60.0, -0.04, 9.0], Relation::Le, 0.0),
                Constraint::new(vec![0.5, -90.0, -0.02, 3.0], Relation::Le, 0.0),
                Constraint::new(vec![0.0, 0.0, 1.0, 0.0], Relation::Le, 1.0),
            ],
        };
        assert_opt(&solve_lp(&lp), 0.05, None);
    }

    #[test]
    fn redundant_equalities() {
        // x + y = 4 stated twice; min y => (4, 0).
        let lp = LinearProgram {
            n_vars: 2,
            objective: vec![0.0, 1.0],
            minimize: true,
            constraints: vec![
                Constraint::new(vec![1.0, 1.0], Relation::Eq, 4.0),
                Constraint::new(vec![2.0, 2.0], Relation::Eq, 8.0),
            ],
        };
        assert_opt(&solve_lp(&lp), 0.0, None);
    }

    /// Validate the exported duals against the stated LP: sign conventions,
    /// dual feasibility `Aᵀy ≤ c` (≥ for maximization), strong duality.
    fn assert_duals_certify(lp: &LinearProgram, sol: &LpSolution) {
        assert_eq!(sol.duals.len(), lp.constraints.len());
        let sense = if lp.minimize { 1.0 } else { -1.0 };
        for (c, &y) in lp.constraints.iter().zip(&sol.duals) {
            match c.rel {
                Relation::Le => assert!(sense * y <= 1e-9, "≤ row dual sign: {y}"),
                Relation::Ge => assert!(sense * y >= -1e-9, "≥ row dual sign: {y}"),
                Relation::Eq => {}
            }
        }
        for j in 0..lp.n_vars {
            let col: f64 = lp
                .constraints
                .iter()
                .zip(&sol.duals)
                .map(|(c, &y)| c.coeffs.get(j).copied().unwrap_or(0.0) * y)
                .sum();
            let cj = lp.objective.get(j).copied().unwrap_or(0.0);
            assert!(
                sense * (col - cj) <= 1e-6,
                "dual infeasible at var {j}: {col} vs {cj}"
            );
        }
        let yb: f64 = lp
            .constraints
            .iter()
            .zip(&sol.duals)
            .map(|(c, &y)| c.rhs * y)
            .sum();
        assert!(
            (yb - sol.objective).abs() < 1e-6,
            "strong duality: y·b = {yb} vs obj {}",
            sol.objective
        );
    }

    #[test]
    fn duals_certify_min_and_max_optima() {
        // min 2x + 3y s.t. x + y ≥ 10, x ≤ 8, y ≤ 8.
        let min_lp = LinearProgram {
            n_vars: 2,
            objective: vec![2.0, 3.0],
            minimize: true,
            constraints: vec![
                Constraint::new(vec![1.0, 1.0], Relation::Ge, 10.0),
                Constraint::new(vec![1.0, 0.0], Relation::Le, 8.0),
                Constraint::new(vec![0.0, 1.0], Relation::Le, 8.0),
            ],
        };
        let sol = solve_lp(&min_lp);
        assert_duals_certify(&min_lp, sol.optimal().unwrap());

        // The textbook max: shadow prices are (0, 3/2, 1).
        let max_lp = LinearProgram {
            n_vars: 2,
            objective: vec![3.0, 5.0],
            minimize: false,
            constraints: vec![
                Constraint::new(vec![1.0, 0.0], Relation::Le, 4.0),
                Constraint::new(vec![0.0, 2.0], Relation::Le, 12.0),
                Constraint::new(vec![3.0, 2.0], Relation::Le, 18.0),
            ],
        };
        let sol = solve_lp(&max_lp);
        let s = sol.optimal().unwrap();
        assert_duals_certify(&max_lp, s);
        for (got, want) in s.duals.iter().zip([0.0, 1.5, 1.0]) {
            assert!((got - want).abs() < 1e-9, "duals {:?}", s.duals);
        }
    }

    #[test]
    fn duals_unflip_normalised_rows() {
        // min x s.t. -x ≤ -4: the row is negated internally; the reported
        // dual must certify the ORIGINAL orientation (y ≤ 0 on ≤, y·b = 4).
        let lp = LinearProgram {
            n_vars: 1,
            objective: vec![1.0],
            minimize: true,
            constraints: vec![Constraint::new(vec![-1.0], Relation::Le, -4.0)],
        };
        let sol = solve_lp(&lp);
        let s = sol.optimal().unwrap();
        assert_duals_certify(&lp, s);
        assert!((s.duals[0] + 1.0).abs() < 1e-9, "duals {:?}", s.duals);
    }

    #[test]
    fn blands_rule_survives_chvatal_cycling_instance() {
        // Chvátal's classic cycling LP: the largest-coefficient entering
        // rule cycles forever through degenerate pivots at the origin;
        // Bland's rule provably terminates. Optimum 1 at (1, 0, 1, 0).
        let lp = LinearProgram {
            n_vars: 4,
            objective: vec![10.0, -57.0, -9.0, -24.0],
            minimize: false,
            constraints: vec![
                Constraint::new(vec![0.5, -5.5, -2.5, 9.0], Relation::Le, 0.0),
                Constraint::new(vec![0.5, -1.5, -0.5, 1.0], Relation::Le, 0.0),
                Constraint::new(vec![1.0, 0.0, 0.0, 0.0], Relation::Le, 1.0),
            ],
        };
        assert_opt(&solve_lp(&lp), 1.0, Some(&[1.0, 0.0, 1.0, 0.0]));
        assert_duals_certify(&lp, solve_lp(&lp).optimal().unwrap());
    }

    #[test]
    #[should_panic(expected = "3 coefficients for 2 variables")]
    fn overlong_coefficient_vectors_are_rejected() {
        // A third coefficient for a 2-variable LP would previously be
        // silently dropped; it must now be a loud builder error.
        let lp = LinearProgram {
            n_vars: 2,
            objective: vec![1.0, 1.0],
            minimize: true,
            constraints: vec![Constraint::new(vec![1.0, 1.0, 7.0], Relation::Ge, 2.0)],
        };
        let _ = solve_lp(&lp);
    }

    #[test]
    fn short_coefficient_vectors_are_padded() {
        // Constraint mentions only x0 out of 3 vars.
        let lp = LinearProgram {
            n_vars: 3,
            objective: vec![1.0, 1.0, 1.0],
            minimize: true,
            constraints: vec![Constraint::new(vec![1.0], Relation::Ge, 2.0)],
        };
        assert_opt(&solve_lp(&lp), 2.0, Some(&[2.0, 0.0, 0.0]));
    }

    #[test]
    fn exhausted_pivot_budget_is_an_error_not_a_panic() {
        // A tableau one pivot away from optimal, driven with a zero budget:
        // the loop must report MaxIterations instead of panicking.
        let mut tab = Tableau {
            // x0 + s0 = 1 with s0 basic.
            rows: vec![vec![1.0, 1.0, 1.0]],
            // min -x0: entering column exists, so a pivot is required.
            z: vec![-1.0, 0.0, 0.0],
            basis: vec![1],
            n_cols: 2,
        };
        assert_eq!(
            tab.optimize(2, 0),
            Err(SimplexError::MaxIterations { max_iters: 0 })
        );
        // With any budget at all the same tableau solves.
        assert_eq!(tab.optimize(2, MAX_ITERS), Ok(true));
    }

    #[test]
    fn simplex_error_display_and_outcome() {
        let err = SimplexError::MaxIterations { max_iters: 7 };
        assert_eq!(
            err.to_string(),
            "simplex failed to converge within 7 iterations"
        );
        let outcome = LpOutcome::Error(err);
        assert!(outcome.optimal().is_none());
    }

    #[test]
    fn area_bound_shape_lp() {
        // A miniature of the paper's area bound: 2 task types, 2 classes.
        // 10 tasks of type A (1s CPU, 0.1s GPU), 2 of type B (1s, 0.5s);
        // 2 CPUs, 1 GPU. Variables: nA_cpu nA_gpu nB_cpu nB_gpu l.
        let lp = LinearProgram {
            n_vars: 5,
            objective: vec![0.0, 0.0, 0.0, 0.0, 1.0],
            minimize: true,
            constraints: vec![
                Constraint::new(vec![1.0, 1.0, 0.0, 0.0, 0.0], Relation::Eq, 10.0),
                Constraint::new(vec![0.0, 0.0, 1.0, 1.0, 0.0], Relation::Eq, 2.0),
                // CPU class: 1*nA + 1*nB <= 2 l
                Constraint::new(vec![1.0, 0.0, 1.0, 0.0, -2.0], Relation::Le, 0.0),
                // GPU class: 0.1 nA + 0.5 nB <= 1 l
                Constraint::new(vec![0.0, 0.1, 0.0, 0.5, -1.0], Relation::Le, 0.0),
            ],
        };
        let sol = solve_lp(&lp);
        let s = sol.optimal().unwrap();
        // All 12 tasks must be placed and l balances both classes.
        assert!(s.objective > 0.0);
        assert!(s.x[0] + s.x[1] > 9.99);
        // l must cover the GPU load.
        assert!(0.1 * s.x[1] + 0.5 * s.x[3] <= s.objective + 1e-9);
    }
}
