//! Branch-and-bound integer programming on top of the simplex relaxation.
//!
//! The paper's bound LPs require the task counts `n_rt` to be integral
//! (`n_rt ∈ ℕ`). With at most eight integral variables, textbook
//! branch-and-bound over the LP relaxation solves these instantly.

use crate::simplex::{solve_lp, Constraint, LinearProgram, LpOutcome, LpSolution, Relation};
use crate::tol;

/// Result of a branch-and-bound run on a minimization ILP.
#[derive(Clone, Debug)]
pub struct IlpResult {
    /// Best integral solution found (`None` if none was found within the
    /// node budget or the problem is infeasible).
    pub solution: Option<LpSolution>,
    /// A valid lower bound on the ILP optimum (the root relaxation when the
    /// search was truncated, the incumbent value when it completed).
    pub lower_bound: f64,
    /// Whether the search proved optimality of `solution`.
    pub optimal: bool,
    /// Nodes explored.
    pub nodes: usize,
}

/// One branching decision on the path from the root to a leaf:
/// `x_var ≤ bound` (`ge == false`) or `x_var ≥ bound` (`ge == true`).
///
/// The bound is an exact integer so that replaying the branch in exact
/// arithmetic (the `cert` module) carries no float ambiguity.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BranchStep {
    /// The integral variable branched on.
    pub var: usize,
    /// `false`: `x_var ≤ bound`; `true`: `x_var ≥ bound`.
    pub ge: bool,
    /// The integral branch bound.
    pub bound: i64,
}

/// The shape of a finished branch-and-bound search: every leaf's branching
/// path from the root. When `complete`, the leaves partition the integer
/// search space (each split covers all integers via `x ≤ k ∨ x ≥ k+1`), so
/// `min` over the leaves' LP relaxation optima is a valid ILP lower bound —
/// this is exactly what the certificate checker re-verifies.
#[derive(Clone, Debug, Default)]
pub struct BranchTrace {
    /// Whether every subtree was explored to a leaf (no node budget hit, no
    /// LP solver failure). When `false` only the root relaxation may be
    /// trusted, and `leaves` must not be used as a cover.
    pub complete: bool,
    /// The branching path of each leaf, in exploration order. A pruned,
    /// infeasible, or integral node is a leaf; an empty path is the root.
    pub leaves: Vec<Vec<BranchStep>>,
}

fn most_fractional(x: &[f64], integer_vars: &[usize]) -> Option<(usize, f64)> {
    integer_vars
        .iter()
        .filter_map(|&i| {
            let v = x[i];
            if !tol::integral(v) {
                // Distance from 0.5 fractional part, smaller = more fractional.
                let dist = ((v - v.floor()) - 0.5).abs();
                Some((i, v, dist))
            } else {
                None
            }
        })
        .min_by(|a, b| a.2.partial_cmp(&b.2).expect("fractionality is finite"))
        .map(|(i, v, _)| (i, v))
}

/// Solve `min c·x` with the variables in `integer_vars` restricted to ℕ
/// (all variables remain ≥ 0). Explores at most `node_limit` nodes.
///
/// # Panics
/// Panics if `lp.minimize` is false; the bound computations only ever
/// minimize, and supporting maximization would double the sign bookkeeping
/// for no caller.
pub fn solve_ilp(lp: &LinearProgram, integer_vars: &[usize], node_limit: usize) -> IlpResult {
    solve_ilp_with_incumbent(lp, integer_vars, node_limit, None)
}

/// [`solve_ilp`] with an optional starting incumbent (a known
/// integral-feasible solution, e.g. from a rounding heuristic) and an
/// explicit relative optimality gap. A good incumbent lets branch-and-bound
/// prune near-degenerate subtrees that would otherwise be enumerated
/// exhaustively; `rel_gap` trades proof effort for speed while
/// [`IlpResult::lower_bound`] stays valid (it tracks the tightest pruned
/// relaxation).
pub fn solve_ilp_with_incumbent(
    lp: &LinearProgram,
    integer_vars: &[usize],
    node_limit: usize,
    warm_start: Option<LpSolution>,
) -> IlpResult {
    solve_ilp_gap(lp, integer_vars, node_limit, warm_start, 1e-7)
}

/// Fully-parameterised branch-and-bound; see [`solve_ilp_with_incumbent`].
pub fn solve_ilp_gap(
    lp: &LinearProgram,
    integer_vars: &[usize],
    node_limit: usize,
    warm_start: Option<LpSolution>,
    rel_gap: f64,
) -> IlpResult {
    solve_ilp_traced(lp, integer_vars, node_limit, warm_start, rel_gap).0
}

/// Materialise one branching step as an LP constraint.
fn step_constraint(step: BranchStep, n_vars: usize) -> Constraint {
    let mut coeffs = vec![0.0; n_vars];
    coeffs[step.var] = 1.0;
    let rel = if step.ge { Relation::Ge } else { Relation::Le };
    Constraint::new(coeffs, rel, step.bound as f64)
}

/// [`solve_ilp_gap`] that additionally records the branch-and-bound tree:
/// the branching path of every leaf visited. The numerical result is
/// identical to the untraced search (same node order, same pruning); the
/// trace is what lets the `cert` module re-certify each leaf exactly.
pub fn solve_ilp_traced(
    lp: &LinearProgram,
    integer_vars: &[usize],
    node_limit: usize,
    warm_start: Option<LpSolution>,
    rel_gap: f64,
) -> (IlpResult, BranchTrace) {
    assert!(lp.minimize, "solve_ilp only supports minimization");

    let root = solve_lp(lp);
    let root_sol = match root {
        LpOutcome::Optimal(s) => s,
        LpOutcome::Infeasible => {
            return (
                IlpResult {
                    solution: None,
                    lower_bound: f64::INFINITY,
                    optimal: true,
                    nodes: 1,
                },
                // The root is the only leaf; the exact re-check will find
                // the same infeasibility and certify it via Farkas.
                BranchTrace {
                    complete: true,
                    leaves: vec![Vec::new()],
                },
            );
        }
        LpOutcome::Unbounded => {
            return (
                IlpResult {
                    solution: None,
                    lower_bound: f64::NEG_INFINITY,
                    optimal: false,
                    nodes: 1,
                },
                BranchTrace::default(),
            );
        }
        // No verdict on the root relaxation: nothing can be claimed about
        // the ILP either, so report the weakest valid lower bound.
        LpOutcome::Error(_) => {
            return (
                IlpResult {
                    solution: None,
                    lower_bound: f64::NEG_INFINITY,
                    optimal: false,
                    nodes: 1,
                },
                BranchTrace::default(),
            );
        }
    };
    let root_bound = root_sol.objective;

    // DFS over subproblems; each node carries its branching path, from
    // which the extra constraints are materialised. Depth-first keeps
    // memory trivial and finds incumbents fast, which the pruning then
    // exploits.
    let mut stack: Vec<Vec<BranchStep>> = vec![Vec::new()];
    let mut incumbent: Option<LpSolution> = warm_start;
    let mut nodes = 0usize;
    let mut exhausted = true;
    let mut trace = BranchTrace {
        complete: true,
        leaves: Vec::new(),
    };
    // Tightest relaxation value among subtrees pruned by the epsilon test;
    // `min(incumbent, pruned_floor)` is always a valid lower bound.
    let mut pruned_floor = f64::INFINITY;

    while let Some(path) = stack.pop() {
        if nodes >= node_limit {
            exhausted = false;
            break;
        }
        nodes += 1;
        let mut sub = lp.clone();
        sub.constraints
            .extend(path.iter().map(|&s| step_constraint(s, lp.n_vars)));
        let sol = match solve_lp(&sub) {
            LpOutcome::Optimal(s) => s,
            // Solver failure on a subproblem: its subtree was not explored,
            // so the search is no longer exhaustive and the final bound must
            // degrade to the root relaxation (as on node-budget exhaustion).
            LpOutcome::Error(_) => {
                exhausted = false;
                continue;
            }
            // Branching only tightens a feasible bounded problem, so
            // Unbounded cannot appear below a bounded root (the node is
            // skipped and the trace voided); Infeasible prunes the node and
            // is a certifiable leaf.
            LpOutcome::Infeasible => {
                trace.leaves.push(path);
                continue;
            }
            LpOutcome::Unbounded => {
                trace.complete = false;
                continue;
            }
        };
        if let Some(inc) = &incumbent {
            // Relative epsilon: subtrees that cannot improve the incumbent
            // by more than `rel_gap` of its value are not worth proving out.
            let eps = 1e-9f64.max(rel_gap * inc.objective.abs());
            if sol.objective >= inc.objective - eps {
                pruned_floor = pruned_floor.min(sol.objective);
                trace.leaves.push(path);
                continue; // dominated subtree
            }
        }
        match most_fractional(&sol.x, integer_vars) {
            None => {
                // Integral: round off numerical fuzz and keep as incumbent.
                let mut s = sol;
                for &i in integer_vars {
                    s.x[i] = s.x[i].round();
                }
                incumbent = Some(s);
                trace.leaves.push(path);
            }
            Some((var, value)) => {
                let mut le = path.clone();
                le.push(BranchStep {
                    var,
                    ge: false,
                    bound: value.floor() as i64,
                });
                let mut ge = path;
                ge.push(BranchStep {
                    var,
                    ge: true,
                    bound: value.ceil() as i64,
                });
                // Push the "floor" branch last so it is explored first:
                // rounding down work assignments tends to be feasible.
                stack.push(ge);
                stack.push(le);
            }
        }
    }

    let (lower_bound, optimal) = match (&incumbent, exhausted) {
        (Some(inc), true) => (inc.objective.min(pruned_floor), true),
        (Some(_), false) | (None, false) => (root_bound, false),
        (None, true) => (pruned_floor, true), // integer-infeasible unless pruned
    };
    trace.complete &= exhausted;
    (
        IlpResult {
            solution: incumbent,
            lower_bound,
            optimal,
            nodes,
        },
        trace,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_lp_passthrough_when_already_integral() {
        // min x + y s.t. x + y >= 4, x <= 2 -> LP gives (2, 2), integral.
        let lp = LinearProgram {
            n_vars: 2,
            objective: vec![1.0, 1.0],
            minimize: true,
            constraints: vec![
                Constraint::new(vec![1.0, 1.0], Relation::Ge, 4.0),
                Constraint::new(vec![1.0, 0.0], Relation::Le, 2.0),
            ],
        };
        let r = solve_ilp(&lp, &[0, 1], 1000);
        assert!(r.optimal);
        assert!((r.lower_bound - 4.0).abs() < 1e-6);
    }

    #[test]
    fn integrality_gap_enforced() {
        // min l s.t. n_c + n_g = 3, n_c <= l, 0.3 n_g <= l.
        // LP relaxation: l = 0.6923; ILP: best split n_c=0,n_g=3 -> l = 0.9.
        let lp = LinearProgram {
            n_vars: 3, // n_c, n_g, l
            objective: vec![0.0, 0.0, 1.0],
            minimize: true,
            constraints: vec![
                Constraint::new(vec![1.0, 1.0, 0.0], Relation::Eq, 3.0),
                Constraint::new(vec![1.0, 0.0, -1.0], Relation::Le, 0.0),
                Constraint::new(vec![0.0, 0.3, -1.0], Relation::Le, 0.0),
            ],
        };
        let r = solve_ilp(&lp, &[0, 1], 1000);
        assert!(r.optimal);
        let sol = r.solution.unwrap();
        assert!((sol.objective - 0.9).abs() < 1e-6, "obj {}", sol.objective);
        assert!((sol.x[0] - 0.0).abs() < 1e-6);
        assert!((sol.x[1] - 3.0).abs() < 1e-6);
        // ILP optimum dominates the LP relaxation.
        assert!(r.lower_bound >= 0.6923 - 1e-6);
    }

    #[test]
    fn knapsack_style() {
        // min 5x + 4y s.t. 2x + 3y >= 7  (integers) -> candidates:
        // x=0,y=3 -> 12 ; x=2,y=1 -> 14 ; x=1,y=2 -> 13; best 12.
        let lp = LinearProgram {
            n_vars: 2,
            objective: vec![5.0, 4.0],
            minimize: true,
            constraints: vec![Constraint::new(vec![2.0, 3.0], Relation::Ge, 7.0)],
        };
        let r = solve_ilp(&lp, &[0, 1], 1000);
        assert!(r.optimal);
        assert!((r.solution.unwrap().objective - 12.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_ilp() {
        let lp = LinearProgram {
            n_vars: 1,
            objective: vec![1.0],
            minimize: true,
            constraints: vec![
                Constraint::new(vec![1.0], Relation::Ge, 5.0),
                Constraint::new(vec![1.0], Relation::Le, 3.0),
            ],
        };
        let r = solve_ilp(&lp, &[0], 1000);
        assert!(r.solution.is_none());
        assert!(r.optimal);
        assert!(r.lower_bound.is_infinite());
    }

    #[test]
    fn node_limit_degrades_to_root_bound() {
        // Same instance as integrality_gap_enforced but with a 1-node budget:
        // no incumbent, bound = root relaxation.
        let lp = LinearProgram {
            n_vars: 3,
            objective: vec![0.0, 0.0, 1.0],
            minimize: true,
            constraints: vec![
                Constraint::new(vec![1.0, 1.0, 0.0], Relation::Eq, 3.0),
                Constraint::new(vec![1.0, 0.0, -1.0], Relation::Le, 0.0),
                Constraint::new(vec![0.0, 0.3, -1.0], Relation::Le, 0.0),
            ],
        };
        let r = solve_ilp(&lp, &[0, 1], 1);
        assert!(!r.optimal);
        assert!(
            (r.lower_bound - 0.9 / 1.3).abs() < 1e-4,
            "{}",
            r.lower_bound
        );
    }

    #[test]
    fn trace_records_a_complementary_leaf_cover() {
        // The integrality-gap instance branches at least once; the trace
        // must be complete, contain every leaf, and each sibling pair must
        // complement (`≤ k` / `≥ k+1` on the same variable).
        let lp = LinearProgram {
            n_vars: 3,
            objective: vec![0.0, 0.0, 1.0],
            minimize: true,
            constraints: vec![
                Constraint::new(vec![1.0, 1.0, 0.0], Relation::Eq, 3.0),
                Constraint::new(vec![1.0, 0.0, -1.0], Relation::Le, 0.0),
                Constraint::new(vec![0.0, 0.3, -1.0], Relation::Le, 0.0),
            ],
        };
        let (r, trace) = solve_ilp_traced(&lp, &[0, 1], 1000, None, 1e-7);
        assert!(r.optimal && trace.complete);
        assert!(trace.leaves.len() >= 2, "instance must branch");
        // First steps of the two subtrees complement each other.
        let firsts: Vec<BranchStep> = trace
            .leaves
            .iter()
            .filter_map(|p| p.first().copied())
            .collect();
        let le = firsts.iter().find(|s| !s.ge).expect("a ≤ branch");
        let ge = firsts.iter().find(|s| s.ge).expect("a ≥ branch");
        assert_eq!(le.var, ge.var);
        assert_eq!(ge.bound, le.bound + 1);
        // The traced result is the same as the untraced one.
        let plain = solve_ilp_gap(&lp, &[0, 1], 1000, None, 1e-7);
        assert_eq!(plain.lower_bound, r.lower_bound);
        assert_eq!(plain.nodes, r.nodes);
    }

    #[test]
    fn fractional_continuous_vars_allowed() {
        // Only x is integral; y may stay fractional. min x + y with
        // x + 2y >= 3.5: y is twice as effective per unit cost, so the
        // optimum is x = 0 (already integral), y = 1.75.
        let lp = LinearProgram {
            n_vars: 2,
            objective: vec![1.0, 1.0],
            minimize: true,
            constraints: vec![
                Constraint::new(vec![1.0, 2.0], Relation::Ge, 3.5),
                Constraint::new(vec![1.0, 0.0], Relation::Le, 1.0),
            ],
        };
        let r = solve_ilp(&lp, &[0], 1000);
        let sol = r.solution.unwrap();
        assert!((sol.x[0] - 0.0).abs() < 1e-6);
        assert!((sol.x[1] - 1.75).abs() < 1e-6);
        assert!((sol.objective - 1.75).abs() < 1e-6);
    }
}
