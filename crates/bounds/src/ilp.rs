//! Branch-and-bound integer programming on top of the simplex relaxation.
//!
//! The paper's bound LPs require the task counts `n_rt` to be integral
//! (`n_rt ∈ ℕ`). With at most eight integral variables, textbook
//! branch-and-bound over the LP relaxation solves these instantly.

use crate::simplex::{solve_lp, Constraint, LinearProgram, LpOutcome, LpSolution, Relation};

/// Result of a branch-and-bound run on a minimization ILP.
#[derive(Clone, Debug)]
pub struct IlpResult {
    /// Best integral solution found (`None` if none was found within the
    /// node budget or the problem is infeasible).
    pub solution: Option<LpSolution>,
    /// A valid lower bound on the ILP optimum (the root relaxation when the
    /// search was truncated, the incumbent value when it completed).
    pub lower_bound: f64,
    /// Whether the search proved optimality of `solution`.
    pub optimal: bool,
    /// Nodes explored.
    pub nodes: usize,
}

const INT_TOL: f64 = 1e-6;

fn most_fractional(x: &[f64], integer_vars: &[usize]) -> Option<(usize, f64)> {
    integer_vars
        .iter()
        .filter_map(|&i| {
            let v = x[i];
            let frac = (v - v.round()).abs();
            if frac > INT_TOL {
                // Distance from 0.5 fractional part, smaller = more fractional.
                let dist = ((v - v.floor()) - 0.5).abs();
                Some((i, v, dist))
            } else {
                None
            }
        })
        .min_by(|a, b| a.2.partial_cmp(&b.2).expect("fractionality is finite"))
        .map(|(i, v, _)| (i, v))
}

/// Solve `min c·x` with the variables in `integer_vars` restricted to ℕ
/// (all variables remain ≥ 0). Explores at most `node_limit` nodes.
///
/// # Panics
/// Panics if `lp.minimize` is false; the bound computations only ever
/// minimize, and supporting maximization would double the sign bookkeeping
/// for no caller.
pub fn solve_ilp(lp: &LinearProgram, integer_vars: &[usize], node_limit: usize) -> IlpResult {
    solve_ilp_with_incumbent(lp, integer_vars, node_limit, None)
}

/// [`solve_ilp`] with an optional starting incumbent (a known
/// integral-feasible solution, e.g. from a rounding heuristic) and an
/// explicit relative optimality gap. A good incumbent lets branch-and-bound
/// prune near-degenerate subtrees that would otherwise be enumerated
/// exhaustively; `rel_gap` trades proof effort for speed while
/// [`IlpResult::lower_bound`] stays valid (it tracks the tightest pruned
/// relaxation).
pub fn solve_ilp_with_incumbent(
    lp: &LinearProgram,
    integer_vars: &[usize],
    node_limit: usize,
    warm_start: Option<LpSolution>,
) -> IlpResult {
    solve_ilp_gap(lp, integer_vars, node_limit, warm_start, 1e-7)
}

/// Fully-parameterised branch-and-bound; see [`solve_ilp_with_incumbent`].
pub fn solve_ilp_gap(
    lp: &LinearProgram,
    integer_vars: &[usize],
    node_limit: usize,
    warm_start: Option<LpSolution>,
    rel_gap: f64,
) -> IlpResult {
    assert!(lp.minimize, "solve_ilp only supports minimization");

    let root = solve_lp(lp);
    let root_sol = match root {
        LpOutcome::Optimal(s) => s,
        LpOutcome::Infeasible => {
            return IlpResult {
                solution: None,
                lower_bound: f64::INFINITY,
                optimal: true,
                nodes: 1,
            }
        }
        LpOutcome::Unbounded => {
            return IlpResult {
                solution: None,
                lower_bound: f64::NEG_INFINITY,
                optimal: false,
                nodes: 1,
            }
        }
        // No verdict on the root relaxation: nothing can be claimed about
        // the ILP either, so report the weakest valid lower bound.
        LpOutcome::Error(_) => {
            return IlpResult {
                solution: None,
                lower_bound: f64::NEG_INFINITY,
                optimal: false,
                nodes: 1,
            }
        }
    };
    let root_bound = root_sol.objective;

    // DFS over subproblems; each node carries the extra branching
    // constraints. Depth-first keeps memory trivial and finds incumbents
    // fast, which the pruning then exploits.
    let mut stack: Vec<Vec<Constraint>> = vec![Vec::new()];
    let mut incumbent: Option<LpSolution> = warm_start;
    let mut nodes = 0usize;
    let mut exhausted = true;
    // Tightest relaxation value among subtrees pruned by the epsilon test;
    // `min(incumbent, pruned_floor)` is always a valid lower bound.
    let mut pruned_floor = f64::INFINITY;

    while let Some(extra) = stack.pop() {
        if nodes >= node_limit {
            exhausted = false;
            break;
        }
        nodes += 1;
        let mut sub = lp.clone();
        sub.constraints.extend(extra.iter().cloned());
        let sol = match solve_lp(&sub) {
            LpOutcome::Optimal(s) => s,
            // Solver failure on a subproblem: its subtree was not explored,
            // so the search is no longer exhaustive and the final bound must
            // degrade to the root relaxation (as on node-budget exhaustion).
            LpOutcome::Error(_) => {
                exhausted = false;
                continue;
            }
            // Branching only tightens a feasible bounded problem, so
            // Unbounded cannot appear below a bounded root; Infeasible
            // prunes the node.
            LpOutcome::Infeasible | LpOutcome::Unbounded => continue,
        };
        if let Some(inc) = &incumbent {
            // Relative epsilon: subtrees that cannot improve the incumbent
            // by more than `rel_gap` of its value are not worth proving out.
            let eps = 1e-9f64.max(rel_gap * inc.objective.abs());
            if sol.objective >= inc.objective - eps {
                pruned_floor = pruned_floor.min(sol.objective);
                continue; // dominated subtree
            }
        }
        match most_fractional(&sol.x, integer_vars) {
            None => {
                // Integral: round off numerical fuzz and keep as incumbent.
                let mut s = sol;
                for &i in integer_vars {
                    s.x[i] = s.x[i].round();
                }
                incumbent = Some(s);
            }
            Some((var, value)) => {
                let mut le = extra.clone();
                let mut coeffs = vec![0.0; lp.n_vars];
                coeffs[var] = 1.0;
                le.push(Constraint::new(coeffs.clone(), Relation::Le, value.floor()));
                let mut ge = extra;
                ge.push(Constraint::new(coeffs, Relation::Ge, value.ceil()));
                // Push the "floor" branch last so it is explored first:
                // rounding down work assignments tends to be feasible.
                stack.push(ge);
                stack.push(le);
            }
        }
    }

    let (lower_bound, optimal) = match (&incumbent, exhausted) {
        (Some(inc), true) => (inc.objective.min(pruned_floor), true),
        (Some(_), false) | (None, false) => (root_bound, false),
        (None, true) => (pruned_floor, true), // integer-infeasible unless pruned
    };
    IlpResult {
        solution: incumbent,
        lower_bound,
        optimal,
        nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_lp_passthrough_when_already_integral() {
        // min x + y s.t. x + y >= 4, x <= 2 -> LP gives (2, 2), integral.
        let lp = LinearProgram {
            n_vars: 2,
            objective: vec![1.0, 1.0],
            minimize: true,
            constraints: vec![
                Constraint::new(vec![1.0, 1.0], Relation::Ge, 4.0),
                Constraint::new(vec![1.0, 0.0], Relation::Le, 2.0),
            ],
        };
        let r = solve_ilp(&lp, &[0, 1], 1000);
        assert!(r.optimal);
        assert!((r.lower_bound - 4.0).abs() < 1e-6);
    }

    #[test]
    fn integrality_gap_enforced() {
        // min l s.t. n_c + n_g = 3, n_c <= l, 0.3 n_g <= l.
        // LP relaxation: l = 0.6923; ILP: best split n_c=0,n_g=3 -> l = 0.9.
        let lp = LinearProgram {
            n_vars: 3, // n_c, n_g, l
            objective: vec![0.0, 0.0, 1.0],
            minimize: true,
            constraints: vec![
                Constraint::new(vec![1.0, 1.0, 0.0], Relation::Eq, 3.0),
                Constraint::new(vec![1.0, 0.0, -1.0], Relation::Le, 0.0),
                Constraint::new(vec![0.0, 0.3, -1.0], Relation::Le, 0.0),
            ],
        };
        let r = solve_ilp(&lp, &[0, 1], 1000);
        assert!(r.optimal);
        let sol = r.solution.unwrap();
        assert!((sol.objective - 0.9).abs() < 1e-6, "obj {}", sol.objective);
        assert!((sol.x[0] - 0.0).abs() < 1e-6);
        assert!((sol.x[1] - 3.0).abs() < 1e-6);
        // ILP optimum dominates the LP relaxation.
        assert!(r.lower_bound >= 0.6923 - 1e-6);
    }

    #[test]
    fn knapsack_style() {
        // min 5x + 4y s.t. 2x + 3y >= 7  (integers) -> candidates:
        // x=0,y=3 -> 12 ; x=2,y=1 -> 14 ; x=1,y=2 -> 13; best 12.
        let lp = LinearProgram {
            n_vars: 2,
            objective: vec![5.0, 4.0],
            minimize: true,
            constraints: vec![Constraint::new(vec![2.0, 3.0], Relation::Ge, 7.0)],
        };
        let r = solve_ilp(&lp, &[0, 1], 1000);
        assert!(r.optimal);
        assert!((r.solution.unwrap().objective - 12.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_ilp() {
        let lp = LinearProgram {
            n_vars: 1,
            objective: vec![1.0],
            minimize: true,
            constraints: vec![
                Constraint::new(vec![1.0], Relation::Ge, 5.0),
                Constraint::new(vec![1.0], Relation::Le, 3.0),
            ],
        };
        let r = solve_ilp(&lp, &[0], 1000);
        assert!(r.solution.is_none());
        assert!(r.optimal);
        assert!(r.lower_bound.is_infinite());
    }

    #[test]
    fn node_limit_degrades_to_root_bound() {
        // Same instance as integrality_gap_enforced but with a 1-node budget:
        // no incumbent, bound = root relaxation.
        let lp = LinearProgram {
            n_vars: 3,
            objective: vec![0.0, 0.0, 1.0],
            minimize: true,
            constraints: vec![
                Constraint::new(vec![1.0, 1.0, 0.0], Relation::Eq, 3.0),
                Constraint::new(vec![1.0, 0.0, -1.0], Relation::Le, 0.0),
                Constraint::new(vec![0.0, 0.3, -1.0], Relation::Le, 0.0),
            ],
        };
        let r = solve_ilp(&lp, &[0, 1], 1);
        assert!(!r.optimal);
        assert!(
            (r.lower_bound - 0.9 / 1.3).abs() < 1e-4,
            "{}",
            r.lower_bound
        );
    }

    #[test]
    fn fractional_continuous_vars_allowed() {
        // Only x is integral; y may stay fractional. min x + y with
        // x + 2y >= 3.5: y is twice as effective per unit cost, so the
        // optimum is x = 0 (already integral), y = 1.75.
        let lp = LinearProgram {
            n_vars: 2,
            objective: vec![1.0, 1.0],
            minimize: true,
            constraints: vec![
                Constraint::new(vec![1.0, 2.0], Relation::Ge, 3.5),
                Constraint::new(vec![1.0, 0.0], Relation::Le, 1.0),
            ],
        };
        let r = solve_ilp(&lp, &[0], 1000);
        let sol = r.solution.unwrap();
        assert!((sol.x[0] - 0.0).abs() < 1e-6);
        assert!((sol.x[1] - 1.75).abs() < 1e-6);
        assert!((sol.objective - 1.75).abs() < 1e-6);
    }
}
