//! # hetchol-bounds
//!
//! Makespan lower bounds for heterogeneous scheduling, reproducing
//! Section III of the paper:
//!
//! * [`simplex`] — a dense two-phase primal simplex LP solver (the paper's
//!   LPs have at most `|kernels| × |classes| + 1 = 9` variables, so a
//!   textbook implementation solves them exactly and instantly). The
//!   solver exports dual multipliers from its final tableau.
//! * [`ilp`] — branch-and-bound on top of the LP relaxation, restoring the
//!   paper's integrality requirement `n_rt ∈ ℕ`, with an optional trace of
//!   the explored branch tree for certification.
//! * [`bounds`] — the **area bound** (work conservation per resource
//!   class), the **mixed bound** (area + the POTRF/TRSM/SYRK critical
//!   chain), the **critical-path bound** and the **GEMM peak**, plus the
//!   conversion of each into a GFLOP/s performance upper bound
//!   (Figure 2 of the paper).
//! * [`cert`] — exact-arithmetic certification: rational LP duality
//!   certificates for the area/mixed bounds and an independent checker
//!   that re-verifies them without trusting the solver.
//! * [`tol`] — the crate's single home for f64 tolerances.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod cert;
pub mod ilp;
pub mod simplex;
pub mod tol;

pub use bounds::{
    area_bound, area_bound_algo, critical_path_bound, gemm_peak_gflops, kernel_peak_gflops,
    mixed_bound, mixed_bound_algo, BoundSet,
};
pub use cert::{
    certify_bound, certify_bounds, verify_certificate, BoundCertificate, BoundKind, CertError,
    CertReject, CertifiedBoundSet, LeafCert, LeafVerdict, Rat, RatLp, RatRow, VerifiedBounds,
};
pub use ilp::{solve_ilp, solve_ilp_traced, BranchStep, BranchTrace};
pub use simplex::{
    solve_lp, Constraint, LinearProgram, LpOutcome, LpSolution, Relation, SimplexError,
};
