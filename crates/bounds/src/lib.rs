//! # hetchol-bounds
//!
//! Makespan lower bounds for heterogeneous scheduling, reproducing
//! Section III of the paper:
//!
//! * [`simplex`] — a dense two-phase primal simplex LP solver (the paper's
//!   LPs have at most `|kernels| × |classes| + 1 = 9` variables, so a
//!   textbook implementation solves them exactly and instantly).
//! * [`ilp`] — branch-and-bound on top of the LP relaxation, restoring the
//!   paper's integrality requirement `n_rt ∈ ℕ`.
//! * [`bounds`] — the **area bound** (work conservation per resource
//!   class), the **mixed bound** (area + the POTRF/TRSM/SYRK critical
//!   chain), the **critical-path bound** and the **GEMM peak**, plus the
//!   conversion of each into a GFLOP/s performance upper bound
//!   (Figure 2 of the paper).

pub mod bounds;
pub mod ilp;
pub mod simplex;

pub use bounds::{
    area_bound, area_bound_algo, critical_path_bound, gemm_peak_gflops, kernel_peak_gflops,
    mixed_bound, mixed_bound_algo, BoundSet,
};
pub use ilp::solve_ilp;
pub use simplex::{
    solve_lp, Constraint, LinearProgram, LpOutcome, LpSolution, Relation, SimplexError,
};
