//! Per-(kernel, resource-class) timing profiles.
//!
//! StarPU calibrates the execution time `T_rt` of every kernel `t` on every
//! resource class `r` (paper Section IV-A); all bounds, schedulers and the
//! simulator consume exactly this table. The [`TimingProfile::mirage`]
//! profile reproduces the paper's measured *shape*: the GPU/CPU speedups are
//! exactly those of Table I (2×, 11×, 26×, 29×) and the absolute scale is
//! chosen so that the aggregate GEMM peak matches the paper's plots
//! (≈ 913 GFLOP/s heterogeneous, ≈ 86 GFLOP/s on 9 CPU cores).

use crate::kernel::Kernel;
use crate::platform::{ClassId, Platform};
use crate::time::Time;

/// Execution-time table `T_rt` plus tile geometry.
#[derive(Clone, Debug)]
pub struct TimingProfile {
    /// Tile size `nb` (the paper fixes `nb = 960`).
    nb: usize,
    /// `times[class][kernel.index()]`.
    times: Vec<[Time; Kernel::COUNT]>,
}

/// Tile size used throughout the paper's experiments.
pub const PAPER_TILE_SIZE: usize = 960;

/// CPU-core kernel times (ms) at `nb = 960` backing the Mirage profile.
/// The first four (Cholesky) are chosen to match realistic
/// MKL-on-Westmere rates (GEMM ≈ 9.5 GFLOP/s per core) — see DESIGN.md §5.
/// The LU/QR entries are flop-proportional extrapolations at slightly
/// lower rates for the irregular kernels (extension, DESIGN.md §9).
pub const MIRAGE_CPU_MS: [f64; Kernel::COUNT] = [
    59.0,  // POTRF
    104.0, // TRSM
    98.0,  // SYRK
    186.0, // GEMM
    118.0, // GETRF (2x the POTRF work, no pivoting)
    168.0, // GEQRT
    236.0, // TSQRT
    197.0, // ORMQR
    393.0, // TSMQR
];

/// GPU/CPU speedup of each kernel on Mirage. The Cholesky entries are the
/// paper's Table I; the LU/QR entries follow the same pattern — irregular
/// factorization kernels accelerate poorly, regular applications well.
pub const MIRAGE_GPU_SPEEDUP: [f64; Kernel::COUNT] =
    [2.0, 11.0, 26.0, 29.0, 3.0, 2.5, 4.0, 18.0, 22.0];

impl TimingProfile {
    /// Build a profile from explicit per-class kernel times.
    ///
    /// # Panics
    /// Panics if `times` is empty or `nb == 0`.
    pub fn new(nb: usize, times: Vec<[Time; Kernel::COUNT]>) -> TimingProfile {
        assert!(nb > 0, "tile size must be positive");
        assert!(!times.is_empty(), "need at least one resource class");
        TimingProfile { nb, times }
    }

    /// The Mirage profile (heterogeneous, class 0 = CPU, class 1 = GPU).
    pub fn mirage() -> TimingProfile {
        let cpu: [Time; Kernel::COUNT] =
            std::array::from_fn(|i| Time::from_millis_f64(MIRAGE_CPU_MS[i]));
        let gpu: [Time; Kernel::COUNT] = std::array::from_fn(|i| {
            Time::from_millis_f64(MIRAGE_CPU_MS[i] / MIRAGE_GPU_SPEEDUP[i])
        });
        TimingProfile::new(PAPER_TILE_SIZE, vec![cpu, gpu])
    }

    /// The homogeneous profile: Mirage's CPU column only.
    pub fn mirage_homogeneous() -> TimingProfile {
        let cpu: [Time; Kernel::COUNT] =
            std::array::from_fn(|i| Time::from_millis_f64(MIRAGE_CPU_MS[i]));
        TimingProfile::new(PAPER_TILE_SIZE, vec![cpu])
    }

    /// The paper's common acceleration factor `K(n)` for the *related*
    /// platform (Section V-C2): the mean of the per-kernel GPU speedups
    /// weighted by the task counts of an `n × n`-tile Cholesky.
    ///
    /// Reproduces the paper's values exactly: `K(4) = 17.30`,
    /// `K(8) = 22.30`, ..., `K(32) ≈ 27.11`.
    pub fn acceleration_factor(n: usize) -> f64 {
        let total = Kernel::total_cholesky_tasks(n);
        assert!(total > 0, "empty factorization has no acceleration factor");
        let weighted: f64 = Kernel::CHOLESKY
            .iter()
            .map(|&k| k.count_in_cholesky(n) as f64 * MIRAGE_GPU_SPEEDUP[k.index()])
            .sum();
        weighted / total as f64
    }

    /// The fictitious *heterogeneous related* profile of Section V-C2:
    /// CPU times are Mirage's; every GPU time is exactly `K(n)` times
    /// faster than the CPU time.
    pub fn mirage_related(n: usize) -> TimingProfile {
        let k = Self::acceleration_factor(n);
        let cpu: [Time; Kernel::COUNT] =
            std::array::from_fn(|i| Time::from_millis_f64(MIRAGE_CPU_MS[i]));
        let gpu: [Time; Kernel::COUNT] =
            std::array::from_fn(|i| Time::from_millis_f64(MIRAGE_CPU_MS[i] / k));
        TimingProfile::new(PAPER_TILE_SIZE, vec![cpu, gpu])
    }

    /// Tile size.
    #[inline]
    pub fn nb(&self) -> usize {
        self.nb
    }

    /// Tile footprint in bytes (`nb² × 8` for f64).
    #[inline]
    pub fn tile_bytes(&self) -> usize {
        self.nb * self.nb * 8
    }

    /// Number of resource classes covered by this profile.
    #[inline]
    pub fn n_classes(&self) -> usize {
        self.times.len()
    }

    /// Execution time `T_rt` of `kernel` on class `class`.
    #[inline]
    pub fn time(&self, kernel: Kernel, class: ClassId) -> Time {
        self.times[class][kernel.index()]
    }

    /// Deterministic content hash over the full timing table and tile
    /// geometry — the serving layer's cache key ingredient
    /// ([`crate::hash`]).
    pub fn content_hash(&self) -> u64 {
        let mut h = crate::hash::ContentHasher::new();
        h.write_usize(self.nb);
        h.write_usize(self.times.len());
        for class in &self.times {
            for t in class {
                h.write_u64(t.as_nanos());
            }
        }
        h.finish()
    }

    /// Fastest execution time of `kernel` over all classes — the weight used
    /// by the critical-path bound and the `dmdas` priorities.
    pub fn fastest_time(&self, kernel: Kernel) -> Time {
        self.times
            .iter()
            .map(|row| row[kernel.index()])
            .min()
            .expect("profile has at least one class")
    }

    /// GPU/CPU-style speedup of a kernel between two classes
    /// (`time(k, slow) / time(k, fast)`).
    pub fn speedup(&self, kernel: Kernel, fast: ClassId, slow: ClassId) -> f64 {
        self.time(kernel, slow).as_secs_f64() / self.time(kernel, fast).as_secs_f64()
    }

    /// GFLOP/s rate of a kernel on a class.
    pub fn gflops_rate(&self, kernel: Kernel, class: ClassId) -> f64 {
        kernel.flops(self.nb) / self.time(kernel, class).as_secs_f64() / 1e9
    }

    /// The platform-wide *GEMM peak* (paper Section III): the sum over all
    /// workers of their GEMM GFLOP/s rate.
    pub fn gemm_peak(&self, platform: &Platform) -> f64 {
        platform
            .workers()
            .map(|w| self.gflops_rate(Kernel::Gemm, platform.class_of(w)))
            .sum()
    }

    /// Average relative speed of each class over the *given* kernels,
    /// normalised so the slowest class is 1. Used by the `random`
    /// scheduler's weighting ("estimation of the relative performance of
    /// the resources", Section V-A) with the kernel set of the running
    /// application.
    pub fn relative_class_speeds_for(&self, platform: &Platform, kernels: &[Kernel]) -> Vec<f64> {
        assert!(!kernels.is_empty(), "need at least one kernel");
        let rates: Vec<f64> = (0..platform.n_classes())
            .map(|c| {
                // Average the speed ratio over the application's kernels:
                // this is StarPU's average acceleration ratio.
                kernels
                    .iter()
                    .map(|&k| {
                        let fastest = self.fastest_time(k).as_secs_f64();
                        let mine = self.time(k, c).as_secs_f64();
                        fastest / mine
                    })
                    .sum::<f64>()
                    / kernels.len() as f64
            })
            .collect();
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        rates.iter().map(|r| r / min).collect()
    }

    /// [`TimingProfile::relative_class_speeds_for`] over the Cholesky
    /// kernel set (the paper's application).
    pub fn relative_class_speeds(&self, platform: &Platform) -> Vec<f64> {
        self.relative_class_speeds_for(platform, &Kernel::CHOLESKY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirage_speedups_match_table_one() {
        let p = TimingProfile::mirage();
        for k in Kernel::ALL {
            let s = p.speedup(k, 1, 0);
            // GPU times are rounded to the nanosecond, so the ratio is exact
            // to ~1e-5.
            assert!((s - MIRAGE_GPU_SPEEDUP[k.index()]).abs() < 1e-4, "{k}: {s}");
        }
    }

    #[test]
    fn acceleration_factors_match_paper() {
        // Section V-C2: "Acceleration factors for 4, 8, 12, 16, 20, 24, 28
        // and 32 tiles matrices are 17.30, 22.30, 24.30, 25.38, 26.06,
        // 26.52, 26.86 and 27.11 respectively."
        let expected = [
            (4, 17.30),
            (8, 22.30),
            (12, 24.30),
            (16, 25.38),
            (20, 26.06),
            (24, 26.52),
            (28, 26.86),
            (32, 27.11),
        ];
        for (n, k) in expected {
            let got = TimingProfile::acceleration_factor(n);
            assert!((got - k).abs() < 0.005, "K({n}) = {got}, expected {k}");
        }
    }

    #[test]
    fn gemm_peak_matches_design_doc() {
        let prof = TimingProfile::mirage();
        let hetero = prof.gemm_peak(&Platform::mirage());
        assert!(
            (900.0..930.0).contains(&hetero),
            "heterogeneous GEMM peak {hetero}"
        );
        let homog = TimingProfile::mirage_homogeneous().gemm_peak(&Platform::homogeneous(9));
        assert!(
            (80.0..92.0).contains(&homog),
            "homogeneous GEMM peak {homog}"
        );
    }

    #[test]
    fn fastest_time_picks_gpu_for_gemm_cpu_for_nothing() {
        let p = TimingProfile::mirage();
        for k in Kernel::ALL {
            // On Mirage the GPU is faster for every kernel (2x for POTRF).
            assert_eq!(p.fastest_time(k), p.time(k, 1), "{k}");
        }
    }

    #[test]
    fn lu_qr_kernel_rates_are_physical() {
        // The extension kernels should have CPU rates in the same ballpark
        // as the Cholesky BLAS3 kernels (4-10 GFLOP/s per Westmere core).
        let p = TimingProfile::mirage();
        for k in [
            Kernel::Getrf,
            Kernel::Geqrt,
            Kernel::Tsqrt,
            Kernel::Ormqr,
            Kernel::Tsmqr,
        ] {
            let rate = p.gflops_rate(k, 0);
            assert!((3.0..11.0).contains(&rate), "{k}: {rate} GFLOP/s");
            // And GPU strictly faster than CPU on Mirage for every kernel.
            assert!(p.time(k, 1) < p.time(k, 0), "{k}");
        }
    }

    #[test]
    fn related_profile_uniform_speedup() {
        let n = 8;
        let p = TimingProfile::mirage_related(n);
        let k = TimingProfile::acceleration_factor(n);
        for kern in Kernel::ALL {
            let s = p.speedup(kern, 1, 0);
            assert!((s - k).abs() < 1e-3, "{kern}: {s} vs K={k}");
        }
    }

    #[test]
    fn tile_bytes_960() {
        assert_eq!(TimingProfile::mirage().tile_bytes(), 7_372_800);
    }

    #[test]
    fn relative_class_speeds_normalised() {
        let p = TimingProfile::mirage();
        let speeds = p.relative_class_speeds(&Platform::mirage());
        assert_eq!(speeds.len(), 2);
        assert!((speeds[0] - 1.0).abs() < 1e-9, "CPU is the slow class");
        // Mean of 1/(1/2 + 1/11 + 1/26 + 1/29)/4 ≈ 6.03.
        assert!(
            speeds[1] > 5.0,
            "GPU should be >5x on average, got {}",
            speeds[1]
        );
        // Homogeneous: single class, weight 1.
        let ph = TimingProfile::mirage_homogeneous();
        let sh = ph.relative_class_speeds(&Platform::homogeneous(9));
        assert_eq!(sh, vec![1.0]);
    }

    #[test]
    fn gflops_rates_are_physical() {
        let p = TimingProfile::mirage();
        // CPU GEMM ~ 9.5 GFLOP/s, GPU GEMM ~ 276 GFLOP/s.
        let cpu = p.gflops_rate(Kernel::Gemm, 0);
        let gpu = p.gflops_rate(Kernel::Gemm, 1);
        assert!((9.0..10.0).contains(&cpu), "cpu gemm {cpu}");
        assert!((270.0..285.0).contains(&gpu), "gpu gemm {gpu}");
    }

    #[test]
    #[should_panic(expected = "at least one resource class")]
    fn empty_profile_rejected() {
        let _ = TimingProfile::new(960, vec![]);
    }
}
