//! The dynamic-scheduler interface shared by the simulator and the real
//! runtime.
//!
//! The interface mirrors StarPU's *push-model* scheduling: whenever a task's
//! dependencies are all satisfied, the engine calls [`Scheduler::assign`]
//! with the ready task and a read-only [`ExecutionView`] of the engine's
//! state (worker availability estimates, transfer estimates). The scheduler
//! answers with a worker; the engine appends the task to that worker's
//! queue, ordered FIFO or by [`Scheduler::priority`] depending on
//! [`Scheduler::sorted_queues`] (the `dmda` / `dmdas` distinction of the
//! paper, Section V-A).

use crate::dag::TaskGraph;
use crate::platform::{Platform, WorkerId};
use crate::profiles::TimingProfile;
use crate::task::TaskId;
use crate::time::Time;

/// Everything a scheduler may consult about the problem instance.
#[derive(Copy, Clone)]
pub struct SchedContext<'a> {
    /// The task graph being executed.
    pub graph: &'a TaskGraph,
    /// The platform it executes on.
    pub platform: &'a Platform,
    /// Calibrated kernel timings.
    pub profile: &'a TimingProfile,
}

/// Read-only view of the engine state at scheduling time.
///
/// Both the discrete-event simulator and the real runtime implement this;
/// `dmda`-style completion-time heuristics are written once against it.
pub trait ExecutionView {
    /// Current (simulated or wall-clock) time.
    fn now(&self) -> Time;

    /// Estimate of the earliest time worker `w` could *start* a task
    /// appended to its queue now (current task's end plus queued work).
    fn worker_available_at(&self, w: WorkerId) -> Time;

    /// Estimated extra time to bring `task`'s missing input tiles to
    /// worker `w`'s memory node (zero when communications are disabled or
    /// all data is already resident).
    fn transfer_estimate(&self, task: TaskId, w: WorkerId) -> Time;

    /// The worker in `workers` minimising [`estimated_completion`], ties
    /// broken towards the lowest id (StarPU's deterministic iteration
    /// order). `None` iff `workers` is empty.
    ///
    /// Arithmetic and tie-breaking are identical to calling
    /// [`estimated_completion`] per worker under `min_by_key`; this exists
    /// as a trait default so that `dyn ExecutionView` callers cross the
    /// vtable once per *assignment* instead of twice per *worker* — the
    /// body is monomorphised against the concrete view, so the engine's
    /// transfer-estimate hook inlines into the scan (DESIGN.md §13). The
    /// per-task invariants (kernel, `now`) are hoisted out of the loop.
    fn min_completion_worker(
        &self,
        task: TaskId,
        ctx: &SchedContext,
        workers: std::ops::Range<WorkerId>,
    ) -> Option<WorkerId> {
        let kernel = ctx.graph.task(task).kernel();
        let now = self.now();
        let mut best: Option<(Time, WorkerId)> = None;
        // Workers are grouped by class, so one cached profile lookup
        // serves each contiguous class run.
        let mut cached = (usize::MAX, Time::ZERO);
        for w in workers {
            let class = ctx.platform.class_of(w);
            if class != cached.0 {
                cached = (class, ctx.profile.time(kernel, class));
            }
            let avail = self.worker_available_at(w).max(now);
            let done = avail + self.transfer_estimate(task, w) + cached.1;
            if best.is_none_or(|(b, _)| done < b) {
                best = Some((done, w));
            }
        }
        best.map(|(_, w)| w)
    }
}

/// A dynamic scheduling policy.
pub trait Scheduler {
    /// Short policy name used in reports ("dmda", "random", ...).
    fn name(&self) -> &str;

    /// Called once before execution starts; the default does nothing.
    fn init(&mut self, _ctx: &SchedContext) {}

    /// Choose a worker for a task that just became ready.
    fn assign(&mut self, task: TaskId, ctx: &SchedContext, view: &dyn ExecutionView) -> WorkerId;

    /// Priority used to order tasks within a worker queue when
    /// [`Scheduler::sorted_queues`] is `true`; higher runs earlier.
    /// The default gives every task equal priority (FIFO behaviour).
    fn priority(&self, _task: TaskId, _ctx: &SchedContext) -> i64 {
        0
    }

    /// Whether worker queues are kept sorted by [`Scheduler::priority`]
    /// (`dmdas`) instead of FIFO (`dmda`).
    fn sorted_queues(&self) -> bool {
        false
    }

    /// Gate called by the engine before starting a queued task on a
    /// worker. Returning `false` makes the worker *wait* even though the
    /// task is ready — schedule injection uses this to enforce an exact
    /// per-worker order (a worker holds for its planned-next task instead
    /// of backfilling). The default never blocks.
    fn may_start(&mut self, _task: TaskId, _worker: WorkerId) -> bool {
        true
    }

    /// Notification that the engine started `task` on `worker`; the
    /// default does nothing. Injectors advance their per-worker cursor
    /// here.
    fn notify_start(&mut self, _task: TaskId, _worker: WorkerId) {}
}

/// Estimated completion time of `task` on worker `w`: the `dmda` quantity
/// (paper Section V-A): queue availability, plus required data-transfer
/// time, plus execution time on the worker's class.
pub fn estimated_completion(
    task: TaskId,
    w: WorkerId,
    ctx: &SchedContext,
    view: &dyn ExecutionView,
) -> Time {
    let class = ctx.platform.class_of(w);
    let exec = ctx.profile.time(ctx.graph.task(task).kernel(), class);
    let avail = view.worker_available_at(w).max(view.now());
    avail + view.transfer_estimate(task, w) + exec
}

/// A trivial [`ExecutionView`] for unit tests and static list scheduling:
/// fixed availability per worker, no transfers.
#[derive(Clone, Debug, Default)]
pub struct StaticView {
    /// Current time.
    pub now: Time,
    /// Per-worker availability.
    pub available: Vec<Time>,
}

impl ExecutionView for StaticView {
    fn now(&self) -> Time {
        self.now
    }
    fn worker_available_at(&self, w: WorkerId) -> Time {
        self.available.get(w).copied().unwrap_or(Time::ZERO)
    }
    fn transfer_estimate(&self, _task: TaskId, _w: WorkerId) -> Time {
        Time::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Kernel;

    struct FirstWorker;
    impl Scheduler for FirstWorker {
        fn name(&self) -> &str {
            "first"
        }
        fn assign(&mut self, _: TaskId, _: &SchedContext, _: &dyn ExecutionView) -> WorkerId {
            0
        }
    }

    #[test]
    fn estimated_completion_combines_terms() {
        let graph = TaskGraph::cholesky(2);
        let platform = Platform::mirage();
        let profile = TimingProfile::mirage();
        let ctx = SchedContext {
            graph: &graph,
            platform: &platform,
            profile: &profile,
        };
        let view = StaticView {
            now: Time::from_millis(5),
            available: vec![Time::from_millis(100); 12],
        };
        let potrf = graph.entry_tasks()[0];
        // CPU worker 0: available 100 ms + POTRF 59 ms.
        let got = estimated_completion(potrf, 0, &ctx, &view);
        assert_eq!(got, Time::from_millis(159));
        // GPU worker 9: available 100 ms + POTRF 29.5 ms.
        let got = estimated_completion(potrf, 9, &ctx, &view);
        assert_eq!(got, Time::from_millis(100) + profile.time(Kernel::Potrf, 1));
    }

    #[test]
    fn availability_clamped_to_now() {
        let graph = TaskGraph::cholesky(2);
        let platform = Platform::homogeneous(1);
        let profile = TimingProfile::mirage_homogeneous();
        let ctx = SchedContext {
            graph: &graph,
            platform: &platform,
            profile: &profile,
        };
        // Worker idle since t=0, but now is 50 ms: the task cannot start in
        // the past.
        let view = StaticView {
            now: Time::from_millis(50),
            available: vec![Time::ZERO],
        };
        let potrf = graph.entry_tasks()[0];
        assert_eq!(
            estimated_completion(potrf, 0, &ctx, &view),
            Time::from_millis(109)
        );
    }

    #[test]
    fn default_hooks() {
        let graph = TaskGraph::cholesky(2);
        let platform = Platform::homogeneous(1);
        let profile = TimingProfile::mirage_homogeneous();
        let ctx = SchedContext {
            graph: &graph,
            platform: &platform,
            profile: &profile,
        };
        let mut s = FirstWorker;
        s.init(&ctx);
        assert_eq!(s.priority(TaskId(0), &ctx), 0);
        assert!(!s.sorted_queues());
        assert_eq!(s.assign(TaskId(0), &ctx, &StaticView::default()), 0);
    }
}
