//! The supported factorization algorithms, as one dispatchable value.
//!
//! The paper studies Cholesky and observes the methodology carries to the
//! other one-sided factorizations; [`Algorithm`] is the handle the bounds,
//! harness and examples use to run the same experiment on Cholesky, LU
//! (no pivoting) or QR.

use crate::dag::TaskGraph;
use crate::kernel::Kernel;
use crate::time::Time;

/// A tiled one-sided factorization.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Algorithm {
    /// The paper's subject: `A = L·Lᵀ` of an SPD matrix.
    Cholesky,
    /// Tiled LU without pivoting (extension).
    Lu,
    /// Tiled QR, flat-tree elimination (extension).
    Qr,
}

impl Algorithm {
    /// All supported algorithms.
    pub const ALL: [Algorithm; 3] = [Algorithm::Cholesky, Algorithm::Lu, Algorithm::Qr];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::Cholesky => "cholesky",
            Algorithm::Lu => "lu",
            Algorithm::Qr => "qr",
        }
    }

    /// The kernel set of the algorithm.
    pub fn kernels(self) -> &'static [Kernel] {
        match self {
            Algorithm::Cholesky => &Kernel::CHOLESKY,
            Algorithm::Lu => &Kernel::LU,
            Algorithm::Qr => &Kernel::QR,
        }
    }

    /// Number of tasks of `kernel` in an `n × n`-tile factorization.
    pub fn count(self, kernel: Kernel, n: usize) -> usize {
        match self {
            Algorithm::Cholesky => kernel.count_in_cholesky(n),
            Algorithm::Lu => kernel.count_in_lu(n),
            Algorithm::Qr => kernel.count_in_qr(n),
        }
    }

    /// Task counts for every kernel, indexed by [`Kernel::index`].
    pub fn counts(self, n: usize) -> [usize; Kernel::COUNT] {
        std::array::from_fn(|i| self.count(Kernel::from_index(i), n))
    }

    /// Total task count.
    pub fn total_tasks(self, n: usize) -> usize {
        self.counts(n).iter().sum()
    }

    /// Build the task graph.
    pub fn graph(self, n: usize) -> TaskGraph {
        match self {
            Algorithm::Cholesky => TaskGraph::cholesky(n),
            Algorithm::Lu => TaskGraph::lu(n),
            Algorithm::Qr => TaskGraph::qr(n),
        }
    }

    /// Floating-point operations for an `N × N` matrix (element count):
    /// `N³/3` for Cholesky, `2N³/3` for LU, `4N³/3` for QR (leading
    /// order; Cholesky keeps its conventional lower-order terms).
    pub fn flops(self, n_elements: usize) -> f64 {
        let n = n_elements as f64;
        match self {
            Algorithm::Cholesky => crate::metrics::cholesky_flops(n_elements),
            Algorithm::Lu => 2.0 * n * n * n / 3.0,
            Algorithm::Qr => 4.0 * n * n * n / 3.0,
        }
    }

    /// Achieved GFLOP/s for an `n_tiles × n_tiles` run at tile size `nb`.
    pub fn gflops(self, n_tiles: usize, nb: usize, makespan: Time) -> f64 {
        if makespan.is_zero() {
            return 0.0;
        }
        self.flops(n_tiles * nb) / makespan.as_secs_f64() / 1e9
    }

    /// The diagonal-factorization kernel, whose `n` occurrences all sit on
    /// one path of the DAG (the paper's mixed-bound observation for
    /// POTRF generalises to GETRF and GEQRT).
    pub fn diag_kernel(self) -> Kernel {
        match self {
            Algorithm::Cholesky => Kernel::Potrf,
            Algorithm::Lu => Kernel::Getrf,
            Algorithm::Qr => Kernel::Geqrt,
        }
    }

    /// Kernels that appear once per step on the diagonal chain alongside
    /// the diagonal kernel (`n − 1` occurrences each): TRSM+SYRK for
    /// Cholesky (the paper's chain), TRSM+GEMM for LU, TSQRT+TSMQR for QR.
    pub fn chain_kernels(self) -> &'static [Kernel] {
        match self {
            Algorithm::Cholesky => &[Kernel::Trsm, Kernel::Syrk],
            Algorithm::Lu => &[Kernel::Trsm, Kernel::Gemm],
            Algorithm::Qr => &[Kernel::Tsqrt, Kernel::Tsmqr],
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_graphs() {
        for algo in Algorithm::ALL {
            for n in 0..=8usize {
                let g = algo.graph(n);
                assert_eq!(g.len(), algo.total_tasks(n), "{algo} n={n}");
                assert_eq!(g.kernel_counts(), algo.counts(n), "{algo} n={n}");
            }
        }
    }

    #[test]
    fn flop_ratios() {
        let n = 4800;
        let chol = Algorithm::Cholesky.flops(n);
        let lu = Algorithm::Lu.flops(n);
        let qr = Algorithm::Qr.flops(n);
        assert!((lu / chol - 2.0).abs() < 0.01);
        assert!((qr / chol - 4.0).abs() < 0.01);
    }

    #[test]
    fn chain_kernels_belong_to_the_algorithm() {
        for algo in Algorithm::ALL {
            assert!(algo.kernels().contains(&algo.diag_kernel()));
            for k in algo.chain_kernels() {
                assert!(algo.kernels().contains(k), "{algo}: {k}");
            }
        }
    }

    #[test]
    fn gflops_zero_makespan() {
        assert_eq!(Algorithm::Lu.gflops(4, 960, Time::ZERO), 0.0);
        assert!(Algorithm::Qr.gflops(4, 960, Time::from_secs(1)) > 0.0);
    }

    #[test]
    fn labels() {
        assert_eq!(Algorithm::Cholesky.to_string(), "cholesky");
        assert_eq!(Algorithm::Lu.label(), "lu");
        assert_eq!(Algorithm::Qr.label(), "qr");
    }
}
