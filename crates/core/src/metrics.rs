//! Performance metrics and result-series containers.
//!
//! The paper reports everything in GFLOP/s against matrix size in multiples
//! of the 960-element tile; [`gflops`] performs exactly that conversion and
//! [`Series`] carries one plotted curve (mean ± standard deviation over
//! repeated runs, as in the paper's "10 runs" methodology).

use crate::time::Time;

/// Floating-point operations of the Cholesky factorization of an
/// `N × N` matrix (element count, not tiles): `N³/3 + N²/2 + N/6`.
pub fn cholesky_flops(n_elements: usize) -> f64 {
    let n = n_elements as f64;
    n * n * n / 3.0 + n * n / 2.0 + n / 6.0
}

/// Achieved GFLOP/s of a Cholesky factorization of an `n_tiles × n_tiles`
/// tile matrix with tile size `nb`, completed in `makespan`.
pub fn gflops(n_tiles: usize, nb: usize, makespan: Time) -> f64 {
    if makespan.is_zero() {
        return 0.0;
    }
    cholesky_flops(n_tiles * nb) / makespan.as_secs_f64() / 1e9
}

/// Mean and sample standard deviation of a set of observations.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var =
        values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (values.len() - 1) as f64;
    (mean, var.sqrt())
}

/// One point of a plotted curve.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Point {
    /// X coordinate (matrix size in tiles, in the paper's figures).
    pub x: f64,
    /// Mean value over repetitions.
    pub mean: f64,
    /// Standard deviation over repetitions (zero for deterministic runs).
    pub std: f64,
}

/// One labelled curve of a figure.
#[derive(Clone, Debug, Default)]
pub struct Series {
    /// Curve label ("dmda", "mixed bound", ...).
    pub label: String,
    /// The points, in increasing x.
    pub points: Vec<Point>,
}

impl Series {
    /// Create an empty series with a label.
    pub fn new(label: impl Into<String>) -> Series {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a deterministic point.
    pub fn push(&mut self, x: f64, value: f64) {
        self.points.push(Point {
            x,
            mean: value,
            std: 0.0,
        });
    }

    /// Append a point from repeated observations (mean ± std).
    pub fn push_samples(&mut self, x: f64, samples: &[f64]) {
        let (mean, std) = mean_std(samples);
        self.points.push(Point { x, mean, std });
    }

    /// Value at a given x, if present.
    pub fn at(&self, x: f64) -> Option<Point> {
        self.points.iter().copied().find(|p| p.x == x)
    }

    /// Multiply every mean/std by a factor (used by the paper's Figure 8,
    /// which rescales the related-case curves by the bound ratio).
    pub fn scaled(&self, factor: f64) -> Series {
        Series {
            label: self.label.clone(),
            points: self
                .points
                .iter()
                .map(|p| Point {
                    x: p.x,
                    mean: p.mean * factor,
                    std: p.std * factor,
                })
                .collect(),
        }
    }
}

/// A figure: several curves sharing an x axis, renderable as an
/// aligned-column table (the harness's textual stand-in for the paper's
/// plots) or as CSV.
#[derive(Clone, Debug, Default)]
pub struct Figure {
    /// Figure title ("Figure 7: Heterogeneous unrelated simulated ...").
    pub title: String,
    /// X axis label.
    pub x_label: String,
    /// Y axis label.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// Create an empty figure.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Figure {
        Figure {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Add a curve.
    pub fn add(&mut self, series: Series) {
        self.series.push(series);
    }

    /// All x values appearing in any series, sorted and deduplicated.
    pub fn xs(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("x values must not be NaN"));
        xs.dedup();
        xs
    }

    /// Render as an aligned text table: one row per x, one column pair
    /// (mean, std when nonzero) per series.
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = write!(out, "{:>12}", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {:>18}", s.label);
        }
        out.push('\n');
        for x in self.xs() {
            let _ = write!(out, "{x:>12.0}");
            for s in &self.series {
                match s.at(x) {
                    Some(p) if p.std > 0.0 => {
                        let _ = write!(out, " {:>11.2}±{:<6.2}", p.mean, p.std);
                    }
                    Some(p) => {
                        let _ = write!(out, " {:>18.2}", p.mean);
                    }
                    None => {
                        let _ = write!(out, " {:>18}", "-");
                    }
                }
            }
            out.push('\n');
        }
        out
    }

    /// Render as pretty-printed JSON, mirroring the struct layout
    /// (`{"title": ..., "series": [{"label": ..., "points": [...]}]}`).
    ///
    /// The escaping and number emission are [`crate::json`]'s (NaN and
    /// infinity become `null`, as JSON requires); only the pretty layout
    /// is local.
    pub fn to_json(&self) -> String {
        use crate::json::{escape_into as esc, write_num as num};

        let mut out = String::new();
        out.push_str("{\n  \"title\": ");
        esc(&self.title, &mut out);
        out.push_str(",\n  \"x_label\": ");
        esc(&self.x_label, &mut out);
        out.push_str(",\n  \"y_label\": ");
        esc(&self.y_label, &mut out);
        out.push_str(",\n  \"series\": [");
        for (i, s) in self.series.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\n      \"label\": ");
            esc(&s.label, &mut out);
            out.push_str(",\n      \"points\": [");
            for (j, p) in s.points.iter().enumerate() {
                out.push_str(if j == 0 { "\n" } else { ",\n" });
                out.push_str("        { \"x\": ");
                num(p.x, &mut out);
                out.push_str(", \"mean\": ");
                num(p.mean, &mut out);
                out.push_str(", \"std\": ");
                num(p.std, &mut out);
                out.push_str(" }");
            }
            if !s.points.is_empty() {
                out.push_str("\n      ");
            }
            out.push_str("]\n    }");
        }
        if !self.series.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}");
        out
    }

    /// Render as CSV (`x,series1_mean,series1_std,...`).
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_label);
        for s in &self.series {
            let _ = write!(out, ",{} mean,{} std", s.label, s.label);
        }
        out.push('\n');
        for x in self.xs() {
            let _ = write!(out, "{x}");
            for s in &self.series {
                match s.at(x) {
                    Some(p) => {
                        let _ = write!(out, ",{},{}", p.mean, p.std);
                    }
                    None => out.push_str(",,"),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_count_formula() {
        // N = 1: a single division/sqrt -> formula gives 1.
        assert!((cholesky_flops(1) - 1.0).abs() < 1e-12);
        // Large N: dominated by N^3/3.
        let n = 30_720; // 32 tiles of 960
        let f = cholesky_flops(n);
        assert!(f > (n as f64).powi(3) / 3.0);
        assert!(f < (n as f64).powi(3) / 3.0 * 1.001);
    }

    #[test]
    fn gflops_conversion() {
        // 4x4 tiles of 960, 1 second -> flops(3840)/1e9 GFLOP/s.
        let g = gflops(4, 960, Time::from_secs(1));
        assert!((g - cholesky_flops(3840) / 1e9).abs() < 1e-9);
        assert_eq!(gflops(4, 960, Time::ZERO), 0.0);
    }

    #[test]
    fn mean_std_basics() {
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        assert_eq!(mean_std(&[5.0]), (5.0, 0.0));
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn series_push_and_scale() {
        let mut s = Series::new("dmda");
        s.push(4.0, 100.0);
        s.push_samples(8.0, &[190.0, 210.0]);
        assert_eq!(s.at(4.0).unwrap().mean, 100.0);
        let p = s.at(8.0).unwrap();
        assert!((p.mean - 200.0).abs() < 1e-12);
        assert!(p.std > 0.0);
        let scaled = s.scaled(0.5);
        assert_eq!(scaled.at(4.0).unwrap().mean, 50.0);
        assert!(s.at(12.0).is_none());
    }

    #[test]
    fn figure_table_and_csv() {
        let mut fig = Figure::new("Demo", "tiles", "GFLOP/s");
        let mut a = Series::new("dmda");
        a.push(4.0, 100.0);
        a.push(8.0, 200.0);
        let mut b = Series::new("bound");
        b.push(4.0, 150.0);
        fig.add(a);
        fig.add(b);
        assert_eq!(fig.xs(), vec![4.0, 8.0]);
        let table = fig.to_table();
        assert!(table.contains("# Demo"));
        assert!(table.contains("dmda"));
        assert!(table.contains('-'), "missing point rendered as dash");
        let csv = fig.to_csv();
        assert!(csv.starts_with("tiles,dmda mean,dmda std,bound mean,bound std"));
        assert!(csv.contains("4,100,0,150,0"));
    }

    #[test]
    fn figure_json() {
        let mut fig = Figure::new("Demo \"quoted\"", "tiles", "GFLOP/s");
        let mut a = Series::new("dmda");
        a.push(4.0, 100.0);
        a.push(8.0, 200.0);
        fig.add(a);
        let json = fig.to_json();
        assert!(json.contains("\"title\": \"Demo \\\"quoted\\\"\""));
        assert!(json.contains("\"label\": \"dmda\""));
        assert!(json.contains("{ \"x\": 4, \"mean\": 100, \"std\": 0 }"));
        // Balanced braces/brackets as a cheap well-formedness check.
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
        let empty = Figure::new("E", "x", "y").to_json();
        assert!(empty.contains("\"series\": []"));
    }
}
