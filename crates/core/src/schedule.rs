//! Explicit schedules and their validation.
//!
//! A [`Schedule`] fixes, for every task, the worker it runs on and its start
//! and end times. Schedules are produced by the simulator (as a by-product
//! of a run), by the CP-style solver, and by static list schedulers; the
//! [`Schedule::validate`] checker is the common referee that every produced
//! schedule must pass.

use crate::dag::TaskGraph;
use crate::platform::{Platform, WorkerId};
use crate::profiles::TimingProfile;
use crate::task::TaskId;
use crate::time::Time;

/// Placement and timing of one task.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ScheduleEntry {
    /// The task.
    pub task: TaskId,
    /// Worker executing it.
    pub worker: WorkerId,
    /// Start time.
    pub start: Time,
    /// Completion time.
    pub end: Time,
}

/// A complete schedule: one entry per task, indexable by task id.
#[derive(Clone, Debug, Default)]
pub struct Schedule {
    entries: Vec<ScheduleEntry>,
}

/// Why a schedule failed validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleError {
    /// The schedule does not contain exactly the graph's tasks.
    WrongTaskSet {
        /// Tasks expected.
        expected: usize,
        /// Entries found.
        found: usize,
    },
    /// The entry count matches but the sorted entries are not the graph's
    /// task ids `0..n` — some task is duplicated and another missing.
    MisnumberedEntry {
        /// The task id this slot of the sorted entries should hold.
        expected: TaskId,
        /// The task id actually found there.
        found: TaskId,
    },
    /// An entry references a worker outside the platform.
    BadWorker(TaskId, WorkerId),
    /// A task ends before it starts.
    NegativeDuration(TaskId),
    /// A task's duration does not match the profile.
    WrongDuration {
        /// Offending task.
        task: TaskId,
        /// Duration in the schedule.
        got: Time,
        /// Duration the profile prescribes.
        expected: Time,
    },
    /// A dependency is violated (`succ` starts before `pred` ends).
    DependencyViolated {
        /// The predecessor task.
        pred: TaskId,
        /// The successor task.
        succ: TaskId,
    },
    /// Two tasks overlap on the same worker.
    WorkerOverlap {
        /// The worker.
        worker: WorkerId,
        /// First task (earlier start).
        first: TaskId,
        /// Second task overlapping it.
        second: TaskId,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::WrongTaskSet { expected, found } => {
                write!(
                    f,
                    "schedule has {found} entries, graph has {expected} tasks"
                )
            }
            ScheduleError::MisnumberedEntry { expected, found } => {
                write!(
                    f,
                    "schedule slot for {expected} holds {found}: a task is duplicated or missing"
                )
            }
            ScheduleError::BadWorker(t, w) => write!(f, "{t} assigned to nonexistent worker {w}"),
            ScheduleError::NegativeDuration(t) => write!(f, "{t} ends before it starts"),
            ScheduleError::WrongDuration {
                task,
                got,
                expected,
            } => {
                write!(f, "{task} runs for {got}, profile says {expected}")
            }
            ScheduleError::DependencyViolated { pred, succ } => {
                write!(f, "{succ} starts before its predecessor {pred} ends")
            }
            ScheduleError::WorkerOverlap {
                worker,
                first,
                second,
            } => {
                write!(f, "worker {worker}: {second} overlaps {first}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// What [`Schedule::validate`] should check about durations.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DurationCheck {
    /// Durations must equal the profile's `T_rt` exactly (deterministic
    /// simulation, CP solutions).
    Exact,
    /// Durations may differ from the profile (jittered "actual" runs);
    /// only `end ≥ start` is required.
    Loose,
}

impl Schedule {
    /// Build a schedule from entries (any order); they are indexed by task.
    pub fn from_entries(mut entries: Vec<ScheduleEntry>) -> Schedule {
        entries.sort_by_key(|e| e.task);
        Schedule { entries }
    }

    /// Number of scheduled tasks.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff no tasks are scheduled.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries, ordered by task id.
    #[inline]
    pub fn entries(&self) -> &[ScheduleEntry] {
        &self.entries
    }

    /// The entry of a task, if scheduled. After validation against a graph,
    /// `entry(t)` is `Some` for every task `t` of that graph and
    /// `entries()[t.index()]` addresses it directly.
    pub fn entry(&self, task: TaskId) -> Option<&ScheduleEntry> {
        self.entries
            .binary_search_by_key(&task, |e| e.task)
            .ok()
            .map(|i| &self.entries[i])
    }

    /// Completion time of the last task (zero for an empty schedule).
    pub fn makespan(&self) -> Time {
        self.entries
            .iter()
            .map(|e| e.end)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Check the schedule against a graph, platform and profile.
    ///
    /// Verifies: task-set completeness, worker validity, duration
    /// consistency (per `check`), dependency feasibility, and per-worker
    /// mutual exclusion.
    pub fn validate(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
        profile: &TimingProfile,
        check: DurationCheck,
    ) -> Result<(), ScheduleError> {
        if self.entries.len() != graph.len() {
            return Err(ScheduleError::WrongTaskSet {
                expected: graph.len(),
                found: self.entries.len(),
            });
        }
        for (idx, e) in self.entries.iter().enumerate() {
            // Sorted + complete => entry i must be task i.
            if e.task.index() != idx {
                return Err(ScheduleError::MisnumberedEntry {
                    expected: TaskId(idx as u32),
                    found: e.task,
                });
            }
            if e.worker >= platform.n_workers() {
                return Err(ScheduleError::BadWorker(e.task, e.worker));
            }
            if e.end < e.start {
                return Err(ScheduleError::NegativeDuration(e.task));
            }
            if check == DurationCheck::Exact {
                let expected =
                    profile.time(graph.task(e.task).kernel(), platform.class_of(e.worker));
                let got = e.end - e.start;
                if got != expected {
                    return Err(ScheduleError::WrongDuration {
                        task: e.task,
                        got,
                        expected,
                    });
                }
            }
        }
        for (pred, succ) in graph.edges() {
            let (ep, es) = (&self.entries[pred.index()], &self.entries[succ.index()]);
            if es.start < ep.end {
                return Err(ScheduleError::DependencyViolated { pred, succ });
            }
        }
        // Mutual exclusion per worker.
        let mut per_worker: Vec<Vec<&ScheduleEntry>> = vec![Vec::new(); platform.n_workers()];
        for e in &self.entries {
            per_worker[e.worker].push(e);
        }
        for (worker, mut evs) in per_worker.into_iter().enumerate() {
            evs.sort_by_key(|e| (e.start, e.end));
            for pair in evs.windows(2) {
                if pair[1].start < pair[0].end {
                    return Err(ScheduleError::WorkerOverlap {
                        worker,
                        first: pair[0].task,
                        second: pair[1].task,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskCoords;

    fn tiny() -> (TaskGraph, Platform, TimingProfile) {
        (
            TaskGraph::cholesky(2),
            Platform::homogeneous(2),
            TimingProfile::mirage_homogeneous(),
        )
    }

    /// A hand-built valid sequential schedule for n = 2 on one CPU.
    fn sequential_n2(graph: &TaskGraph, prof: &TimingProfile) -> Schedule {
        // Submission order happens to be a topological order.
        let mut t = Time::ZERO;
        let mut entries = Vec::new();
        for task in graph.tasks() {
            let d = prof.time(task.kernel(), 0);
            entries.push(ScheduleEntry {
                task: task.id,
                worker: 0,
                start: t,
                end: t + d,
            });
            t += d;
        }
        Schedule::from_entries(entries)
    }

    #[test]
    fn valid_sequential_schedule_passes() {
        let (g, p, prof) = tiny();
        let s = sequential_n2(&g, &prof);
        s.validate(&g, &p, &prof, DurationCheck::Exact).unwrap();
        // POTRF(59) + TRSM(104) + SYRK(98) + POTRF(59) = 320 ms.
        assert_eq!(s.makespan(), Time::from_millis(320));
    }

    #[test]
    fn detects_missing_task() {
        let (g, p, prof) = tiny();
        let mut s = sequential_n2(&g, &prof);
        s.entries.pop();
        assert!(matches!(
            s.validate(&g, &p, &prof, DurationCheck::Exact),
            Err(ScheduleError::WrongTaskSet { .. })
        ));
    }

    #[test]
    fn detects_duplicate_task() {
        let (g, p, prof) = tiny();
        let mut s = sequential_n2(&g, &prof);
        let dup = s.entries[0];
        s.entries[1] = dup; // two entries for task 0, none for task 1
        assert_eq!(
            s.validate(&g, &p, &prof, DurationCheck::Exact),
            Err(ScheduleError::MisnumberedEntry {
                expected: TaskId(1),
                found: TaskId(0),
            })
        );
    }

    #[test]
    fn detects_bad_worker() {
        let (g, p, prof) = tiny();
        let mut s = sequential_n2(&g, &prof);
        s.entries[0].worker = 99;
        assert!(matches!(
            s.validate(&g, &p, &prof, DurationCheck::Exact),
            Err(ScheduleError::BadWorker(_, 99))
        ));
    }

    #[test]
    fn detects_wrong_duration_and_loose_mode_allows_it() {
        let (g, p, prof) = tiny();
        let mut s = sequential_n2(&g, &prof);
        // Stretch the last task: no dependency or overlap issue arises.
        let last = s.entries.last_mut().unwrap();
        last.end += Time::from_millis(1);
        assert!(matches!(
            s.validate(&g, &p, &prof, DurationCheck::Exact),
            Err(ScheduleError::WrongDuration { .. })
        ));
        s.validate(&g, &p, &prof, DurationCheck::Loose).unwrap();
    }

    #[test]
    fn detects_dependency_violation() {
        let (g, p, prof) = tiny();
        let mut s = sequential_n2(&g, &prof);
        // Move SYRK(1,0) to a second worker, starting before TRSM ends.
        let syrk = g.find(TaskCoords::Syrk { k: 0, j: 1 }).unwrap();
        let d = prof.time(crate::kernel::Kernel::Syrk, 0);
        let e = &mut s.entries[syrk.index()];
        e.worker = 1;
        e.start = Time::from_millis(10);
        e.end = Time::from_millis(10) + d;
        assert!(matches!(
            s.validate(&g, &p, &prof, DurationCheck::Exact),
            Err(ScheduleError::DependencyViolated { .. })
        ));
    }

    #[test]
    fn detects_worker_overlap() {
        let (g, p, prof) = tiny();
        let mut s = sequential_n2(&g, &prof);
        // Make TRSM start before POTRF(0) has finished on the same worker —
        // but keep its dependency satisfied by shifting POTRF(0)'s end...
        // simpler: overlap two independent-ish tasks by giving TRSM an early
        // start; that also violates the dependency, so instead overlap the
        // final POTRF with SYRK on worker 0 while keeping dep order intact.
        let potrf1 = g.find(TaskCoords::Potrf { k: 1 }).unwrap();
        let syrk = g.find(TaskCoords::Syrk { k: 0, j: 1 }).unwrap();
        let syrk_end = s.entries[syrk.index()].end;
        let d = prof.time(crate::kernel::Kernel::Potrf, 0);
        let e = &mut s.entries[potrf1.index()];
        e.start = syrk_end - Time::from_millis(1); // overlaps SYRK by 1 ms
        e.end = e.start + d;
        let err = s.validate(&g, &p, &prof, DurationCheck::Exact);
        assert!(
            matches!(
                err,
                Err(ScheduleError::WorkerOverlap { .. })
                    | Err(ScheduleError::DependencyViolated { .. })
            ),
            "{err:?}"
        );
    }

    #[test]
    fn entry_lookup() {
        let (g, _p, prof) = tiny();
        let s = sequential_n2(&g, &prof);
        for t in g.tasks() {
            assert_eq!(s.entry(t.id).unwrap().task, t.id);
        }
        assert!(s.entry(TaskId(1000)).is_none());
    }

    #[test]
    fn empty_schedule() {
        let s = Schedule::default();
        assert!(s.is_empty());
        assert_eq!(s.makespan(), Time::ZERO);
    }
}
