//! Seeded, deterministic fault injection and the recovery vocabulary.
//!
//! The paper's schedulers (and StarPU itself) assume every worker survives
//! and every kernel succeeds. This module is the substrate that lets the
//! reproduction drop that assumption *without* giving up determinism: a
//! [`FaultPlan`] is a plain value — worker deaths indexed by engine-wide
//! task-start counts, per-task transient failures, straggler slowdowns —
//! that both the discrete-event simulator and the threaded runtime consume
//! through one [`FaultState`] driver, so the same plan reproduces the same
//! *outcome classification* in either engine (the sim-vs-actual methodology
//! of the paper, applied to failures).
//!
//! Key design choice: worker deaths trigger on **progress**, not wall
//! time. `WorkerDeath { after_starts: k }` kills the worker once `k` task
//! attempts have started anywhere on the platform. Virtual and wall clocks
//! never agree between the engines, but the global start count does — any
//! threshold below the task count is guaranteed to fire in both.
//!
//! Recovery semantics live in the engines (re-queuing a dead worker's
//! tasks, capped-backoff retries, the watchdog); the bookkeeping — attempt
//! counts, death thresholds, the [`FaultEvent`] log rule 17 of the linter
//! audits — lives here. See DESIGN.md §12.

use crate::platform::WorkerId;
use crate::task::TaskId;
use crate::time::Time;
use std::fmt;

// ---------------------------------------------------------------------------
// Fault vocabulary
// ---------------------------------------------------------------------------

/// Why an individual task attempt failed.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// Injected transient kernel failure (spurious; succeeds when retried).
    Transient,
    /// Corrupted-tile numerical fault: POTRF reports a non-SPD pivot.
    Numerical,
    /// The watchdog converted a (modeled) hung attempt into a failure.
    Timeout,
    /// The worker that owned the attempt died before it could run.
    WorkerLost,
}

impl FaultKind {
    /// Stable lower-case label, used in events, traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Transient => "transient",
            FaultKind::Numerical => "numerical",
            FaultKind::Timeout => "timeout",
            FaultKind::WorkerLost => "worker-lost",
        }
    }

    /// Inverse of [`FaultKind::label`], for wire-format readers.
    pub fn from_label(label: &str) -> Option<FaultKind> {
        match label {
            "transient" => Some(FaultKind::Transient),
            "numerical" => Some(FaultKind::Numerical),
            "timeout" => Some(FaultKind::Timeout),
            "worker-lost" => Some(FaultKind::WorkerLost),
            _ => None,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One injected fault.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum Fault {
    /// `worker` dies permanently once `after_starts` task attempts have
    /// started engine-wide. `after_starts: 0` kills it before it runs
    /// anything (the "GPU lost from the start" scenario); any threshold
    /// below the task count is guaranteed to fire in both engines.
    WorkerDeath {
        /// The worker that dies.
        worker: WorkerId,
        /// Global start count at which the death triggers.
        after_starts: u32,
    },
    /// The first `failures` attempts of `task` fail with `kind`; the
    /// injected failure *replaces* kernel execution, so retrying is always
    /// numerically sound.
    Transient {
        /// The afflicted task.
        task: TaskId,
        /// How many leading attempts fail.
        failures: u32,
        /// The failure kind reported ([`FaultKind::Transient`] or
        /// [`FaultKind::Numerical`]).
        kind: FaultKind,
    },
    /// `worker` runs `factor`× slower than calibrated (a straggler). With
    /// a watchdog armed, slow-enough attempts become timeout failures.
    Straggler {
        /// The slow worker.
        worker: WorkerId,
        /// Slowdown multiplier (≥ 1.0 to be meaningful).
        factor: f64,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::WorkerDeath {
                worker,
                after_starts,
            } => write!(f, "death(w{worker}@{after_starts})"),
            Fault::Transient {
                task,
                failures,
                kind,
            } => write!(f, "{kind}(#{}\u{d7}{failures})", task.index()),
            Fault::Straggler { worker, factor } => {
                write!(f, "straggler(w{worker}\u{d7}{factor})")
            }
        }
    }
}

impl Fault {
    /// The shared wire shape of one fault, used by both the model-checker
    /// witness format and the job API:
    /// `{"kind": "worker_death", "worker": W, "after_starts": K}`,
    /// `{"kind": "transient", "task": T, "failures": F, "fault": "<label>"}`
    /// or `{"kind": "straggler", "worker": W, "factor": X}`.
    pub fn to_json_value(&self) -> crate::json::JsonValue {
        use crate::json::JsonValue as J;
        match *self {
            Fault::WorkerDeath {
                worker,
                after_starts,
            } => J::Obj(vec![
                ("kind".into(), J::str("worker_death")),
                ("worker".into(), J::uint(worker as u64)),
                ("after_starts".into(), J::uint(after_starts as u64)),
            ]),
            Fault::Transient {
                task,
                failures,
                kind,
            } => J::Obj(vec![
                ("kind".into(), J::str("transient")),
                ("task".into(), J::uint(task.index() as u64)),
                ("failures".into(), J::uint(failures as u64)),
                ("fault".into(), J::str(kind.label())),
            ]),
            Fault::Straggler { worker, factor } => J::Obj(vec![
                ("kind".into(), J::str("straggler")),
                ("worker".into(), J::uint(worker as u64)),
                ("factor".into(), J::num(factor)),
            ]),
        }
    }

    /// Parse the wire shape emitted by [`Fault::to_json_value`].
    pub fn from_json_value(v: &crate::json::JsonValue) -> Result<Fault, String> {
        match v.field("kind")?.as_str()? {
            "worker_death" => Ok(Fault::WorkerDeath {
                worker: v.field("worker")?.as_u64()? as WorkerId,
                after_starts: v.field("after_starts")?.as_u64()? as u32,
            }),
            "transient" => {
                let label = v.field("fault")?.as_str()?;
                Ok(Fault::Transient {
                    task: TaskId(v.field("task")?.as_u64()? as u32),
                    failures: v.field("failures")?.as_u64()? as u32,
                    kind: FaultKind::from_label(label)
                        .ok_or_else(|| format!("unknown fault kind label {label:?}"))?,
                })
            }
            "straggler" => Ok(Fault::Straggler {
                worker: v.field("worker")?.as_u64()? as WorkerId,
                factor: v.field("factor")?.as_f64()?,
            }),
            other => Err(format!("unknown fault kind {other:?}")),
        }
    }
}

/// A deterministic, seedable fault-injection plan: just a list of
/// [`Fault`]s. Plans are plain values — clone one and replay it on the
/// other engine to cross-check recovery.
///
/// ```
/// use hetchol_core::fault::FaultPlan;
/// use hetchol_core::task::TaskId;
/// let plan = FaultPlan::new()
///     .kill_worker(2, 6)           // worker 2 dies after the 6th start
///     .transient(TaskId(3), 1)     // task 3's first attempt fails
///     .straggler(1, 3.0);          // worker 1 runs 3× slower
/// assert_eq!(plan.faults().len(), 3);
/// assert!(!plan.kills_all_workers(3));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Alias for [`FaultPlan::new`], reading better at call sites that
    /// explicitly opt out of injection.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// `true` when no faults are planned.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The planned faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Add a permanent worker death at global start count `after_starts`.
    pub fn kill_worker(mut self, worker: WorkerId, after_starts: u32) -> FaultPlan {
        self.faults.push(Fault::WorkerDeath {
            worker,
            after_starts,
        });
        self
    }

    /// Add a transient kernel failure: the first `failures` attempts of
    /// `task` fail spuriously.
    pub fn transient(mut self, task: TaskId, failures: u32) -> FaultPlan {
        self.faults.push(Fault::Transient {
            task,
            failures,
            kind: FaultKind::Transient,
        });
        self
    }

    /// Add a corrupted-tile numerical fault: `task`'s first attempt
    /// reports a numerical failure (for POTRF, "matrix not SPD"), as a
    /// bit-flipped input tile would. The corruption is modeled as
    /// detected-and-discarded, so the retry runs on clean data.
    pub fn corrupt_tile(mut self, task: TaskId) -> FaultPlan {
        self.faults.push(Fault::Transient {
            task,
            failures: 1,
            kind: FaultKind::Numerical,
        });
        self
    }

    /// Add a straggler slowdown of `factor` on `worker`.
    pub fn straggler(mut self, worker: WorkerId, factor: f64) -> FaultPlan {
        self.faults.push(Fault::Straggler { worker, factor });
        self
    }

    /// `true` when the plan kills every one of `n_workers` workers — a
    /// configuration the engines reject up front ([`ConfigError`]), since
    /// no recovery is possible.
    pub fn kills_all_workers(&self, n_workers: usize) -> bool {
        let mut dead = vec![false; n_workers];
        for f in &self.faults {
            if let Fault::WorkerDeath { worker, .. } = *f {
                if let Some(d) = dead.get_mut(worker) {
                    *d = true;
                }
            }
        }
        !dead.is_empty() && dead.iter().all(|&d| d)
    }

    /// A deterministic pseudo-random plan for chaos testing: derived from
    /// `seed` alone (splitmix64 stream; the core crate deliberately has no
    /// RNG dependency), scaled to a run of `n_tasks` tasks on `n_workers`
    /// workers. Never kills all workers; death thresholds stay below
    /// `n_tasks` so they are guaranteed to trigger in both engines.
    pub fn seeded(seed: u64, n_tasks: usize, n_workers: usize) -> FaultPlan {
        let mut state = seed ^ 0x5eed_fa17_0c8a_05e5;
        let mut next = move || splitmix64(&mut state);
        let mut plan = FaultPlan::new();
        if n_tasks == 0 || n_workers == 0 {
            return plan;
        }
        if n_workers > 1 {
            let w = (next() % n_workers as u64) as WorkerId;
            let at = (next() % n_tasks as u64) as u32;
            plan = plan.kill_worker(w, at);
        }
        for _ in 0..=(next() % 2) {
            let t = TaskId((next() % n_tasks as u64) as u32);
            plan = plan.transient(t, 1 + (next() % 2) as u32);
        }
        if next() % 2 == 0 {
            plan = plan.corrupt_tile(TaskId((next() % n_tasks as u64) as u32));
        }
        if next() % 2 == 0 {
            let w = (next() % n_workers as u64) as WorkerId;
            plan = plan.straggler(w, 2.0 + (next() % 3) as f64);
        }
        plan
    }

    /// Enumerate the model checker's fault-decision space for a run of
    /// `n_tasks` tasks on `n_workers` workers: the empty plan, every
    /// single permanent worker death, and every single one-shot transient
    /// task failure.
    ///
    /// This is the driver-side injection API: because both engines key
    /// worker deaths to *progress* (the engine-wide task-start count) and
    /// transients to task identity — never to clocks — "the driver fires
    /// a fault at this exploration step" is observationally equivalent to
    /// "the run was configured with the plan naming that progress point".
    /// A death fired while `k` tasks have started is exactly
    /// `kill_worker(w, k)`; a transient fired at a task's attempt is
    /// exactly `transient(t, 1)`. The fault choice tree therefore
    /// collapses to this finite plan list, and exhausting every plan ×
    /// every interleaving covers every fault point within the budget of
    /// one fault per run. Plans that would kill the whole platform are
    /// excluded (the engines reject them up front).
    pub fn choice_space(n_tasks: usize, n_workers: usize) -> Vec<FaultPlan> {
        let mut space = vec![FaultPlan::none()];
        if n_workers > 1 {
            for w in 0..n_workers {
                for k in 0..n_tasks as u32 {
                    space.push(FaultPlan::new().kill_worker(w, k));
                }
            }
        }
        for t in 0..n_tasks as u32 {
            space.push(FaultPlan::new().transient(TaskId(t), 1));
        }
        space
    }

    /// The plan as a JSON array of [`Fault::to_json_value`] shapes.
    pub fn to_json_value(&self) -> crate::json::JsonValue {
        crate::json::JsonValue::Arr(self.faults.iter().map(Fault::to_json_value).collect())
    }

    /// Parse a plan serialized by [`FaultPlan::to_json_value`].
    pub fn from_json_value(v: &crate::json::JsonValue) -> Result<FaultPlan, String> {
        let faults = v
            .as_arr()?
            .iter()
            .map(Fault::from_json_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FaultPlan { faults })
    }
}

/// One step of the splitmix64 stream — small, well-mixed, and dependency
/// free (the compat `rand` lives outside the core crate).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// Disk fault injection
// ---------------------------------------------------------------------------

/// One injected I/O fault against an append-only log.
///
/// Counters are 1-based and count *operations on the faulted backend*:
/// `append: 3` afflicts the third append since the backend was wrapped.
/// The vocabulary mirrors [`Fault`]: a short write is the disk's
/// transient, a flush failure its timeout, disk-full its permanent death.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum IoFault {
    /// The `append`-th append persists only `keep` bytes of its buffer,
    /// then errors — the torn-record generator.
    ShortWrite {
        /// Which append (1-based) is cut short.
        append: u64,
        /// How many leading bytes still reach the disk.
        keep: usize,
    },
    /// The `flush`-th flush/fsync fails (the data may or may not be
    /// durable; a correct log must treat it as not).
    FlushFail {
        /// Which flush (1-based) fails.
        flush: u64,
    },
    /// Every append once the log has reached `at_bytes` bytes fails with
    /// "no space left" and writes nothing.
    DiskFull {
        /// Log size in bytes at which the disk is full.
        at_bytes: u64,
    },
}

impl fmt::Display for IoFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            IoFault::ShortWrite { append, keep } => {
                write!(f, "short-write(append {append}, keep {keep}B)")
            }
            IoFault::FlushFail { flush } => write!(f, "flush-fail(flush {flush})"),
            IoFault::DiskFull { at_bytes } => write!(f, "disk-full(at {at_bytes}B)"),
        }
    }
}

impl IoFault {
    /// The wire shape of one I/O fault:
    /// `{"kind":"short_write","append":N,"keep":K}`,
    /// `{"kind":"flush_fail","flush":N}` or
    /// `{"kind":"disk_full","at_bytes":N}`.
    pub fn to_json_value(&self) -> crate::json::JsonValue {
        use crate::json::JsonValue as J;
        match *self {
            IoFault::ShortWrite { append, keep } => J::Obj(vec![
                ("kind".into(), J::str("short_write")),
                ("append".into(), J::uint(append)),
                ("keep".into(), J::uint(keep as u64)),
            ]),
            IoFault::FlushFail { flush } => J::Obj(vec![
                ("kind".into(), J::str("flush_fail")),
                ("flush".into(), J::uint(flush)),
            ]),
            IoFault::DiskFull { at_bytes } => J::Obj(vec![
                ("kind".into(), J::str("disk_full")),
                ("at_bytes".into(), J::uint(at_bytes)),
            ]),
        }
    }

    /// Parse the wire shape emitted by [`IoFault::to_json_value`].
    pub fn from_json_value(v: &crate::json::JsonValue) -> Result<IoFault, String> {
        match v.field("kind")?.as_str()? {
            "short_write" => Ok(IoFault::ShortWrite {
                append: v.field("append")?.as_u64()?,
                keep: v.field("keep")?.as_u64()? as usize,
            }),
            "flush_fail" => Ok(IoFault::FlushFail {
                flush: v.field("flush")?.as_u64()?,
            }),
            "disk_full" => Ok(IoFault::DiskFull {
                at_bytes: v.field("at_bytes")?.as_u64()?,
            }),
            other => Err(format!("unknown io fault kind {other:?}")),
        }
    }
}

/// A deterministic disk-fault plan for the serve layer's job log: the
/// I/O twin of [`FaultPlan`]. Plans are plain values consumed through a
/// fault-injecting log backend; an empty plan injects nothing.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IoFaultPlan {
    faults: Vec<IoFault>,
}

impl IoFaultPlan {
    /// The empty plan.
    pub fn new() -> IoFaultPlan {
        IoFaultPlan::default()
    }

    /// Alias for [`IoFaultPlan::new`] at call sites that opt out.
    pub fn none() -> IoFaultPlan {
        IoFaultPlan::default()
    }

    /// `true` when no faults are planned.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The planned faults, in insertion order.
    pub fn faults(&self) -> &[IoFault] {
        &self.faults
    }

    /// Add a short write: the `append`-th append keeps only `keep` bytes.
    pub fn short_write(mut self, append: u64, keep: usize) -> IoFaultPlan {
        self.faults.push(IoFault::ShortWrite { append, keep });
        self
    }

    /// Add a flush failure on the `flush`-th flush.
    pub fn flush_fail(mut self, flush: u64) -> IoFaultPlan {
        self.faults.push(IoFault::FlushFail { flush });
        self
    }

    /// Declare the disk full once the log reaches `at_bytes` bytes.
    pub fn disk_full(mut self, at_bytes: u64) -> IoFaultPlan {
        self.faults.push(IoFault::DiskFull { at_bytes });
        self
    }

    /// A deterministic pseudo-random plan derived from `seed` alone
    /// (same splitmix64 stream as [`FaultPlan::seeded`]), scaled so the
    /// faults land within a log of roughly `expected_appends` records:
    /// exactly one fault per plan, so a chaos matrix over seeds covers
    /// each kind and each kind's degradation is observable in isolation.
    pub fn seeded(seed: u64, expected_appends: u64) -> IoFaultPlan {
        let mut state = seed ^ 0xd15c_fa17_0c8a_05e5;
        let mut next = move || splitmix64(&mut state);
        let appends = expected_appends.max(1);
        match next() % 3 {
            0 => IoFaultPlan::new().short_write(1 + next() % appends, (next() % 16) as usize),
            1 => IoFaultPlan::new().flush_fail(1 + next() % appends),
            // Records are a few hundred bytes; a kilobyte-scale threshold
            // fills the disk a handful of appends in.
            _ => IoFaultPlan::new().disk_full(256 + next() % 4096),
        }
    }

    /// The plan as a JSON array of [`IoFault::to_json_value`] shapes.
    pub fn to_json_value(&self) -> crate::json::JsonValue {
        crate::json::JsonValue::Arr(self.faults.iter().map(IoFault::to_json_value).collect())
    }

    /// Parse a plan serialized by [`IoFaultPlan::to_json_value`].
    pub fn from_json_value(v: &crate::json::JsonValue) -> Result<IoFaultPlan, String> {
        let faults = v
            .as_arr()?
            .iter()
            .map(IoFault::from_json_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(IoFaultPlan { faults })
    }
}

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

/// How the engines respond to failed attempts.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per task before it is aborted (first try included).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent failure.
    pub backoff_base: Time,
    /// Upper bound the exponential backoff saturates at.
    pub backoff_cap: Time,
    /// When set, any attempt whose *modeled* duration (calibrated estimate
    /// × straggler factor) exceeds the limit is failed as a
    /// [`FaultKind::Timeout`] instead of being allowed to hang. Both
    /// engines decide on the model, so verdicts agree; see DESIGN.md §12
    /// for why the threaded runtime cannot preempt a genuinely hung
    /// safe-Rust kernel.
    pub watchdog: Option<Time>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            backoff_base: Time::from_micros(100),
            backoff_cap: Time::from_millis(10),
            watchdog: None,
        }
    }
}

impl RetryPolicy {
    /// Backoff delay after the `failures`-th failure of a task (1-based):
    /// `base × 2^(failures−1)`, saturating, capped at `backoff_cap`.
    pub fn backoff(&self, failures: u32) -> Time {
        let mut b = self.backoff_base;
        let mut i = 1;
        while i < failures && b < self.backoff_cap {
            b = b.saturating_add(b);
            i += 1;
        }
        b.min(self.backoff_cap)
    }
}

// ---------------------------------------------------------------------------
// Outcome vocabulary
// ---------------------------------------------------------------------------

/// Why a resilient run failed outright.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureCause {
    /// A task exhausted its retry budget.
    RetriesExhausted {
        /// The aborted task.
        task: TaskId,
        /// Attempts consumed (== `RetryPolicy::max_attempts`).
        attempts: u32,
        /// Kind of the final failure.
        kind: FaultKind,
    },
    /// Every worker died; nothing can make progress.
    AllWorkersLost,
    /// A *real* (non-injected) kernel error. These are not retried — a
    /// genuine numerical failure (e.g. an indefinite input matrix) will
    /// fail identically on any worker.
    Kernel {
        /// The failing task.
        task: TaskId,
        /// Debug rendering of the workload's error.
        detail: String,
    },
    /// The engine stopped with tasks incomplete and no recorded cause —
    /// the resilient-mode replacement for the legacy deadlock assertion.
    Stalled {
        /// Number of unfinished tasks.
        remaining: usize,
    },
}

impl fmt::Display for FailureCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureCause::RetriesExhausted {
                task,
                attempts,
                kind,
            } => write!(
                f,
                "task #{} aborted after {attempts} attempts (last failure: {kind})",
                task.index()
            ),
            FailureCause::AllWorkersLost => write!(f, "all workers lost"),
            FailureCause::Kernel { task, detail } => {
                write!(f, "kernel error on task #{}: {detail}", task.index())
            }
            FailureCause::Stalled { remaining } => {
                write!(f, "stalled with {remaining} tasks incomplete")
            }
        }
    }
}

/// The structured verdict of a resilient run — the replacement for
/// panic-on-error paths in both engines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every task ran once, first try, on its assigned worker.
    Completed,
    /// Every task completed, but only after recovery: workers were lost
    /// and/or attempts were retried. The result is still correct.
    Degraded {
        /// Workers that died during the run, ascending.
        lost_workers: Vec<WorkerId>,
        /// Total retried attempts.
        retries: u64,
    },
    /// The run could not complete.
    Failed {
        /// Why.
        cause: FailureCause,
    },
}

impl RunOutcome {
    /// `true` for [`Completed`](RunOutcome::Completed) and
    /// [`Degraded`](RunOutcome::Degraded): every task finished and the
    /// numerical result is trustworthy.
    pub fn is_success(&self) -> bool {
        !matches!(self, RunOutcome::Failed { .. })
    }

    /// Stable lower-case discriminant label (`completed` / `degraded` /
    /// `failed`), for reports and cross-engine classification checks.
    pub fn label(&self) -> &'static str {
        match self {
            RunOutcome::Completed => "completed",
            RunOutcome::Degraded { .. } => "degraded",
            RunOutcome::Failed { .. } => "failed",
        }
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunOutcome::Completed => write!(f, "completed"),
            RunOutcome::Degraded {
                lost_workers,
                retries,
            } => write!(
                f,
                "degraded (lost workers {lost_workers:?}, {retries} retries)"
            ),
            RunOutcome::Failed { cause } => write!(f, "failed: {cause}"),
        }
    }
}

/// Rejected-up-front run configurations (the typed replacement for
/// hanging or panicking on impossible setups).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// The platform has no workers.
    ZeroWorkers,
    /// The fault plan kills every worker; no recovery is possible.
    PlanKillsAllWorkers {
        /// Worker count of the rejected platform.
        n_workers: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroWorkers => write!(f, "platform has zero workers"),
            ConfigError::PlanKillsAllWorkers { n_workers } => {
                write!(f, "fault plan kills all {n_workers} workers")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

// ---------------------------------------------------------------------------
// Fault events (the recovery audit log)
// ---------------------------------------------------------------------------

/// What happened, for the trace and linter rule 17.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultEventKind {
    /// `worker` died (timestamp is the actual death instant: after its
    /// in-flight work completed, so no execution may start at or after it).
    WorkerDied {
        /// The dead worker.
        worker: WorkerId,
    },
    /// An attempt of `task` on `worker` failed.
    AttemptFailed {
        /// The task.
        task: TaskId,
        /// Worker that owned the failed attempt.
        worker: WorkerId,
        /// 1-based attempt number.
        attempt: u32,
        /// Failure kind.
        fault: FaultKind,
    },
    /// `task` was re-dispatched for attempt `attempt` after `backoff`.
    Retried {
        /// The task.
        task: TaskId,
        /// 1-based number of the upcoming attempt.
        attempt: u32,
        /// Backoff delay applied before it may start.
        backoff: Time,
    },
    /// `task` exhausted its retry budget and the run aborted.
    Aborted {
        /// The task.
        task: TaskId,
        /// Attempts consumed.
        attempts: u32,
    },
}

/// A timestamped [`FaultEventKind`], recorded into
/// [`crate::trace::Trace::fault_events`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// When (virtual time in the simulator, wall time in the runtime).
    pub at: Time,
    /// What.
    pub kind: FaultEventKind,
}

// ---------------------------------------------------------------------------
// FaultState — the shared injection/recovery driver
// ---------------------------------------------------------------------------

/// The mutable driver both engines thread through a resilient run: it
/// answers "does this fault fire now?" and keeps the books (attempt
/// counts, deaths, retries, the event log). All state is indexed by task
/// id, worker id and the *global start count*, never by clock — which is
/// what makes one plan reproduce across the two engines.
#[derive(Clone, Debug)]
pub struct FaultState {
    policy: RetryPolicy,
    /// Earliest death threshold per worker (None: never dies).
    death_at: Vec<Option<u32>>,
    /// Straggler slowdown per worker (1.0: nominal).
    slowdown: Vec<f64>,
    /// Injected transient failure per task: (leading failures, kind).
    transient: Vec<Option<(u32, FaultKind)>>,
    attempts: Vec<u32>,
    dead: Vec<bool>,
    global_starts: u32,
    retries: u64,
    events: Vec<FaultEvent>,
}

impl FaultState {
    /// Compile `plan` for a run of `n_tasks` tasks on `n_workers` workers.
    /// Faults referencing out-of-range tasks/workers are ignored.
    pub fn new(plan: &FaultPlan, policy: RetryPolicy, n_tasks: usize, n_workers: usize) -> Self {
        let mut death_at = vec![None; n_workers];
        let mut slowdown = vec![1.0f64; n_workers];
        let mut transient: Vec<Option<(u32, FaultKind)>> = vec![None; n_tasks];
        for f in plan.faults() {
            match *f {
                Fault::WorkerDeath {
                    worker,
                    after_starts,
                } => {
                    if let Some(slot) = death_at.get_mut(worker) {
                        *slot = Some(slot.map_or(after_starts, |t: u32| t.min(after_starts)));
                    }
                }
                Fault::Straggler { worker, factor } => {
                    if let Some(s) = slowdown.get_mut(worker) {
                        *s *= factor.max(0.0);
                    }
                }
                Fault::Transient {
                    task,
                    failures,
                    kind,
                } => {
                    if let Some(slot) = transient.get_mut(task.index()) {
                        let merged = match *slot {
                            Some((prev, k)) if prev >= failures => (prev, k),
                            _ => (failures, kind),
                        };
                        *slot = Some(merged);
                    }
                }
            }
        }
        FaultState {
            policy,
            death_at,
            slowdown,
            transient,
            attempts: vec![0; n_tasks],
            dead: vec![false; n_workers],
            global_starts: 0,
            retries: 0,
            events: Vec::new(),
        }
    }

    /// The retry policy in force.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Whether `worker` has died.
    pub fn is_dead(&self, worker: WorkerId) -> bool {
        self.dead.get(worker).copied().unwrap_or(false)
    }

    /// The death mask, indexed by worker id (for dispatch).
    pub fn dead(&self) -> &[bool] {
        &self.dead
    }

    /// Whether every worker has died.
    pub fn all_dead(&self) -> bool {
        self.dead.iter().all(|&d| d)
    }

    /// Workers that have died, ascending.
    pub fn lost_workers(&self) -> Vec<WorkerId> {
        (0..self.dead.len()).filter(|&w| self.dead[w]).collect()
    }

    /// Total retried attempts so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Attempts consumed by `task` so far.
    pub fn attempts_of(&self, task: TaskId) -> u32 {
        self.attempts.get(task.index()).copied().unwrap_or(0)
    }

    /// Whether `worker`'s death trigger has passed but it has not yet been
    /// marked dead (it must be reaped as soon as it is not busy).
    pub fn death_due(&self, worker: WorkerId) -> bool {
        !self.is_dead(worker)
            && self
                .death_at
                .get(worker)
                .copied()
                .flatten()
                .is_some_and(|t| self.global_starts >= t)
    }

    /// All workers whose death is due (see [`FaultState::death_due`]).
    pub fn doomed_workers(&self) -> Vec<WorkerId> {
        (0..self.dead.len())
            .filter(|&w| self.death_due(w))
            .collect()
    }

    /// Count one engine-wide task start. Call exactly once per attempt
    /// that actually occupies a worker.
    pub fn on_start(&mut self) {
        self.global_starts += 1;
    }

    /// Global start count so far.
    pub fn global_starts(&self) -> u32 {
        self.global_starts
    }

    /// Mark `worker` dead at `now` and log the death. The caller is
    /// responsible for re-dispatching the worker's queue.
    pub fn mark_dead(&mut self, worker: WorkerId, now: Time) {
        if let Some(d) = self.dead.get_mut(worker) {
            if !*d {
                *d = true;
                self.events.push(FaultEvent {
                    at: now,
                    kind: FaultEventKind::WorkerDied { worker },
                });
            }
        }
    }

    /// Begin an attempt of `task`: bumps its attempt count and returns
    /// `(attempt_number, injected_failure)`. When a failure is injected
    /// the engine must *skip* the kernel (injection replaces execution, so
    /// state is untouched and the retry is numerically sound).
    pub fn begin_attempt(&mut self, task: TaskId) -> (u32, Option<FaultKind>) {
        let idx = task.index();
        if idx >= self.attempts.len() {
            return (1, None);
        }
        self.attempts[idx] += 1;
        let attempt = self.attempts[idx];
        let injected = self.transient[idx].and_then(|(n, kind)| (attempt <= n).then_some(kind));
        (attempt, injected)
    }

    /// Straggler slowdown factor of `worker` (1.0 when nominal).
    pub fn slowdown(&self, worker: WorkerId) -> f64 {
        self.slowdown.get(worker).copied().unwrap_or(1.0)
    }

    /// Record a failed attempt of `task` on `worker` at `now`. Returns
    /// `Some(backoff)` when the task should be retried after that delay,
    /// or `None` when its retry budget is exhausted (the engine must abort
    /// with [`FailureCause::RetriesExhausted`]).
    pub fn record_failure(
        &mut self,
        task: TaskId,
        worker: WorkerId,
        kind: FaultKind,
        now: Time,
    ) -> Option<Time> {
        let attempt = self.attempts_of(task).max(1);
        self.events.push(FaultEvent {
            at: now,
            kind: FaultEventKind::AttemptFailed {
                task,
                worker,
                attempt,
                fault: kind,
            },
        });
        if attempt >= self.policy.max_attempts {
            self.events.push(FaultEvent {
                at: now,
                kind: FaultEventKind::Aborted {
                    task,
                    attempts: attempt,
                },
            });
            return None;
        }
        self.retries += 1;
        let backoff = self.policy.backoff(attempt);
        self.events.push(FaultEvent {
            at: now,
            kind: FaultEventKind::Retried {
                task,
                attempt: attempt + 1,
                backoff,
            },
        });
        Some(backoff)
    }

    /// Drain the event log (the engine folds it into the trace).
    pub fn take_events(&mut self) -> Vec<FaultEvent> {
        std::mem::take(&mut self.events)
    }

    /// Classify the finished run: `done` is whether every task completed,
    /// `abort` any recorded hard failure, `remaining` the unfinished task
    /// count. Pure function of recovery bookkeeping, shared by both
    /// engines so classifications cannot drift.
    pub fn classify(
        &self,
        done: bool,
        abort: Option<FailureCause>,
        remaining: usize,
    ) -> RunOutcome {
        if let Some(cause) = abort {
            return RunOutcome::Failed { cause };
        }
        if !done {
            let cause = if self.all_dead() {
                FailureCause::AllWorkersLost
            } else {
                FailureCause::Stalled { remaining }
            };
            return RunOutcome::Failed { cause };
        }
        let lost_workers = self.lost_workers();
        if lost_workers.is_empty() && self.retries == 0 {
            RunOutcome::Completed
        } else {
            RunOutcome::Degraded {
                lost_workers,
                retries: self.retries,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_from_base_and_saturates_at_cap() {
        let p = RetryPolicy {
            max_attempts: 8,
            backoff_base: Time::from_micros(100),
            backoff_cap: Time::from_micros(800),
            watchdog: None,
        };
        // Regression: 100µs, 200µs, 400µs, then pinned at the 800µs cap.
        assert_eq!(p.backoff(1), Time::from_micros(100));
        assert_eq!(p.backoff(2), Time::from_micros(200));
        assert_eq!(p.backoff(3), Time::from_micros(400));
        assert_eq!(p.backoff(4), Time::from_micros(800));
        assert_eq!(p.backoff(5), Time::from_micros(800));
        assert_eq!(p.backoff(u32::MAX), Time::from_micros(800));
    }

    #[test]
    fn transient_failures_hit_leading_attempts_only() {
        let plan = FaultPlan::new().transient(TaskId(2), 2);
        let mut s = FaultState::new(&plan, RetryPolicy::default(), 4, 2);
        assert_eq!(s.begin_attempt(TaskId(2)), (1, Some(FaultKind::Transient)));
        assert_eq!(s.begin_attempt(TaskId(2)), (2, Some(FaultKind::Transient)));
        assert_eq!(s.begin_attempt(TaskId(2)), (3, None));
        assert_eq!(s.begin_attempt(TaskId(0)), (1, None));
    }

    #[test]
    fn corrupt_tile_is_a_one_shot_numerical_fault() {
        let plan = FaultPlan::new().corrupt_tile(TaskId(0));
        let mut s = FaultState::new(&plan, RetryPolicy::default(), 1, 1);
        assert_eq!(s.begin_attempt(TaskId(0)), (1, Some(FaultKind::Numerical)));
        assert_eq!(s.begin_attempt(TaskId(0)), (2, None));
    }

    #[test]
    fn death_triggers_on_global_start_count() {
        let plan = FaultPlan::new().kill_worker(1, 2);
        let mut s = FaultState::new(&plan, RetryPolicy::default(), 8, 3);
        assert!(!s.death_due(1));
        s.on_start();
        assert!(!s.death_due(1));
        s.on_start();
        assert!(s.death_due(1));
        assert_eq!(s.doomed_workers(), vec![1]);
        s.mark_dead(1, Time::from_millis(5));
        assert!(s.is_dead(1));
        assert!(!s.death_due(1)); // already dead
        assert_eq!(s.lost_workers(), vec![1]);
        assert!(matches!(
            s.take_events().as_slice(),
            [FaultEvent {
                kind: FaultEventKind::WorkerDied { worker: 1 },
                ..
            }]
        ));
    }

    #[test]
    fn retry_budget_exhaustion_reports_abort() {
        let policy = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        };
        let plan = FaultPlan::new().transient(TaskId(0), 99);
        let mut s = FaultState::new(&plan, policy, 1, 1);
        s.begin_attempt(TaskId(0));
        assert!(s
            .record_failure(TaskId(0), 0, FaultKind::Transient, Time::ZERO)
            .is_some());
        s.begin_attempt(TaskId(0));
        assert!(s
            .record_failure(TaskId(0), 0, FaultKind::Transient, Time::ZERO)
            .is_none());
        let events = s.take_events();
        assert!(events.iter().any(|e| matches!(
            e.kind,
            FaultEventKind::Aborted {
                task: TaskId(0),
                attempts: 2
            }
        )));
        let outcome = s.classify(
            false,
            Some(FailureCause::RetriesExhausted {
                task: TaskId(0),
                attempts: 2,
                kind: FaultKind::Transient,
            }),
            1,
        );
        assert!(!outcome.is_success());
        assert_eq!(outcome.label(), "failed");
    }

    #[test]
    fn classification_matrix() {
        let plan = FaultPlan::new();
        let clean = FaultState::new(&plan, RetryPolicy::default(), 2, 2);
        assert_eq!(clean.classify(true, None, 0), RunOutcome::Completed);
        assert_eq!(
            clean.classify(false, None, 2),
            RunOutcome::Failed {
                cause: FailureCause::Stalled { remaining: 2 }
            }
        );
        let mut lossy = FaultState::new(&plan, RetryPolicy::default(), 2, 2);
        lossy.mark_dead(0, Time::ZERO);
        assert_eq!(
            lossy.classify(true, None, 0),
            RunOutcome::Degraded {
                lost_workers: vec![0],
                retries: 0
            }
        );
        lossy.mark_dead(1, Time::ZERO);
        assert_eq!(
            lossy.classify(false, None, 1),
            RunOutcome::Failed {
                cause: FailureCause::AllWorkersLost
            }
        );
    }

    #[test]
    fn seeded_plans_are_deterministic_and_never_kill_everyone() {
        for seed in 0..64u64 {
            let a = FaultPlan::seeded(seed, 20, 3);
            let b = FaultPlan::seeded(seed, 20, 3);
            assert_eq!(a, b, "seed {seed} not deterministic");
            assert!(!a.kills_all_workers(3), "seed {seed} kills everyone");
            assert!(!a.is_empty(), "seed {seed} produced an empty plan");
            for f in a.faults() {
                if let Fault::WorkerDeath { after_starts, .. } = f {
                    assert!((*after_starts as usize) < 20, "threshold must fire");
                }
            }
        }
        assert_ne!(
            FaultPlan::seeded(1, 20, 3),
            FaultPlan::seeded(2, 20, 3),
            "different seeds should differ"
        );
        // Single-worker platforms get no deaths (nothing could survive).
        assert!(!FaultPlan::seeded(7, 20, 1).kills_all_workers(1));
    }

    #[test]
    fn config_errors_display() {
        assert_eq!(
            ConfigError::ZeroWorkers.to_string(),
            "platform has zero workers"
        );
        assert_eq!(
            ConfigError::PlanKillsAllWorkers { n_workers: 3 }.to_string(),
            "fault plan kills all 3 workers"
        );
        assert!(FaultPlan::new().kill_worker(0, 0).kills_all_workers(1));
        assert!(!FaultPlan::new().kill_worker(0, 0).kills_all_workers(2));
    }

    #[test]
    fn choice_space_enumerates_every_single_fault_point() {
        // none + 2 workers × 4 kill thresholds + 4 transients.
        let space = FaultPlan::choice_space(4, 2);
        assert_eq!(space.len(), 1 + 2 * 4 + 4);
        assert!(space[0].is_empty());
        // Every plan is accepted by the engines' up-front validation.
        for plan in &space {
            assert!(!plan.kills_all_workers(2), "{plan:?}");
        }
        // Single-worker platforms get no death plans (nothing survives).
        let solo = FaultPlan::choice_space(3, 1);
        assert_eq!(solo.len(), 1 + 3);
        assert!(solo.iter().all(|p| !p
            .faults()
            .iter()
            .any(|f| matches!(f, Fault::WorkerDeath { .. }))));
    }

    #[test]
    fn io_fault_plans_round_trip_and_seed_deterministically() {
        let plan = IoFaultPlan::new()
            .short_write(3, 11)
            .flush_fail(2)
            .disk_full(4096);
        let back = IoFaultPlan::from_json_value(&plan.to_json_value()).expect("round trip");
        assert_eq!(plan, back);
        assert_eq!(
            plan.to_json_value().render(),
            r#"[{"kind":"short_write","append":3,"keep":11},{"kind":"flush_fail","flush":2},{"kind":"disk_full","at_bytes":4096}]"#
        );

        // Seeded plans are pure functions of the seed, carry exactly one
        // fault, and a few seeds cover every kind.
        assert_eq!(IoFaultPlan::seeded(9, 50), IoFaultPlan::seeded(9, 50));
        let mut kinds = std::collections::BTreeSet::new();
        for seed in 0..32 {
            let plan = IoFaultPlan::seeded(seed, 50);
            assert_eq!(plan.faults().len(), 1, "{plan:?}");
            kinds.insert(match plan.faults()[0] {
                IoFault::ShortWrite { .. } => "short-write",
                IoFault::FlushFail { .. } => "flush-fail",
                IoFault::DiskFull { .. } => "disk-full",
            });
        }
        assert_eq!(kinds.len(), 3, "32 seeds cover the matrix: {kinds:?}");
    }
}
