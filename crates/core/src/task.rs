//! Tasks, tiles and data accesses.
//!
//! A task is one call to one tile kernel on specific tiles of the matrix;
//! its data accesses (which tiles it reads and writes) are what the DAG
//! builder and the simulator's data-transfer model both consume.

use crate::kernel::Kernel;
use std::fmt;

/// Dense identifier of a task inside one [`crate::dag::TaskGraph`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The dense index, for direct vector addressing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A tile `(row, col)` of the lower triangle of the tiled matrix
/// (`row ≥ col`).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Tile {
    /// Tile row index.
    pub row: u32,
    /// Tile column index (`col ≤ row` for the lower triangle).
    pub col: u32,
}

impl Tile {
    /// Construct a tile coordinate.
    #[inline]
    pub const fn new(row: u32, col: u32) -> Tile {
        Tile { row, col }
    }

    /// `true` iff this is a diagonal tile.
    #[inline]
    pub const fn is_diagonal(self) -> bool {
        self.row == self.col
    }

    /// Dense index of a lower-triangular tile in row-major packed layout,
    /// i.e. `row (row + 1) / 2 + col`. Only valid for `col ≤ row`.
    #[inline]
    pub const fn packed_index(self) -> usize {
        let r = self.row as usize;
        r * (r + 1) / 2 + self.col as usize
    }

    /// Number of lower-triangular tiles of an `n × n`-tile matrix.
    #[inline]
    pub const fn packed_count(n: usize) -> usize {
        n * (n + 1) / 2
    }
}

impl fmt::Display for Tile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A[{}][{}]", self.row, self.col)
    }
}

/// How a task touches a tile.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum AccessMode {
    /// Read-only access.
    Read,
    /// Read-modify-write access (all writes in tiled Cholesky also read,
    /// except POTRF/TRSM outputs which overwrite in place; modelling them
    /// all as RW is what StarPU's Cholesky codelet does too).
    ReadWrite,
}

impl AccessMode {
    /// `true` for any mode that writes.
    #[inline]
    pub const fn is_write(self) -> bool {
        matches!(self, AccessMode::ReadWrite)
    }
}

/// One data access of a task.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Access {
    /// Which tile is accessed.
    pub tile: Tile,
    /// In which mode.
    pub mode: AccessMode,
}

/// The algorithmic coordinates of a task in one of the supported tiled
/// factorizations: Cholesky (Algorithm 1 of the paper), LU without
/// pivoting, or QR (the `Lu*`/`Qr*`-prefixed variants are the extension
/// described in DESIGN.md §9).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum TaskCoords {
    /// `POTRF(k)`: factor diagonal tile `A[k][k]`.
    Potrf {
        /// Elimination step.
        k: u32,
    },
    /// `TRSM(i, k)`: triangular solve on `A[i][k]` using `A[k][k]`, `i > k`.
    Trsm {
        /// Elimination step.
        k: u32,
        /// Panel row, `i > k`.
        i: u32,
    },
    /// `SYRK(j, k)`: rank-`nb` update of `A[j][j]` using `A[j][k]`, `j > k`.
    Syrk {
        /// Elimination step.
        k: u32,
        /// Updated diagonal row, `j > k`.
        j: u32,
    },
    /// `GEMM(i, j, k)`: update `A[i][j] -= A[i][k]·A[j][k]ᵀ`, `i > j > k`.
    Gemm {
        /// Elimination step.
        k: u32,
        /// Updated tile row, `i > j`.
        i: u32,
        /// Updated tile column, `j > k`.
        j: u32,
    },
    /// `GETRF(k)`: LU-factor diagonal tile `A[k][k]` (no pivoting).
    Getrf {
        /// Elimination step.
        k: u32,
    },
    /// `LuTrsmRow(k, j)`: left unit-lower solve on row tile `A[k][j]`,
    /// `j > k`.
    LuTrsmRow {
        /// Elimination step.
        k: u32,
        /// Row-panel column, `j > k`.
        j: u32,
    },
    /// `LuTrsmCol(k, i)`: right upper solve on column tile `A[i][k]`,
    /// `i > k`.
    LuTrsmCol {
        /// Elimination step.
        k: u32,
        /// Column-panel row, `i > k`.
        i: u32,
    },
    /// `LuGemm(i, j, k)`: update `A[i][j] -= A[i][k]·A[k][j]`,
    /// `i > k`, `j > k`.
    LuGemm {
        /// Elimination step.
        k: u32,
        /// Updated tile row, `i > k`.
        i: u32,
        /// Updated tile column, `j > k`.
        j: u32,
    },
    /// `GEQRT(k)`: QR-factor diagonal tile `A[k][k]` (stores V and T in
    /// place).
    Geqrt {
        /// Elimination step.
        k: u32,
    },
    /// `TSQRT(k, i)`: QR of the triangle `A[k][k]` stacked on `A[i][k]`,
    /// `i > k`; updates both tiles.
    Tsqrt {
        /// Elimination step.
        k: u32,
        /// Stacked tile row, `i > k`.
        i: u32,
    },
    /// `ORMQR(k, j)`: apply the GEQRT(k) reflectors to `A[k][j]`, `j > k`.
    Ormqr {
        /// Elimination step.
        k: u32,
        /// Updated column, `j > k`.
        j: u32,
    },
    /// `TSMQR(k, i, j)`: apply the TSQRT(k, i) reflectors to the stacked
    /// pair `A[k][j]` / `A[i][j]`; updates both.
    Tsmqr {
        /// Elimination step.
        k: u32,
        /// Stacked tile row, `i > k`.
        i: u32,
        /// Updated column, `j > k`.
        j: u32,
    },
}

impl TaskCoords {
    /// The kernel this task invokes.
    #[inline]
    pub const fn kernel(self) -> Kernel {
        match self {
            TaskCoords::Potrf { .. } => Kernel::Potrf,
            TaskCoords::Trsm { .. }
            | TaskCoords::LuTrsmRow { .. }
            | TaskCoords::LuTrsmCol { .. } => Kernel::Trsm,
            TaskCoords::Syrk { .. } => Kernel::Syrk,
            TaskCoords::Gemm { .. } | TaskCoords::LuGemm { .. } => Kernel::Gemm,
            TaskCoords::Getrf { .. } => Kernel::Getrf,
            TaskCoords::Geqrt { .. } => Kernel::Geqrt,
            TaskCoords::Tsqrt { .. } => Kernel::Tsqrt,
            TaskCoords::Ormqr { .. } => Kernel::Ormqr,
            TaskCoords::Tsmqr { .. } => Kernel::Tsmqr,
        }
    }

    /// Elimination step `k` of the task.
    #[inline]
    pub const fn step(self) -> u32 {
        match self {
            TaskCoords::Potrf { k }
            | TaskCoords::Trsm { k, .. }
            | TaskCoords::Syrk { k, .. }
            | TaskCoords::Gemm { k, .. }
            | TaskCoords::Getrf { k }
            | TaskCoords::LuTrsmRow { k, .. }
            | TaskCoords::LuTrsmCol { k, .. }
            | TaskCoords::LuGemm { k, .. }
            | TaskCoords::Geqrt { k }
            | TaskCoords::Tsqrt { k, .. }
            | TaskCoords::Ormqr { k, .. }
            | TaskCoords::Tsmqr { k, .. } => k,
        }
    }

    /// The task's *primary* output tile (the tile its name points at).
    /// Every Cholesky and LU task writes exactly one tile; the QR kernels
    /// TSQRT and TSMQR write a second tile — consult
    /// [`TaskCoords::accesses`] for the complete write set.
    #[inline]
    pub const fn output_tile(self) -> Tile {
        match self {
            TaskCoords::Potrf { k } | TaskCoords::Getrf { k } | TaskCoords::Geqrt { k } => {
                Tile::new(k, k)
            }
            TaskCoords::Trsm { k, i } | TaskCoords::LuTrsmCol { k, i } => Tile::new(i, k),
            TaskCoords::Syrk { j, .. } => Tile::new(j, j),
            TaskCoords::Gemm { i, j, .. } | TaskCoords::LuGemm { i, j, .. } => Tile::new(i, j),
            TaskCoords::LuTrsmRow { k, j } | TaskCoords::Ormqr { k, j } => Tile::new(k, j),
            TaskCoords::Tsqrt { k, i } => Tile::new(i, k),
            TaskCoords::Tsmqr { i, j, .. } => Tile::new(i, j),
        }
    }

    /// All data accesses of the task, output included.
    pub fn accesses(self) -> Vec<Access> {
        match self {
            TaskCoords::Potrf { k } => vec![Access {
                tile: Tile::new(k, k),
                mode: AccessMode::ReadWrite,
            }],
            TaskCoords::Trsm { k, i } => vec![
                Access {
                    tile: Tile::new(k, k),
                    mode: AccessMode::Read,
                },
                Access {
                    tile: Tile::new(i, k),
                    mode: AccessMode::ReadWrite,
                },
            ],
            TaskCoords::Syrk { k, j } => vec![
                Access {
                    tile: Tile::new(j, k),
                    mode: AccessMode::Read,
                },
                Access {
                    tile: Tile::new(j, j),
                    mode: AccessMode::ReadWrite,
                },
            ],
            TaskCoords::Gemm { k, i, j } => vec![
                Access {
                    tile: Tile::new(i, k),
                    mode: AccessMode::Read,
                },
                Access {
                    tile: Tile::new(j, k),
                    mode: AccessMode::Read,
                },
                Access {
                    tile: Tile::new(i, j),
                    mode: AccessMode::ReadWrite,
                },
            ],
            TaskCoords::Getrf { k } | TaskCoords::Geqrt { k } => vec![Access {
                tile: Tile::new(k, k),
                mode: AccessMode::ReadWrite,
            }],
            TaskCoords::LuTrsmRow { k, j } => vec![
                Access {
                    tile: Tile::new(k, k),
                    mode: AccessMode::Read,
                },
                Access {
                    tile: Tile::new(k, j),
                    mode: AccessMode::ReadWrite,
                },
            ],
            TaskCoords::LuTrsmCol { k, i } => vec![
                Access {
                    tile: Tile::new(k, k),
                    mode: AccessMode::Read,
                },
                Access {
                    tile: Tile::new(i, k),
                    mode: AccessMode::ReadWrite,
                },
            ],
            TaskCoords::LuGemm { k, i, j } => vec![
                Access {
                    tile: Tile::new(i, k),
                    mode: AccessMode::Read,
                },
                Access {
                    tile: Tile::new(k, j),
                    mode: AccessMode::Read,
                },
                Access {
                    tile: Tile::new(i, j),
                    mode: AccessMode::ReadWrite,
                },
            ],
            TaskCoords::Tsqrt { k, i } => vec![
                Access {
                    tile: Tile::new(k, k),
                    mode: AccessMode::ReadWrite,
                },
                Access {
                    tile: Tile::new(i, k),
                    mode: AccessMode::ReadWrite,
                },
            ],
            TaskCoords::Ormqr { k, j } => vec![
                Access {
                    tile: Tile::new(k, k),
                    mode: AccessMode::Read,
                },
                Access {
                    tile: Tile::new(k, j),
                    mode: AccessMode::ReadWrite,
                },
            ],
            TaskCoords::Tsmqr { k, i, j } => vec![
                Access {
                    tile: Tile::new(i, k),
                    mode: AccessMode::Read,
                },
                Access {
                    tile: Tile::new(k, j),
                    mode: AccessMode::ReadWrite,
                },
                Access {
                    tile: Tile::new(i, j),
                    mode: AccessMode::ReadWrite,
                },
            ],
        }
    }

    /// Distance of the task's primary output tile from the diagonal, in
    /// tiles (absolute, so row- and column-panel tasks both count).
    ///
    /// This is the quantity the paper's triangle heuristic thresholds on:
    /// *"all the TRSM kernels which are at least k tiles away from the
    /// diagonal are forced to execute on the CPUs"* (Section V-C3).
    #[inline]
    pub const fn diagonal_offset(self) -> u32 {
        let t = self.output_tile();
        t.row.abs_diff(t.col)
    }
}

impl fmt::Display for TaskCoords {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TaskCoords::Potrf { k } => write!(f, "POTRF_{k}"),
            TaskCoords::Trsm { k, i } => write!(f, "TRSM_{i}_{k}"),
            TaskCoords::Syrk { k, j } => write!(f, "SYRK_{j}_{k}"),
            TaskCoords::Gemm { k, i, j } => write!(f, "GEMM_{i}_{j}_{k}"),
            TaskCoords::Getrf { k } => write!(f, "GETRF_{k}"),
            TaskCoords::LuTrsmRow { k, j } => write!(f, "TRSM_R_{k}_{j}"),
            TaskCoords::LuTrsmCol { k, i } => write!(f, "TRSM_C_{i}_{k}"),
            TaskCoords::LuGemm { k, i, j } => write!(f, "LUGEMM_{i}_{j}_{k}"),
            TaskCoords::Geqrt { k } => write!(f, "GEQRT_{k}"),
            TaskCoords::Tsqrt { k, i } => write!(f, "TSQRT_{i}_{k}"),
            TaskCoords::Ormqr { k, j } => write!(f, "ORMQR_{k}_{j}"),
            TaskCoords::Tsmqr { k, i, j } => write!(f, "TSMQR_{i}_{j}_{k}"),
        }
    }
}

/// A fully-described task: identifier plus algorithmic coordinates.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Task {
    /// Dense identifier within its graph.
    pub id: TaskId,
    /// Algorithmic coordinates.
    pub coords: TaskCoords,
}

impl Task {
    /// The kernel this task invokes.
    #[inline]
    pub const fn kernel(&self) -> Kernel {
        self.coords.kernel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_packed_index_is_dense_and_ordered() {
        let n = 6usize;
        let mut seen = vec![false; Tile::packed_count(n)];
        for r in 0..n as u32 {
            for c in 0..=r {
                let idx = Tile::new(r, c).packed_index();
                assert!(!seen[idx], "duplicate packed index {idx}");
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn output_tiles_and_offsets() {
        let trsm = TaskCoords::Trsm { k: 2, i: 7 };
        assert_eq!(trsm.output_tile(), Tile::new(7, 2));
        assert_eq!(trsm.diagonal_offset(), 5);
        let potrf = TaskCoords::Potrf { k: 3 };
        assert_eq!(potrf.diagonal_offset(), 0);
        assert!(potrf.output_tile().is_diagonal());
        let gemm = TaskCoords::Gemm { k: 0, i: 4, j: 1 };
        assert_eq!(gemm.output_tile(), Tile::new(4, 1));
        assert_eq!(gemm.diagonal_offset(), 3);
    }

    #[test]
    fn accesses_match_algorithm_one() {
        let gemm = TaskCoords::Gemm { k: 1, i: 5, j: 3 };
        let acc = gemm.accesses();
        assert_eq!(acc.len(), 3);
        assert_eq!(acc[0].tile, Tile::new(5, 1));
        assert_eq!(acc[0].mode, AccessMode::Read);
        assert_eq!(acc[1].tile, Tile::new(3, 1));
        assert_eq!(acc[2].tile, Tile::new(5, 3));
        assert!(acc[2].mode.is_write());

        let syrk = TaskCoords::Syrk { k: 0, j: 2 };
        let acc = syrk.accesses();
        assert_eq!(acc[0].tile, Tile::new(2, 0));
        assert_eq!(acc[1].tile, Tile::new(2, 2));

        let potrf = TaskCoords::Potrf { k: 4 };
        assert_eq!(potrf.accesses().len(), 1);
    }

    #[test]
    fn cholesky_and_lu_tasks_write_exactly_one_tile() {
        let tasks = [
            TaskCoords::Potrf { k: 0 },
            TaskCoords::Trsm { k: 0, i: 1 },
            TaskCoords::Syrk { k: 0, j: 1 },
            TaskCoords::Gemm { k: 0, i: 2, j: 1 },
            TaskCoords::Getrf { k: 0 },
            TaskCoords::LuTrsmRow { k: 0, j: 1 },
            TaskCoords::LuTrsmCol { k: 0, i: 1 },
            TaskCoords::LuGemm { k: 0, i: 2, j: 1 },
            TaskCoords::Geqrt { k: 0 },
            TaskCoords::Ormqr { k: 0, j: 1 },
        ];
        for t in tasks {
            let writes: Vec<_> = t
                .accesses()
                .into_iter()
                .filter(|a| a.mode.is_write())
                .collect();
            assert_eq!(writes.len(), 1, "{t}");
            assert_eq!(writes[0].tile, t.output_tile());
        }
    }

    #[test]
    fn qr_coupled_kernels_write_two_tiles() {
        for t in [
            TaskCoords::Tsqrt { k: 0, i: 2 },
            TaskCoords::Tsmqr { k: 0, i: 2, j: 1 },
        ] {
            let writes: Vec<_> = t
                .accesses()
                .into_iter()
                .filter(|a| a.mode.is_write())
                .map(|a| a.tile)
                .collect();
            assert_eq!(writes.len(), 2, "{t}");
            assert!(writes.contains(&t.output_tile()));
        }
    }

    #[test]
    fn upper_triangle_offsets_are_absolute() {
        // LU row-panel tiles sit above the diagonal.
        let t = TaskCoords::LuTrsmRow { k: 1, j: 5 };
        assert_eq!(t.output_tile(), Tile::new(1, 5));
        assert_eq!(t.diagonal_offset(), 4);
        assert_eq!(TaskCoords::Ormqr { k: 0, j: 3 }.diagonal_offset(), 3);
    }

    #[test]
    fn lu_and_qr_kernels_map_correctly() {
        assert_eq!(TaskCoords::LuTrsmRow { k: 0, j: 1 }.kernel(), Kernel::Trsm);
        assert_eq!(TaskCoords::LuTrsmCol { k: 0, i: 1 }.kernel(), Kernel::Trsm);
        assert_eq!(
            TaskCoords::LuGemm { k: 0, i: 1, j: 1 }.kernel(),
            Kernel::Gemm
        );
        assert_eq!(TaskCoords::Getrf { k: 0 }.kernel(), Kernel::Getrf);
        assert_eq!(TaskCoords::Tsqrt { k: 0, i: 1 }.kernel(), Kernel::Tsqrt);
    }

    #[test]
    fn display_matches_paper_naming() {
        assert_eq!(
            TaskCoords::Gemm { k: 1, i: 4, j: 2 }.to_string(),
            "GEMM_4_2_1"
        );
        assert_eq!(TaskCoords::Trsm { k: 0, i: 1 }.to_string(), "TRSM_1_0");
        assert_eq!(TaskCoords::Syrk { k: 2, j: 3 }.to_string(), "SYRK_3_2");
        assert_eq!(TaskCoords::Potrf { k: 4 }.to_string(), "POTRF_4");
    }
}
