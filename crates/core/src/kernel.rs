//! The tile kernels of the supported dense factorizations.
//!
//! The paper studies the tiled Cholesky factorization (POTRF / TRSM /
//! SYRK / GEMM, Section II-A) and notes the same methodology applies to
//! the other one-sided factorizations; this crate also carries the tiled
//! LU (no pivoting) and tiled QR kernel sets so the bounds, schedulers
//! and simulator can be exercised on them (see DESIGN.md §9, Extensions).
//!
//! LU reuses the BLAS3 `TRSM`/`GEMM` kernels (their cost per tile is the
//! same as in Cholesky); only its diagonal factorization `GETRF` is new.
//! QR brings the four tile-QR kernels of Buttari et al.:
//! `GEQRT`/`TSQRT`/`ORMQR`/`TSMQR`.

use std::fmt;

/// One tile kernel.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Kernel {
    /// Cholesky factorization of a diagonal tile (`dpotrf`).
    Potrf,
    /// Triangular solve (`dtrsm`) — used by both Cholesky and LU panels.
    Trsm,
    /// Symmetric rank-`nb` update of a diagonal tile (`dsyrk`).
    Syrk,
    /// General tile update (`dgemm`) — Cholesky and LU trailing updates.
    Gemm,
    /// LU factorization (no pivoting) of a diagonal tile (`dgetrf`).
    Getrf,
    /// QR factorization of a diagonal tile (`dgeqrt`).
    Geqrt,
    /// QR of a triangle stacked on a square tile (`dtsqrt`).
    Tsqrt,
    /// Apply a GEQRT reflector block to a row tile (`dormqr`).
    Ormqr,
    /// Apply a TSQRT reflector block to a stacked tile pair (`dtsmqr`).
    Tsmqr,
}

impl Kernel {
    /// All kernels, in the canonical order used for tables and LP
    /// variables. The first four are the Cholesky set of the paper.
    pub const ALL: [Kernel; 9] = [
        Kernel::Potrf,
        Kernel::Trsm,
        Kernel::Syrk,
        Kernel::Gemm,
        Kernel::Getrf,
        Kernel::Geqrt,
        Kernel::Tsqrt,
        Kernel::Ormqr,
        Kernel::Tsmqr,
    ];

    /// The four kernels of the tiled Cholesky factorization (the paper's
    /// scope).
    pub const CHOLESKY: [Kernel; 4] = [Kernel::Potrf, Kernel::Trsm, Kernel::Syrk, Kernel::Gemm];

    /// The kernels of the tiled LU factorization without pivoting.
    pub const LU: [Kernel; 3] = [Kernel::Getrf, Kernel::Trsm, Kernel::Gemm];

    /// The kernels of the tiled QR factorization.
    pub const QR: [Kernel; 4] = [Kernel::Geqrt, Kernel::Tsqrt, Kernel::Ormqr, Kernel::Tsmqr];

    /// Number of kernel kinds (length of [`Kernel::ALL`]).
    pub const COUNT: usize = 9;

    /// Canonical dense index in `0..Kernel::COUNT`, matching [`Kernel::ALL`].
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Kernel::Potrf => 0,
            Kernel::Trsm => 1,
            Kernel::Syrk => 2,
            Kernel::Gemm => 3,
            Kernel::Getrf => 4,
            Kernel::Geqrt => 5,
            Kernel::Tsqrt => 6,
            Kernel::Ormqr => 7,
            Kernel::Tsmqr => 8,
        }
    }

    /// Inverse of [`Kernel::index`].
    ///
    /// # Panics
    /// Panics if `idx >= Kernel::COUNT`.
    #[inline]
    pub const fn from_index(idx: usize) -> Kernel {
        Kernel::ALL[idx]
    }

    /// Floating-point operation count of one tile kernel for tile size `nb`
    /// (double precision, counting multiply and add separately).
    ///
    /// Standard counts: POTRF `nb³/3`, TRSM `nb³`, SYRK `nb³`, GEMM `2nb³`,
    /// GETRF `2nb³/3`, GEQRT `4nb³/3`, TSQRT `2nb³`, ORMQR `2nb³`,
    /// TSMQR `4nb³` (leading order; lower-order terms included where they
    /// are conventional).
    #[inline]
    pub fn flops(self, nb: usize) -> f64 {
        let b = nb as f64;
        let b3 = b * b * b;
        match self {
            Kernel::Potrf => b3 / 3.0 + b * b / 2.0 + b / 6.0,
            Kernel::Trsm => b3,
            Kernel::Syrk => b * b * (b + 1.0),
            Kernel::Gemm => 2.0 * b3,
            Kernel::Getrf => 2.0 * b3 / 3.0,
            Kernel::Geqrt => 4.0 * b3 / 3.0,
            Kernel::Tsqrt => 2.0 * b3,
            Kernel::Ormqr => 2.0 * b3,
            Kernel::Tsmqr => 4.0 * b3,
        }
    }

    /// Number of tasks of this kernel in the Cholesky factorization of an
    /// `n × n`-tile matrix (zero for non-Cholesky kernels):
    /// `n` POTRF, `n(n-1)/2` TRSM, `n(n-1)/2` SYRK, `n(n-1)(n-2)/6` GEMM.
    #[inline]
    pub fn count_in_cholesky(self, n: usize) -> usize {
        match self {
            Kernel::Potrf => n,
            Kernel::Trsm => n * n.saturating_sub(1) / 2,
            Kernel::Syrk => n * n.saturating_sub(1) / 2,
            Kernel::Gemm => n * n.saturating_sub(1) * n.saturating_sub(2) / 6,
            _ => 0,
        }
    }

    /// Number of tasks of this kernel in the tiled LU (no pivoting) of an
    /// `n × n`-tile matrix: `n` GETRF, `n(n-1)` TRSM (row + column
    /// panels), `(n-1)n(2n-1)/6` GEMM.
    #[inline]
    pub fn count_in_lu(self, n: usize) -> usize {
        let m = n.saturating_sub(1);
        match self {
            Kernel::Getrf => n,
            Kernel::Trsm => n * m,
            Kernel::Gemm => m * n * (2 * n).saturating_sub(1) / 6,
            _ => 0,
        }
    }

    /// Number of tasks of this kernel in the tiled QR of an `n × n`-tile
    /// matrix: `n` GEQRT, `n(n-1)/2` TSQRT, `n(n-1)/2` ORMQR,
    /// `(n-1)n(2n-1)/6` TSMQR.
    #[inline]
    pub fn count_in_qr(self, n: usize) -> usize {
        let m = n.saturating_sub(1);
        match self {
            Kernel::Geqrt => n,
            Kernel::Tsqrt => n * m / 2,
            Kernel::Ormqr => n * m / 2,
            Kernel::Tsmqr => m * n * (2 * n).saturating_sub(1) / 6,
            _ => 0,
        }
    }

    /// Total task count of an `n × n`-tile Cholesky factorization.
    #[inline]
    pub fn total_cholesky_tasks(n: usize) -> usize {
        Kernel::CHOLESKY
            .iter()
            .map(|k| k.count_in_cholesky(n))
            .sum()
    }

    /// Total task count of an `n × n`-tile LU (no pivoting).
    #[inline]
    pub fn total_lu_tasks(n: usize) -> usize {
        Kernel::LU.iter().map(|k| k.count_in_lu(n)).sum()
    }

    /// Total task count of an `n × n`-tile QR.
    #[inline]
    pub fn total_qr_tasks(n: usize) -> usize {
        Kernel::QR.iter().map(|k| k.count_in_qr(n)).sum()
    }

    /// Short upper-case label, as used in the paper's figures and tables.
    pub fn label(self) -> &'static str {
        match self {
            Kernel::Potrf => "POTRF",
            Kernel::Trsm => "TRSM",
            Kernel::Syrk => "SYRK",
            Kernel::Gemm => "GEMM",
            Kernel::Getrf => "GETRF",
            Kernel::Geqrt => "GEQRT",
            Kernel::Tsqrt => "TSQRT",
            Kernel::Ormqr => "ORMQR",
            Kernel::Tsmqr => "TSMQR",
        }
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for k in Kernel::ALL {
            assert_eq!(Kernel::from_index(k.index()), k);
        }
        assert_eq!(Kernel::ALL.len(), Kernel::COUNT);
    }

    #[test]
    fn flop_counts_at_nb_960() {
        let nb = 960;
        assert!((Kernel::Gemm.flops(nb) - 2.0 * 960f64.powi(3)).abs() < 1.0);
        assert!((Kernel::Trsm.flops(nb) - 960f64.powi(3)).abs() < 1.0);
        let p = Kernel::Potrf.flops(nb);
        assert!(p > 960f64.powi(3) / 3.0 && p < 960f64.powi(3) / 3.0 * 1.01);
        let s = Kernel::Syrk.flops(nb);
        assert!(s > 960f64.powi(3) && s < 960f64.powi(3) * 1.01);
        // LU diagonal is twice the Cholesky diagonal work.
        assert!((Kernel::Getrf.flops(nb) / Kernel::Potrf.flops(nb) - 2.0).abs() < 0.01);
        // TSMQR is the heavyweight QR kernel.
        assert!(Kernel::Tsmqr.flops(nb) > Kernel::Gemm.flops(nb));
    }

    #[test]
    fn cholesky_task_counts_small_sizes() {
        // n = 4: 4 + 6 + 6 + 4 = 20 tasks (used in the paper's K(4) = 17.30).
        assert_eq!(Kernel::Potrf.count_in_cholesky(4), 4);
        assert_eq!(Kernel::Trsm.count_in_cholesky(4), 6);
        assert_eq!(Kernel::Syrk.count_in_cholesky(4), 6);
        assert_eq!(Kernel::Gemm.count_in_cholesky(4), 4);
        assert_eq!(Kernel::total_cholesky_tasks(4), 20);
        // n = 5 matches Figure 1 of the paper: 5+10+10+10 = 35 vertices.
        assert_eq!(Kernel::total_cholesky_tasks(5), 35);
        // Non-Cholesky kernels never appear.
        assert_eq!(Kernel::Getrf.count_in_cholesky(8), 0);
        assert_eq!(Kernel::Tsmqr.count_in_cholesky(8), 0);
    }

    #[test]
    fn lu_task_counts() {
        // n = 3: 3 GETRF + 6 TRSM + (2·3·5)/6 = 5 GEMM = 14 tasks.
        assert_eq!(Kernel::Getrf.count_in_lu(3), 3);
        assert_eq!(Kernel::Trsm.count_in_lu(3), 6);
        assert_eq!(Kernel::Gemm.count_in_lu(3), 5);
        assert_eq!(Kernel::total_lu_tasks(3), 14);
        assert_eq!(Kernel::total_lu_tasks(1), 1);
        assert_eq!(Kernel::Potrf.count_in_lu(5), 0);
    }

    #[test]
    fn qr_task_counts() {
        // n = 3: 3 GEQRT + 3 TSQRT + 3 ORMQR + 5 TSMQR = 14 tasks.
        assert_eq!(Kernel::Geqrt.count_in_qr(3), 3);
        assert_eq!(Kernel::Tsqrt.count_in_qr(3), 3);
        assert_eq!(Kernel::Ormqr.count_in_qr(3), 3);
        assert_eq!(Kernel::Tsmqr.count_in_qr(3), 5);
        assert_eq!(Kernel::total_qr_tasks(3), 14);
        assert_eq!(Kernel::total_qr_tasks(1), 1);
    }

    #[test]
    fn cholesky_task_counts_degenerate() {
        assert_eq!(Kernel::total_cholesky_tasks(0), 0);
        assert_eq!(Kernel::total_cholesky_tasks(1), 1);
        assert_eq!(Kernel::Gemm.count_in_cholesky(2), 0);
        assert_eq!(Kernel::total_cholesky_tasks(2), 4);
    }

    #[test]
    fn cholesky_counts_sum_identity() {
        for n in 0usize..40 {
            let expected =
                n + n * n.saturating_sub(1) + n * n.saturating_sub(1) * n.saturating_sub(2) / 6;
            assert_eq!(Kernel::total_cholesky_tasks(n), expected, "n={n}");
        }
    }

    #[test]
    fn labels() {
        assert_eq!(Kernel::Gemm.to_string(), "GEMM");
        assert_eq!(Kernel::Potrf.label(), "POTRF");
        assert_eq!(Kernel::Tsmqr.label(), "TSMQR");
    }
}
