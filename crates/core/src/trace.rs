//! Execution traces: per-worker task timelines and transfer logs.
//!
//! The paper diagnoses scheduler behaviour from traces (Figure 12: GPU
//! Gantt charts of `dmda` vs `dmdas` at 8 × 8 tiles, showing the idle time
//! the HEFT-style policy introduces on GPUs). This module provides the
//! trace container, busy/idle accounting, conversion to a [`Schedule`] for
//! validation, and an ASCII Gantt renderer.

use crate::fault::FaultEvent;
use crate::kernel::Kernel;
use crate::platform::{MemNode, Platform, WorkerId};
use crate::schedule::{Schedule, ScheduleEntry};
use crate::task::{TaskId, Tile};
use crate::time::Time;
use std::fmt::Write as _;

/// One executed task occurrence.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Worker that ran the task.
    pub worker: WorkerId,
    /// The task.
    pub task: TaskId,
    /// Its kernel (denormalised for painless plotting).
    pub kernel: Kernel,
    /// Execution start.
    pub start: Time,
    /// Execution end.
    pub end: Time,
}

/// One tile transfer between memory nodes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TransferEvent {
    /// The tile moved.
    pub tile: Tile,
    /// Source memory node.
    pub from: MemNode,
    /// Destination memory node.
    pub to: MemNode,
    /// Transfer start.
    pub start: Time,
    /// Transfer end.
    pub end: Time,
}

/// One task being pushed into a worker queue by the dispatcher.
///
/// Queue events carry the scheduler's `prio` and the global enqueue `seq`
/// that [`crate::exec::WorkerQueues`] used, so post-hoc analysis (the
/// `hetchol-analyze` linter) can audit queue discipline — e.g. detect a
/// priority inversion on a `dmdas` sorted queue — without re-running the
/// engine.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct QueueEvent {
    /// Worker whose queue received the task.
    pub worker: WorkerId,
    /// The enqueued task.
    pub task: TaskId,
    /// Scheduler priority at enqueue time.
    pub prio: i64,
    /// Global enqueue sequence number (engine-wide, monotonically
    /// increasing across all workers).
    pub seq: u64,
    /// Time the dispatcher pushed the task.
    pub at: Time,
    /// When the task's inputs were (estimated) resident at the worker.
    pub data_ready: Time,
}

/// A complete execution trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Number of workers on the platform the trace was recorded on.
    pub n_workers: usize,
    /// Task executions, in completion order.
    pub events: Vec<TraceEvent>,
    /// Tile transfers, in completion order.
    pub transfers: Vec<TransferEvent>,
    /// Dispatcher enqueue events, in `seq` order.
    pub queue_events: Vec<QueueEvent>,
    /// Fault-injection/recovery events (worker deaths, failed attempts,
    /// retries, aborts), empty for fault-free runs. Linter rule 17 audits
    /// [`Trace::events`] against this log.
    pub fault_events: Vec<FaultEvent>,
}

impl Trace {
    /// Completion time of the last event (tasks and transfers).
    pub fn makespan(&self) -> Time {
        let t = self
            .events
            .iter()
            .map(|e| e.end)
            .max()
            .unwrap_or(Time::ZERO);
        let x = self
            .transfers
            .iter()
            .map(|e| e.end)
            .max()
            .unwrap_or(Time::ZERO);
        t.max(x)
    }

    /// Total busy time of a worker.
    pub fn busy_time(&self, worker: WorkerId) -> Time {
        self.events
            .iter()
            .filter(|e| e.worker == worker)
            .map(|e| e.end - e.start)
            .sum()
    }

    /// Idle time of a worker over the whole makespan.
    pub fn idle_time(&self, worker: WorkerId) -> Time {
        self.makespan().saturating_sub(self.busy_time(worker))
    }

    /// Sum of busy times over all workers.
    pub fn total_busy(&self) -> Time {
        self.events.iter().map(|e| e.end - e.start).sum()
    }

    /// Events of one worker, sorted by start time.
    pub fn worker_events(&self, worker: WorkerId) -> Vec<TraceEvent> {
        let mut evs: Vec<TraceEvent> = self
            .events
            .iter()
            .copied()
            .filter(|e| e.worker == worker)
            .collect();
        evs.sort_by_key(|e| e.start);
        evs
    }

    /// Busy time split by kernel for one worker, indexed by
    /// [`Kernel::index`].
    pub fn busy_by_kernel(&self, worker: WorkerId) -> [Time; Kernel::COUNT] {
        let mut acc = [Time::ZERO; Kernel::COUNT];
        for e in self.events.iter().filter(|e| e.worker == worker) {
            acc[e.kernel.index()] += e.end - e.start;
        }
        acc
    }

    /// Convert to a [`Schedule`] so the common validator can referee it.
    pub fn to_schedule(&self) -> Schedule {
        Schedule::from_entries(
            self.events
                .iter()
                .map(|e| ScheduleEntry {
                    task: e.task,
                    worker: e.worker,
                    start: e.start,
                    end: e.end,
                })
                .collect(),
        )
    }

    /// Render an ASCII Gantt chart, one row per worker, `width` characters
    /// spanning the makespan. Tasks are drawn with their kernel's initial
    /// (`P`/`T`/`S`/`G`); idle time is `.`.
    ///
    /// This is the textual analogue of the paper's Figure 12.
    pub fn gantt_ascii(&self, platform: &Platform, width: usize) -> String {
        let mut out = String::new();
        let span = self.makespan();
        if span.is_zero() || width == 0 {
            return out;
        }
        let span_ns = span.as_nanos() as f64;
        for w in 0..self.n_workers {
            let name = platform.worker_name(w);
            let mut row = vec!['.'; width];
            for e in self.worker_events(w) {
                let a = ((e.start.as_nanos() as f64 / span_ns) * width as f64).floor() as usize;
                let b = ((e.end.as_nanos() as f64 / span_ns) * width as f64).ceil() as usize;
                let glyph = match e.kernel {
                    Kernel::Potrf => 'P',
                    Kernel::Trsm => 'T',
                    Kernel::Syrk => 'S',
                    Kernel::Gemm => 'G',
                    Kernel::Getrf => 'F',
                    Kernel::Geqrt => 'Q',
                    Kernel::Tsqrt => 'q',
                    Kernel::Ormqr => 'O',
                    Kernel::Tsmqr => 'M',
                };
                for cell in row.iter_mut().take(b.min(width)).skip(a.min(width)) {
                    *cell = glyph;
                }
            }
            let _ = writeln!(out, "{name:>6} |{}|", row.into_iter().collect::<String>());
        }
        let _ = writeln!(
            out,
            "{:>6}  0{:>width$}",
            "",
            format!("{span}"),
            width = width
        );
        out
    }

    /// Fraction of the makespan the given workers spend idle, averaged —
    /// the quantity Figure 12 makes visible.
    pub fn idle_fraction(&self, workers: impl Iterator<Item = WorkerId>) -> f64 {
        let span = self.makespan();
        if span.is_zero() {
            return 0.0;
        }
        let (mut total_idle, mut count) = (0.0f64, 0usize);
        for w in workers {
            total_idle += self.idle_time(w).as_secs_f64();
            count += 1;
        }
        if count == 0 {
            return 0.0;
        }
        total_idle / (count as f64 * span.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_trace() -> Trace {
        Trace {
            n_workers: 2,
            events: vec![
                TraceEvent {
                    worker: 0,
                    task: TaskId(0),
                    kernel: Kernel::Potrf,
                    start: Time::ZERO,
                    end: Time::from_millis(10),
                },
                TraceEvent {
                    worker: 1,
                    task: TaskId(1),
                    kernel: Kernel::Gemm,
                    start: Time::from_millis(10),
                    end: Time::from_millis(40),
                },
                TraceEvent {
                    worker: 0,
                    task: TaskId(2),
                    kernel: Kernel::Syrk,
                    start: Time::from_millis(20),
                    end: Time::from_millis(30),
                },
            ],
            transfers: vec![TransferEvent {
                tile: Tile::new(1, 0),
                from: 0,
                to: 1,
                start: Time::ZERO,
                end: Time::from_millis(2),
            }],
            queue_events: Vec::new(),
            fault_events: Vec::new(),
        }
    }

    #[test]
    fn busy_idle_accounting() {
        let t = demo_trace();
        assert_eq!(t.makespan(), Time::from_millis(40));
        assert_eq!(t.busy_time(0), Time::from_millis(20));
        assert_eq!(t.idle_time(0), Time::from_millis(20));
        assert_eq!(t.busy_time(1), Time::from_millis(30));
        assert_eq!(t.total_busy(), Time::from_millis(50));
        // busy + idle == makespan for every worker
        for w in 0..2 {
            assert_eq!(t.busy_time(w) + t.idle_time(w), t.makespan());
        }
    }

    #[test]
    fn busy_by_kernel_partitions_busy_time() {
        let t = demo_trace();
        let by_k = t.busy_by_kernel(0);
        assert_eq!(by_k[Kernel::Potrf.index()], Time::from_millis(10));
        assert_eq!(by_k[Kernel::Syrk.index()], Time::from_millis(10));
        assert_eq!(by_k.iter().copied().sum::<Time>(), t.busy_time(0));
    }

    #[test]
    fn worker_events_sorted() {
        let t = demo_trace();
        let evs = t.worker_events(0);
        assert_eq!(evs.len(), 2);
        assert!(evs[0].start <= evs[1].start);
    }

    #[test]
    fn idle_fraction_bounds() {
        let t = demo_trace();
        let f = t.idle_fraction(0..2);
        assert!((0.0..=1.0).contains(&f));
        // worker 0 idle 20/40, worker 1 idle 10/40 -> average 0.375
        assert!((f - 0.375).abs() < 1e-9);
        assert_eq!(Trace::default().idle_fraction(0..2), 0.0);
    }

    #[test]
    fn gantt_renders_rows() {
        let t = demo_trace();
        let p = Platform::homogeneous(2);
        let g = t.gantt_ascii(&p, 40);
        assert!(g.contains("CPU0"));
        assert!(g.contains("CPU1"));
        assert!(g.contains('P'));
        assert!(g.contains('G'));
        assert!(g.contains('.'));
        assert!(t.gantt_ascii(&p, 0).is_empty());
    }

    #[test]
    fn to_schedule_preserves_timing() {
        let t = demo_trace();
        let s = t.to_schedule();
        assert_eq!(s.len(), 3);
        assert_eq!(s.makespan(), Time::from_millis(40));
        assert_eq!(s.entry(TaskId(1)).unwrap().worker, 1);
    }

    #[test]
    fn makespan_includes_transfers() {
        let mut t = demo_trace();
        t.transfers[0].end = Time::from_millis(100);
        assert_eq!(t.makespan(), Time::from_millis(100));
    }
}
