//! Task graphs of the tiled factorizations (Figure 1 of the paper for
//! Cholesky; LU and QR are the DESIGN.md §9 extension).
//!
//! Dependencies are derived *data-driven* from the per-task accesses of
//! [`crate::task::TaskCoords::accesses`]: a read depends on the last writer
//! of the tile (RAW), a write depends on the last writer (WAW) and on every
//! reader since that write (WAR). For the in-place tiled Cholesky this
//! produces exactly the classic DAG of the paper, the same engine derives
//! the LU and QR graphs, and the generic construction doubles as a
//! correctness check of the access lists.

use crate::kernel::Kernel;
use crate::task::{Access, Task, TaskCoords, TaskId, Tile};
use crate::time::Time;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Compressed-sparse-row adjacency: the neighbours of task `i` are the
/// slice `targets[offsets[i] .. offsets[i + 1]]`.
///
/// Two flat arenas replace per-task nested vectors: one cache-friendly
/// allocation for all neighbour lists plus one for the row boundaries,
/// instead of one heap allocation per task. Rows are sorted and
/// deduplicated, exactly like the per-task lists they replace.
#[derive(Clone, Debug, Default)]
struct CsrAdjacency {
    /// Row boundaries; `offsets.len() == n_rows + 1`, `offsets[0] == 0`.
    offsets: Vec<u32>,
    /// All neighbour lists, concatenated in row order.
    targets: Vec<TaskId>,
}

impl CsrAdjacency {
    /// Build from edge pairs sorted by `(row, target)` with no duplicates.
    fn from_sorted_pairs(n_rows: usize, pairs: &[(TaskId, TaskId)]) -> CsrAdjacency {
        let mut offsets = vec![0u32; n_rows + 1];
        for &(row, _) in pairs {
            offsets[row.index() + 1] += 1;
        }
        for i in 0..n_rows {
            offsets[i + 1] += offsets[i];
        }
        let targets = pairs.iter().map(|&(_, t)| t).collect();
        CsrAdjacency { offsets, targets }
    }

    /// The neighbour slice of row `i`.
    #[inline]
    fn row(&self, i: usize) -> &[TaskId] {
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Number of neighbours of row `i`.
    #[inline]
    fn degree(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Total number of stored edges.
    #[inline]
    fn n_edges(&self) -> usize {
        self.targets.len()
    }
}

/// An immutable task graph with precomputed adjacency.
#[derive(Clone, Debug)]
pub struct TaskGraph {
    /// Matrix order in tiles.
    n: usize,
    /// Tasks in sequential-algorithm submission order.
    tasks: Vec<Task>,
    /// Direct successors of each task (CSR; rows deduplicated, sorted).
    succs: CsrAdjacency,
    /// Direct predecessors of each task (CSR; rows deduplicated, sorted).
    preds: CsrAdjacency,
    /// Map from coordinates to identifier.
    by_coords: HashMap<TaskCoords, TaskId>,
    /// All task accesses, flattened (CSR with `acc_off`): engines read
    /// these on every scheduler estimate, so they are materialized once
    /// here instead of allocating a `Vec` per [`TaskCoords::accesses`]
    /// call on the hot path (DESIGN.md §13).
    accesses: Vec<Access>,
    /// CSR offsets into `accesses`; task `t` owns
    /// `accesses[acc_off[t]..acc_off[t + 1]]`.
    acc_off: Vec<u32>,
}

impl TaskGraph {
    /// Build the task graph of the Cholesky factorization of an
    /// `n × n`-tile matrix, following Algorithm 1 of the paper.
    ///
    /// Tasks are created in the sequential pseudocode order, which is also
    /// the order a StarPU application would submit them in.
    ///
    /// ```
    /// use hetchol_core::dag::TaskGraph;
    ///
    /// // Figure 1 of the paper: the 5x5-tile DAG has 35 tasks.
    /// let g = TaskGraph::cholesky(5);
    /// assert_eq!(g.len(), 35);
    /// assert_eq!(g.entry_tasks().len(), 1);
    /// assert!(g.to_dot().contains("POTRF_0"));
    /// ```
    pub fn cholesky(n: usize) -> TaskGraph {
        let mut coords = Vec::with_capacity(Kernel::total_cholesky_tasks(n));
        for k in 0..n as u32 {
            coords.push(TaskCoords::Potrf { k });
            for i in (k + 1)..n as u32 {
                coords.push(TaskCoords::Trsm { k, i });
            }
            for j in (k + 1)..n as u32 {
                coords.push(TaskCoords::Syrk { k, j });
                for i in (j + 1)..n as u32 {
                    coords.push(TaskCoords::Gemm { k, i, j });
                }
            }
        }
        Self::from_submission_order(n, coords)
    }

    /// Build the task graph of the tiled LU factorization *without
    /// pivoting* of an `n × n`-tile matrix (extension; see DESIGN.md §9).
    ///
    /// Per step `k`: `GETRF(k)`, then the row panel (`LuTrsmRow`), the
    /// column panel (`LuTrsmCol`), then the `(n-1-k)²` trailing `LuGemm`
    /// updates.
    pub fn lu(n: usize) -> TaskGraph {
        let mut coords = Vec::with_capacity(Kernel::total_lu_tasks(n));
        for k in 0..n as u32 {
            coords.push(TaskCoords::Getrf { k });
            for j in (k + 1)..n as u32 {
                coords.push(TaskCoords::LuTrsmRow { k, j });
            }
            for i in (k + 1)..n as u32 {
                coords.push(TaskCoords::LuTrsmCol { k, i });
            }
            for i in (k + 1)..n as u32 {
                for j in (k + 1)..n as u32 {
                    coords.push(TaskCoords::LuGemm { k, i, j });
                }
            }
        }
        Self::from_submission_order(n, coords)
    }

    /// Build the task graph of the tiled QR factorization (flat-tree
    /// elimination, as in PLASMA's default) of an `n × n`-tile matrix
    /// (extension; see DESIGN.md §9).
    ///
    /// Per step `k`: `GEQRT(k)`, the `ORMQR` row applications, then for
    /// each sub-diagonal row `i` a `TSQRT(k, i)` followed by its row of
    /// `TSMQR` applications — the serial TSQRT chain is what makes the QR
    /// critical path longer than Cholesky's.
    pub fn qr(n: usize) -> TaskGraph {
        let mut coords = Vec::with_capacity(Kernel::total_qr_tasks(n));
        for k in 0..n as u32 {
            coords.push(TaskCoords::Geqrt { k });
            for j in (k + 1)..n as u32 {
                coords.push(TaskCoords::Ormqr { k, j });
            }
            for i in (k + 1)..n as u32 {
                coords.push(TaskCoords::Tsqrt { k, i });
                for j in (k + 1)..n as u32 {
                    coords.push(TaskCoords::Tsmqr { k, i, j });
                }
            }
        }
        Self::from_submission_order(n, coords)
    }

    /// Build a graph from an explicit submission order of tasks, deriving
    /// dependencies from data accesses. Exposed so tests can build custom
    /// micro-DAGs with the same machinery.
    pub fn from_submission_order(n: usize, coords: Vec<TaskCoords>) -> TaskGraph {
        let tasks: Vec<Task> = coords
            .iter()
            .enumerate()
            .map(|(idx, &c)| Task {
                id: TaskId(idx as u32),
                coords: c,
            })
            .collect();

        let mut by_coords = HashMap::with_capacity(tasks.len());
        for t in &tasks {
            let prior = by_coords.insert(t.coords, t.id);
            assert!(prior.is_none(), "duplicate task {:?}", t.coords);
        }

        // Flatten every task's accesses once; dependency derivation below
        // and the engines' residency hooks both read from this arena.
        let mut accesses: Vec<Access> = Vec::new();
        let mut acc_off = Vec::with_capacity(tasks.len() + 1);
        acc_off.push(0u32);
        for t in &tasks {
            accesses.extend(t.coords.accesses());
            acc_off.push(accesses.len() as u32);
        }

        // Per-tile data hazard state.
        #[derive(Default, Clone)]
        struct TileState {
            last_writer: Option<TaskId>,
            readers_since_write: Vec<TaskId>,
        }
        let mut tile_state: HashMap<Tile, TileState> = HashMap::new();

        // Collect raw (from, to) pairs, then sort + dedup once and pack
        // both adjacency directions into CSR arenas.
        let mut edge_pairs: Vec<(TaskId, TaskId)> = Vec::new();
        for t in &tasks {
            for access in
                &accesses[acc_off[t.id.index()] as usize..acc_off[t.id.index() + 1] as usize]
            {
                let st = tile_state.entry(access.tile).or_default();
                if access.mode.is_write() {
                    // RAW/WAW on the previous writer.
                    if let Some(w) = st.last_writer {
                        if w != t.id {
                            edge_pairs.push((w, t.id));
                        }
                    }
                    // WAR on every reader since that write.
                    for &r in &st.readers_since_write {
                        if r != t.id {
                            edge_pairs.push((r, t.id));
                        }
                    }
                    st.last_writer = Some(t.id);
                    st.readers_since_write.clear();
                } else {
                    if let Some(w) = st.last_writer {
                        if w != t.id {
                            edge_pairs.push((w, t.id));
                        }
                    }
                    st.readers_since_write.push(t.id);
                }
            }
        }

        edge_pairs.sort_unstable();
        edge_pairs.dedup();
        let succs = CsrAdjacency::from_sorted_pairs(tasks.len(), &edge_pairs);
        for pair in &mut edge_pairs {
            *pair = (pair.1, pair.0);
        }
        edge_pairs.sort_unstable();
        let preds = CsrAdjacency::from_sorted_pairs(tasks.len(), &edge_pairs);

        TaskGraph {
            n,
            tasks,
            succs,
            preds,
            by_coords,
            accesses,
            acc_off,
        }
    }

    /// All data accesses of a task, from the precomputed arena — the
    /// allocation-free equivalent of [`TaskCoords::accesses`] for hot
    /// paths (the simulator reads this per (ready task × worker) pair).
    #[inline]
    pub fn accesses_of(&self, t: TaskId) -> &[Access] {
        &self.accesses[self.acc_off[t.index()] as usize..self.acc_off[t.index() + 1] as usize]
    }

    /// Matrix order in tiles.
    #[inline]
    pub fn n_tiles(&self) -> usize {
        self.n
    }

    /// Number of tasks.
    #[inline]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` iff the graph has no tasks (`n = 0`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// All tasks, in submission order.
    #[inline]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Look up a task by identifier.
    #[inline]
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// Look up a task by coordinates.
    #[inline]
    pub fn find(&self, coords: TaskCoords) -> Option<TaskId> {
        self.by_coords.get(&coords).copied()
    }

    /// Direct successors of a task.
    #[inline]
    pub fn successors(&self, id: TaskId) -> &[TaskId] {
        self.succs.row(id.index())
    }

    /// Direct predecessors of a task.
    #[inline]
    pub fn predecessors(&self, id: TaskId) -> &[TaskId] {
        self.preds.row(id.index())
    }

    /// In-degree of each task (used to seed ready queues).
    pub fn indegrees(&self) -> Vec<usize> {
        (0..self.len()).map(|i| self.preds.degree(i)).collect()
    }

    /// Total number of (deduplicated) edges.
    pub fn n_edges(&self) -> usize {
        self.succs.n_edges()
    }

    /// Iterate all edges `(from, to)`.
    pub fn edges(&self) -> impl Iterator<Item = (TaskId, TaskId)> + '_ {
        (0..self.len()).flat_map(|i| {
            self.succs
                .row(i)
                .iter()
                .map(move |&s| (TaskId(i as u32), s))
        })
    }

    /// Tasks with no predecessors.
    pub fn entry_tasks(&self) -> Vec<TaskId> {
        self.tasks
            .iter()
            .filter(|t| self.preds.degree(t.id.index()) == 0)
            .map(|t| t.id)
            .collect()
    }

    /// Tasks with no successors.
    pub fn exit_tasks(&self) -> Vec<TaskId> {
        self.tasks
            .iter()
            .filter(|t| self.succs.degree(t.id.index()) == 0)
            .map(|t| t.id)
            .collect()
    }

    /// Number of tasks of each kernel, indexed by [`Kernel::index`].
    pub fn kernel_counts(&self) -> [usize; Kernel::COUNT] {
        let mut counts = [0usize; Kernel::COUNT];
        for t in &self.tasks {
            counts[t.kernel().index()] += 1;
        }
        counts
    }

    /// A topological order of the tasks (Kahn's algorithm, stable with
    /// respect to submission order among simultaneously-ready tasks).
    ///
    /// # Panics
    /// Panics if the graph contains a cycle — impossible for graphs built by
    /// the data-driven constructor, which only ever adds backward-in-time
    /// edges.
    pub fn topo_order(&self) -> Vec<TaskId> {
        let mut indeg = self.indegrees();
        // A plain FIFO over dense ids preserves submission order because
        // edges always point forward in submission order.
        let mut queue: std::collections::VecDeque<TaskId> = self
            .tasks
            .iter()
            .filter(|t| indeg[t.id.index()] == 0)
            .map(|t| t.id)
            .collect();
        let mut order = Vec::with_capacity(self.len());
        while let Some(id) = queue.pop_front() {
            order.push(id);
            for &s in self.successors(id) {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    queue.push_back(s);
                }
            }
        }
        assert_eq!(order.len(), self.len(), "task graph contains a cycle");
        order
    }

    /// Bottom level of every task: the weight of the longest path from the
    /// task to an exit task, *including* the task's own duration.
    ///
    /// `duration` maps a task to the weight used for path lengths; the paper
    /// uses the fastest execution time of each task among the resources for
    /// the `dmdas` priorities and the critical-path bound (Sections III-C
    /// and V-A).
    pub fn bottom_levels(&self, mut duration: impl FnMut(TaskId) -> Time) -> Vec<Time> {
        // Hazard edges always point from a lower to a higher submission
        // id, so descending id order visits every successor before its
        // predecessors — no need to materialise a topological order (the
        // result is identical for any valid one).
        let mut bl = vec![Time::ZERO; self.len()];
        for idx in (0..self.len()).rev() {
            let id = TaskId(idx as u32);
            let tail = self
                .successors(id)
                .iter()
                .map(|s| bl[s.index()])
                .max()
                .unwrap_or(Time::ZERO);
            bl[idx] = duration(id) + tail;
        }
        bl
    }

    /// Length of the critical path under the given per-task durations:
    /// the largest bottom level over all tasks.
    pub fn critical_path(&self, duration: impl FnMut(TaskId) -> Time) -> Time {
        self.bottom_levels(duration)
            .into_iter()
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Depth (number of tasks on the longest chain ending at each task),
    /// 1 for entry tasks. Handy for layered trace rendering and tests.
    pub fn depths(&self) -> Vec<usize> {
        let order = self.topo_order();
        let mut depth = vec![0usize; self.len()];
        for &id in &order {
            let d = self
                .predecessors(id)
                .iter()
                .map(|p| depth[p.index()])
                .max()
                .unwrap_or(0);
            depth[id.index()] = d + 1;
        }
        depth
    }

    /// Render the graph in Graphviz DOT format with the paper's task names
    /// and one fill colour per kernel (Figure 1).
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        out.push_str("digraph cholesky {\n  rankdir=TB;\n  node [style=filled];\n");
        for t in &self.tasks {
            let color = match t.kernel() {
                Kernel::Potrf => "#e41a1c",
                Kernel::Trsm => "#377eb8",
                Kernel::Syrk => "#4daf4a",
                Kernel::Gemm => "#ff7f00",
                Kernel::Getrf => "#984ea3",
                Kernel::Geqrt => "#a65628",
                Kernel::Tsqrt => "#f781bf",
                Kernel::Ormqr => "#999999",
                Kernel::Tsmqr => "#ffff33",
            };
            let _ = writeln!(out, "  \"{}\" [fillcolor=\"{color}\"];", t.coords);
        }
        for (from, to) in self.edges() {
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\";",
                self.task(from).coords,
                self.task(to).coords
            );
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(g: &TaskGraph, a: TaskCoords, b: TaskCoords) -> bool {
        let (a, b) = (g.find(a).unwrap(), g.find(b).unwrap());
        g.successors(a).contains(&b)
    }

    #[test]
    fn figure1_graph_has_35_tasks() {
        let g = TaskGraph::cholesky(5);
        assert_eq!(g.len(), 35);
        assert_eq!(g.kernel_counts()[..4], [5, 10, 10, 10]);
        assert!(g.kernel_counts()[4..].iter().all(|&c| c == 0));
    }

    #[test]
    fn classic_dependencies_present() {
        let g = TaskGraph::cholesky(5);
        // POTRF(0) -> TRSM(1,0)
        assert!(edge(
            &g,
            TaskCoords::Potrf { k: 0 },
            TaskCoords::Trsm { k: 0, i: 1 }
        ));
        // TRSM(1,0) -> SYRK(1,0)
        assert!(edge(
            &g,
            TaskCoords::Trsm { k: 0, i: 1 },
            TaskCoords::Syrk { k: 0, j: 1 }
        ));
        // SYRK(1,0) -> POTRF(1)
        assert!(edge(
            &g,
            TaskCoords::Syrk { k: 0, j: 1 },
            TaskCoords::Potrf { k: 1 }
        ));
        // TRSM(2,0) and TRSM(1,0) feed GEMM(2,1,0)
        assert!(edge(
            &g,
            TaskCoords::Trsm { k: 0, i: 2 },
            TaskCoords::Gemm { k: 0, i: 2, j: 1 }
        ));
        assert!(edge(
            &g,
            TaskCoords::Trsm { k: 0, i: 1 },
            TaskCoords::Gemm { k: 0, i: 2, j: 1 }
        ));
        // GEMM(2,1,0) -> TRSM(2,1): update then solve of A[2][1]
        assert!(edge(
            &g,
            TaskCoords::Gemm { k: 0, i: 2, j: 1 },
            TaskCoords::Trsm { k: 1, i: 2 }
        ));
        // SYRK(2,0) -> SYRK(2,1): successive updates of A[2][2]
        assert!(edge(
            &g,
            TaskCoords::Syrk { k: 0, j: 2 },
            TaskCoords::Syrk { k: 1, j: 2 }
        ));
        // No bogus edge: POTRF(0) does not directly feed SYRK(1,0)
        assert!(!edge(
            &g,
            TaskCoords::Potrf { k: 0 },
            TaskCoords::Syrk { k: 0, j: 1 }
        ));
    }

    #[test]
    fn single_entry_single_exit() {
        for n in 1..=12 {
            let g = TaskGraph::cholesky(n);
            let entries = g.entry_tasks();
            let exits = g.exit_tasks();
            assert_eq!(entries.len(), 1, "n={n}");
            assert_eq!(g.task(entries[0]).coords, TaskCoords::Potrf { k: 0 });
            assert_eq!(exits.len(), 1, "n={n}");
            assert_eq!(
                g.task(exits[0]).coords,
                TaskCoords::Potrf { k: n as u32 - 1 }
            );
        }
    }

    #[test]
    fn topo_order_is_consistent() {
        let g = TaskGraph::cholesky(8);
        let order = g.topo_order();
        assert_eq!(order.len(), g.len());
        let mut pos = vec![usize::MAX; g.len()];
        for (p, id) in order.iter().enumerate() {
            pos[id.index()] = p;
        }
        for (from, to) in g.edges() {
            assert!(pos[from.index()] < pos[to.index()]);
        }
    }

    #[test]
    fn unit_critical_path_is_3n_minus_2() {
        // The POTRF -> TRSM -> SYRK -> POTRF ... chain the paper exploits for
        // the mixed bound has 3(n-1) + 1 tasks.
        for n in 1..=16 {
            let g = TaskGraph::cholesky(n);
            let cp = g.critical_path(|_| Time::from_millis(1));
            assert_eq!(cp, Time::from_millis(3 * n as u64 - 2), "n={n}");
        }
    }

    #[test]
    fn bottom_levels_decrease_along_edges() {
        let g = TaskGraph::cholesky(10);
        let bl = g.bottom_levels(|_| Time::from_millis(1));
        for (from, to) in g.edges() {
            assert!(bl[from.index()] > bl[to.index()]);
        }
    }

    #[test]
    fn depths_start_at_one() {
        let g = TaskGraph::cholesky(6);
        let d = g.depths();
        let entry = g.entry_tasks()[0];
        assert_eq!(d[entry.index()], 1);
        for (from, to) in g.edges() {
            assert!(d[to.index()] > d[from.index()]);
        }
    }

    #[test]
    fn edge_count_grows_like_n_cubed() {
        // Sanity envelope rather than an exact closed form: the GEMM count
        // dominates and each GEMM has >= 3 incident input edges.
        let g = TaskGraph::cholesky(10);
        assert!(g.n_edges() >= 3 * Kernel::Gemm.count_in_cholesky(10));
        assert!(g.n_edges() < 6 * g.len());
    }

    #[test]
    fn dot_output_contains_tasks_and_edges() {
        let g = TaskGraph::cholesky(3);
        let dot = g.to_dot();
        assert!(dot.contains("digraph cholesky"));
        assert!(dot.contains("\"POTRF_0\""));
        assert!(dot.contains("\"POTRF_0\" -> \"TRSM_1_0\""));
        assert!(dot.contains("\"GEMM_2_1_0\""));
    }

    #[test]
    fn lu_graph_structure() {
        for n in 1..=8usize {
            let g = TaskGraph::lu(n);
            assert_eq!(g.len(), Kernel::total_lu_tasks(n), "n={n}");
            assert_eq!(g.entry_tasks().len(), 1, "n={n}");
            assert_eq!(
                g.task(g.entry_tasks()[0]).coords,
                TaskCoords::Getrf { k: 0 }
            );
            // Exit: the last GETRF.
            let exits = g.exit_tasks();
            assert_eq!(exits.len(), 1, "n={n}");
            assert_eq!(
                g.task(exits[0]).coords,
                TaskCoords::Getrf { k: n as u32 - 1 }
            );
            // Acyclic with a full topological order.
            assert_eq!(g.topo_order().len(), g.len());
        }
        // Classic LU dependencies at n = 3.
        let g = TaskGraph::lu(3);
        let e = |a: TaskCoords, b: TaskCoords| {
            g.successors(g.find(a).unwrap())
                .contains(&g.find(b).unwrap())
        };
        assert!(e(
            TaskCoords::Getrf { k: 0 },
            TaskCoords::LuTrsmRow { k: 0, j: 1 }
        ));
        assert!(e(
            TaskCoords::Getrf { k: 0 },
            TaskCoords::LuTrsmCol { k: 0, i: 2 }
        ));
        assert!(e(
            TaskCoords::LuTrsmRow { k: 0, j: 1 },
            TaskCoords::LuGemm { k: 0, i: 1, j: 1 }
        ));
        assert!(e(
            TaskCoords::LuGemm { k: 0, i: 1, j: 1 },
            TaskCoords::Getrf { k: 1 }
        ));
    }

    #[test]
    fn qr_graph_structure() {
        for n in 1..=8usize {
            let g = TaskGraph::qr(n);
            assert_eq!(g.len(), Kernel::total_qr_tasks(n), "n={n}");
            assert_eq!(g.entry_tasks().len(), 1, "n={n}");
            assert_eq!(g.topo_order().len(), g.len());
        }
        let g = TaskGraph::qr(3);
        let e = |a: TaskCoords, b: TaskCoords| {
            g.successors(g.find(a).unwrap())
                .contains(&g.find(b).unwrap())
        };
        // GEQRT(0) gates both its ORMQRs and the first TSQRT (RW chain on
        // the diagonal tile).
        assert!(e(
            TaskCoords::Geqrt { k: 0 },
            TaskCoords::Ormqr { k: 0, j: 1 }
        ));
        assert!(e(
            TaskCoords::Geqrt { k: 0 },
            TaskCoords::Tsqrt { k: 0, i: 1 }
        ));
        // TSQRTs of one step serialise on the diagonal tile.
        assert!(e(
            TaskCoords::Tsqrt { k: 0, i: 1 },
            TaskCoords::Tsqrt { k: 0, i: 2 }
        ));
        // TSMQR needs its TSQRT's reflectors.
        assert!(e(
            TaskCoords::Tsqrt { k: 0, i: 1 },
            TaskCoords::Tsmqr { k: 0, i: 1, j: 1 }
        ));
        // TSMQRs on the same row tile A[k][j] serialise across i.
        assert!(e(
            TaskCoords::Tsmqr { k: 0, i: 1, j: 1 },
            TaskCoords::Tsmqr { k: 0, i: 2, j: 1 }
        ));
    }

    #[test]
    fn qr_critical_path_longer_than_cholesky() {
        // The serial TSQRT chain makes QR's unit-duration critical path
        // strictly longer than Cholesky's 3n - 2 for n >= 3.
        for n in 3..=8usize {
            let qr = TaskGraph::qr(n).critical_path(|_| Time::from_millis(1));
            let chol = TaskGraph::cholesky(n).critical_path(|_| Time::from_millis(1));
            assert!(qr > chol, "n={n}: qr {qr} chol {chol}");
        }
    }

    #[test]
    fn csr_rows_are_sorted_dedup_and_mirror_each_other() {
        let g = TaskGraph::cholesky(8);
        let mut mirror = 0usize;
        for t in g.tasks() {
            let ss = g.successors(t.id);
            assert!(ss.windows(2).all(|w| w[0] < w[1]), "row not sorted/dedup");
            let ps = g.predecessors(t.id);
            assert!(ps.windows(2).all(|w| w[0] < w[1]), "row not sorted/dedup");
            for &s in ss {
                assert!(g.predecessors(s).contains(&t.id));
                mirror += 1;
            }
        }
        assert_eq!(mirror, g.n_edges());
        assert_eq!(
            g.indegrees().iter().sum::<usize>(),
            g.n_edges(),
            "pred arena and succ arena must store the same edge set"
        );
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let g0 = TaskGraph::cholesky(0);
        assert!(g0.is_empty());
        assert_eq!(g0.critical_path(|_| Time::from_millis(1)), Time::ZERO);
        let g1 = TaskGraph::cholesky(1);
        assert_eq!(g1.len(), 1);
        assert_eq!(g1.n_edges(), 0);
    }
}
