//! The shared execution core.
//!
//! The discrete-event simulator (`hetchol-sim`) and the real threaded
//! runtime (`hetchol-rt`) drive the same scheduling machinery: indegree
//! dependency tracking, per-worker queues with the `dmda`/`dmdas`
//! FIFO-versus-priority insertion discipline, the queue-availability
//! estimate behind [`ExecutionView::worker_available_at`], and trace
//! recording. This module holds that machinery once; the engines are thin
//! drivers that differ only in how time advances (simulated clock versus
//! wall clock) and in their data model (tile residency and PCI transfers
//! versus shared memory).
//!
//! The three components:
//!
//! * [`DepTracker`] — per-task indegrees plus a release API
//!   (`release(task) -> newly ready successors`);
//! * [`WorkerQueues`] — per-worker task queues, queued-work accounting and
//!   the availability estimate, with [`dispatch`] pushing one ready task
//!   through a [`Scheduler`] into the right queue;
//! * [`TraceRecorder`] — the event sink both engines feed, producing the
//!   common [`Trace`].

use crate::dag::TaskGraph;
use crate::fault::FaultEvent;
use crate::obs::{ObsReport, ObsSink};
use crate::platform::WorkerId;
use crate::scheduler::{ExecutionView, SchedContext, Scheduler};
use crate::task::TaskId;
use crate::time::Time;
use crate::trace::{QueueEvent, Trace, TraceEvent, TransferEvent};

/// Indegree-based readiness tracking over a [`TaskGraph`].
///
/// Seed the engine with [`DepTracker::initial_ready`], then call
/// [`DepTracker::release`] each time a task completes; it returns the
/// successors that just became ready, in successor order (ascending
/// [`TaskId`], which is submission order).
#[derive(Clone, Debug)]
pub struct DepTracker {
    /// Unsatisfied predecessor count per task.
    indeg: Vec<usize>,
    /// Guards against double release of a task (an engine bug).
    released: Vec<bool>,
    /// Tasks not yet released.
    remaining: usize,
}

impl DepTracker {
    /// Start tracking `graph` with all tasks unexecuted.
    pub fn new(graph: &TaskGraph) -> DepTracker {
        DepTracker {
            indeg: graph.indegrees(),
            released: vec![false; graph.len()],
            remaining: graph.len(),
        }
    }

    /// Tasks ready before anything has run (the graph's entry tasks), in
    /// submission order.
    pub fn initial_ready(&self) -> Vec<TaskId> {
        self.indeg
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == 0)
            .map(|(i, _)| TaskId(i as u32))
            .collect()
    }

    /// Record that `task` completed and return the successors whose last
    /// unsatisfied dependency it was, in ascending id order.
    ///
    /// # Panics
    /// Panics if `task` is released twice or still has unsatisfied
    /// predecessors — both are engine bugs, not data-dependent conditions.
    pub fn release(&mut self, graph: &TaskGraph, task: TaskId) -> Vec<TaskId> {
        assert!(
            !std::mem::replace(&mut self.released[task.index()], true),
            "{task} released twice"
        );
        assert_eq!(
            self.indeg[task.index()],
            0,
            "{task} released with unsatisfied dependencies"
        );
        self.remaining -= 1;
        let mut newly_ready = Vec::new();
        for &s in graph.successors(task) {
            self.indeg[s.index()] -= 1;
            if self.indeg[s.index()] == 0 {
                newly_ready.push(s);
            }
        }
        newly_ready
    }

    /// Number of tasks not yet released.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// `true` once every task has been released.
    #[inline]
    pub fn is_done(&self) -> bool {
        self.remaining == 0
    }
}

/// One entry of a worker queue.
#[derive(Copy, Clone, Debug)]
pub struct QueueEntry {
    /// The queued task.
    pub task: TaskId,
    /// Scheduler priority (higher runs earlier under sorted queues).
    pub prio: i64,
    /// Global enqueue sequence number: FIFO tie-break among equal
    /// priorities, and the FIFO order itself for unsorted queues.
    pub seq: u64,
    /// When the task's prefetched inputs are all resident at the worker's
    /// memory node (equals enqueue time when there is nothing to move).
    pub data_ready: Time,
    /// Nominal execution time on the assigned worker, per the profile.
    /// Carried so dequeue can return it to the availability accounting
    /// without a second profile lookup.
    pub exec_estimate: Time,
}

/// Per-worker task queues with the queued-work availability estimate.
///
/// Queues are FIFO, or kept sorted by `(-priority, seq)` when the
/// scheduler asks for sorted queues — the `dmda` versus `dmdas`
/// distinction of the paper (Section V-A). The availability estimate for
/// a worker is *end of its running task* (clamped to now) *plus the
/// nominal work already queued on it*, which is exactly what the
/// completion-time heuristics consume via
/// [`ExecutionView::worker_available_at`].
#[derive(Clone, Debug)]
pub struct WorkerQueues {
    queues: Vec<Vec<QueueEntry>>,
    /// Sum of nominal execution times of queued tasks, per worker.
    queued_exec: Vec<Time>,
    busy: Vec<bool>,
    /// (Estimated) end of the running task; meaningful while busy.
    busy_until: Vec<Time>,
    seq: u64,
}

impl WorkerQueues {
    /// Empty queues for `n_workers` workers.
    pub fn new(n_workers: usize) -> WorkerQueues {
        WorkerQueues {
            queues: vec![Vec::new(); n_workers],
            queued_exec: vec![Time::ZERO; n_workers],
            busy: vec![false; n_workers],
            busy_until: vec![Time::ZERO; n_workers],
            seq: 0,
        }
    }

    /// Number of workers.
    #[inline]
    pub fn n_workers(&self) -> usize {
        self.queues.len()
    }

    /// Earliest estimated time worker `w` could start a task appended now.
    #[inline]
    pub fn worker_available_at(&self, w: WorkerId, now: Time) -> Time {
        let base = if self.busy[w] {
            self.busy_until[w].max(now)
        } else {
            now
        };
        base + self.queued_exec[w]
    }

    /// The availability estimate of every worker at `now`.
    pub fn availability(&self, now: Time) -> Vec<Time> {
        (0..self.n_workers())
            .map(|w| self.worker_available_at(w, now))
            .collect()
    }

    /// Append `task` to worker `w`'s queue — at the back for FIFO, or at
    /// its `(-prio, seq)` rank for sorted queues. Returns the global
    /// enqueue sequence number assigned to the entry.
    pub fn enqueue(
        &mut self,
        w: WorkerId,
        task: TaskId,
        prio: i64,
        data_ready: Time,
        exec_estimate: Time,
        sorted: bool,
    ) -> u64 {
        let entry = QueueEntry {
            task,
            prio,
            seq: self.seq,
            data_ready,
            exec_estimate,
        };
        self.seq += 1;
        self.queued_exec[w] += exec_estimate;
        let queue = &mut self.queues[w];
        if sorted {
            // Highest priority first; FIFO among equals.
            let pos = queue.partition_point(|q| (-q.prio, q.seq) <= (-entry.prio, entry.seq));
            queue.insert(pos, entry);
        } else {
            queue.push(entry);
        }
        entry.seq
    }

    /// Remove and return the first entry of worker `w`'s queue that
    /// `may_start` admits (the schedule-injection gate: a worker may hold
    /// for its planned-next task instead of backfilling). Returns `None`
    /// when the queue is empty or every entry is gated.
    ///
    /// The dequeued entry's nominal execution time is subtracted from the
    /// worker's queued-work estimate.
    pub fn pop_startable(
        &mut self,
        w: WorkerId,
        may_start: impl FnMut(TaskId) -> bool,
    ) -> Option<QueueEntry> {
        self.pop_startable_indexed(w, may_start).map(|(e, _)| e)
    }

    /// Like [`WorkerQueues::pop_startable`], additionally returning how
    /// many gated entries ahead of the dequeued one were bypassed — a
    /// nonzero count is a *backfill* start, which the observability layer
    /// counts per worker.
    pub fn pop_startable_indexed(
        &mut self,
        w: WorkerId,
        mut may_start: impl FnMut(TaskId) -> bool,
    ) -> Option<(QueueEntry, usize)> {
        let pos = (0..self.queues[w].len()).find(|&i| may_start(self.queues[w][i].task))?;
        let entry = self.queues[w].remove(pos);
        self.queued_exec[w] = self.queued_exec[w].saturating_sub(entry.exec_estimate);
        Some((entry, pos))
    }

    /// Current number of queued entries on worker `w` (a gauge the
    /// observability layer samples at enqueue time).
    #[inline]
    pub fn depth(&self, w: WorkerId) -> usize {
        self.queues[w].len()
    }

    /// Mark worker `w` busy until (an estimate of) `until`.
    #[inline]
    pub fn set_busy_until(&mut self, w: WorkerId, until: Time) {
        self.busy[w] = true;
        self.busy_until[w] = until;
    }

    /// Mark worker `w` idle.
    #[inline]
    pub fn set_idle(&mut self, w: WorkerId) {
        self.busy[w] = false;
    }

    /// Whether worker `w` is currently running a task.
    #[inline]
    pub fn is_busy(&self, w: WorkerId) -> bool {
        self.busy[w]
    }

    /// Whether worker `w` has queued tasks.
    #[inline]
    pub fn has_queued(&self, w: WorkerId) -> bool {
        !self.queues[w].is_empty()
    }

    /// Remove and return every queued entry of worker `w`, zeroing its
    /// queued-work estimate — the recovery path when `w` dies and its
    /// owned tasks must be re-dispatched onto the survivors.
    pub fn drain_worker(&mut self, w: WorkerId) -> Vec<QueueEntry> {
        self.queued_exec[w] = Time::ZERO;
        std::mem::take(&mut self.queues[w])
    }
}

/// Engine-specific hooks consulted while dispatching a ready task.
///
/// The runtime's single shared memory node needs neither hook (the
/// defaults model free, instantaneous data); the simulator estimates and
/// performs PCI prefetches through them.
pub trait EngineHooks {
    /// Estimated extra time to bring `task`'s missing inputs to worker
    /// `w`'s memory node (consulted by completion-time heuristics).
    fn transfer_estimate(&self, _task: TaskId, _w: WorkerId) -> Time {
        Time::ZERO
    }

    /// Start moving `task`'s missing inputs toward worker `w`, returning
    /// when they will all be resident. Called once, after assignment.
    fn data_ready(&mut self, _task: TaskId, _w: WorkerId, now: Time) -> Time {
        now
    }
}

/// The no-op hooks of a single-memory-node engine.
pub struct SingleNode;

impl EngineHooks for SingleNode {}

/// The [`ExecutionView`] both engines present to schedulers: current
/// time, the [`WorkerQueues`] availability estimate frozen at dispatch
/// time, and the engine's transfer estimator.
pub struct QueueView<'a, H: EngineHooks + ?Sized> {
    now: Time,
    avail: Vec<Time>,
    hooks: &'a H,
}

impl<'a, H: EngineHooks + ?Sized> QueueView<'a, H> {
    /// Snapshot `queues`' availability at `now`.
    pub fn new(queues: &WorkerQueues, now: Time, hooks: &'a H) -> QueueView<'a, H> {
        QueueView {
            now,
            avail: queues.availability(now),
            hooks,
        }
    }

    /// A view over a pre-built availability vector (the resilient
    /// dispatcher patches dead workers to a far-future sentinel before
    /// handing the view to the scheduler).
    pub fn with_availability(now: Time, avail: Vec<Time>, hooks: &'a H) -> QueueView<'a, H> {
        QueueView { now, avail, hooks }
    }
}

impl<H: EngineHooks + ?Sized> ExecutionView for QueueView<'_, H> {
    fn now(&self) -> Time {
        self.now
    }
    fn worker_available_at(&self, w: WorkerId) -> Time {
        self.avail[w]
    }
    fn transfer_estimate(&self, task: TaskId, w: WorkerId) -> Time {
        self.hooks.transfer_estimate(task, w)
    }
}

/// Push one ready task through the scheduler into a worker queue: build
/// the [`QueueView`], let the scheduler assign a worker, start the data
/// prefetch via [`EngineHooks::data_ready`], enqueue under the
/// scheduler's queue discipline, and log a [`QueueEvent`] so the linter
/// can audit the decision post hoc. Returns the chosen worker.
pub fn dispatch<H: EngineHooks + ?Sized>(
    task: TaskId,
    now: Time,
    ctx: &SchedContext,
    scheduler: &mut dyn Scheduler,
    queues: &mut WorkerQueues,
    recorder: &mut TraceRecorder,
    hooks: &mut H,
) -> WorkerId {
    dispatch_inner(
        task,
        now,
        ctx,
        scheduler,
        queues,
        recorder,
        hooks,
        None,
        Time::ZERO,
    )
    .expect("dispatch without a death mask always assigns")
}

/// Availability sentinel for dead workers: far enough in the future that
/// completion-time heuristics never prefer a dead worker, but small enough
/// that the strict `Time` additions inside schedulers (availability +
/// transfer + execution estimates) cannot overflow, which `Time::MAX`
/// would.
const DEAD_AVAILABILITY: Time = Time::from_secs(86_400 * 365);

/// [`dispatch`] with recovery inputs: workers flagged in `dead` are never
/// assigned (their availability is patched to a far-future sentinel, and
/// an assignment to one — e.g. by a static scheduler unaware of deaths —
/// is overridden to the best live worker), and `extra_delay` postpones the
/// entry's data-ready instant (the retry backoff). Returns `None` iff no
/// live worker exists.
#[allow(clippy::too_many_arguments)]
pub fn dispatch_resilient<H: EngineHooks + ?Sized>(
    task: TaskId,
    now: Time,
    ctx: &SchedContext,
    scheduler: &mut dyn Scheduler,
    queues: &mut WorkerQueues,
    recorder: &mut TraceRecorder,
    hooks: &mut H,
    dead: &[bool],
    extra_delay: Time,
) -> Option<WorkerId> {
    dispatch_inner(
        task,
        now,
        ctx,
        scheduler,
        queues,
        recorder,
        hooks,
        Some(dead),
        extra_delay,
    )
}

#[allow(clippy::too_many_arguments)]
fn dispatch_inner<H: EngineHooks + ?Sized>(
    task: TaskId,
    now: Time,
    ctx: &SchedContext,
    scheduler: &mut dyn Scheduler,
    queues: &mut WorkerQueues,
    recorder: &mut TraceRecorder,
    hooks: &mut H,
    dead: Option<&[bool]>,
    extra_delay: Time,
) -> Option<WorkerId> {
    let is_dead = |w: WorkerId| dead.is_some_and(|d| d.get(w).copied().unwrap_or(false));
    let mut w = {
        let mut avail = queues.availability(now);
        if dead.is_some() {
            for (v, a) in avail.iter_mut().enumerate() {
                if is_dead(v) {
                    *a = DEAD_AVAILABILITY;
                }
            }
        }
        let view = QueueView::with_availability(now, avail, hooks);
        scheduler.assign(task, ctx, &view)
    };
    assert!(
        w < queues.n_workers(),
        "scheduler assigned {task} to nonexistent worker {w}"
    );
    if is_dead(w) {
        // The scheduler ignored the sentinel (e.g. a static mapping).
        // Recovery overrides it: the live worker with the earliest
        // estimated completion takes the task.
        w = (0..queues.n_workers())
            .filter(|&v| !is_dead(v))
            .min_by_key(|&v| {
                (
                    queues
                        .worker_available_at(v, now)
                        .saturating_add(hooks.transfer_estimate(task, v)),
                    v,
                )
            })?;
    }
    let prio = scheduler.priority(task, ctx);
    let exec_estimate = ctx
        .profile
        .time(ctx.graph.task(task).kernel(), ctx.platform.class_of(w));
    let data_ready = hooks
        .data_ready(task, w, now)
        .max(now.saturating_add(extra_delay));
    let seq = queues.enqueue(
        w,
        task,
        prio,
        data_ready,
        exec_estimate,
        scheduler.sorted_queues(),
    );
    let event = QueueEvent {
        worker: w,
        task,
        prio,
        seq,
        at: now,
        data_ready,
    };
    recorder
        .obs
        .on_dispatch(ctx.graph.task(task).kernel(), &event, queues.depth(w));
    recorder.record_enqueue(event);
    Some(w)
}

/// Event sink shared by the engines, producing the common [`Trace`] and,
/// when an [`ObsSink`] was handed in at construction, the structured
/// [`ObsReport`].
#[derive(Debug)]
pub struct TraceRecorder {
    n_workers: usize,
    events: Vec<TraceEvent>,
    transfers: Vec<TransferEvent>,
    queue_events: Vec<QueueEvent>,
    fault_events: Vec<FaultEvent>,
    obs: ObsSink,
}

impl TraceRecorder {
    /// Empty recorder for `n_workers` workers, sized for `n_tasks` events,
    /// with observability disabled.
    pub fn new(n_workers: usize, n_tasks: usize) -> TraceRecorder {
        TraceRecorder::with_obs(n_workers, n_tasks, ObsSink::disabled())
    }

    /// Empty recorder feeding `obs` alongside the plain trace.
    pub fn with_obs(n_workers: usize, n_tasks: usize, mut obs: ObsSink) -> TraceRecorder {
        obs.prepare(n_workers, n_tasks);
        TraceRecorder {
            n_workers,
            events: Vec::with_capacity(n_tasks),
            transfers: Vec::new(),
            queue_events: Vec::with_capacity(n_tasks),
            fault_events: Vec::new(),
            obs,
        }
    }

    /// Append fault/recovery events (a resilient engine folds its
    /// [`crate::fault::FaultState`] log in before finishing).
    pub fn record_faults(&mut self, events: Vec<FaultEvent>) {
        self.fault_events.extend(events);
    }

    /// The observability sink, for engine-specific counters (condvar
    /// wakeups, backfill pops) that the shared core cannot see itself.
    #[inline]
    pub fn obs_mut(&mut self) -> &mut ObsSink {
        &mut self.obs
    }

    /// Record one dispatcher enqueue decision (called by [`dispatch`]).
    pub fn record_enqueue(&mut self, event: QueueEvent) {
        self.queue_events.push(event);
    }

    /// Record one completed task execution.
    pub fn record(
        &mut self,
        graph: &TaskGraph,
        worker: WorkerId,
        task: TaskId,
        start: Time,
        end: Time,
    ) {
        let kernel = graph.task(task).kernel();
        self.obs.on_exec(task, kernel, worker, start, end);
        self.events.push(TraceEvent {
            worker,
            task,
            kernel,
            start,
            end,
        });
    }

    /// The transfer-event sink (the simulator's link model appends here).
    #[inline]
    pub fn transfers_mut(&mut self) -> &mut Vec<TransferEvent> {
        &mut self.transfers
    }

    /// Number of recorded task events.
    #[inline]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no task events have been recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Latest recorded task end (zero when empty).
    pub fn makespan(&self) -> Time {
        self.events
            .iter()
            .map(|e| e.end)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Finalize into the common trace plus its makespan, discarding any
    /// observability record (see [`TraceRecorder::finish_with_obs`]).
    pub fn finish(self) -> (Trace, Time) {
        let (trace, makespan, _) = self.finish_with_obs();
        (trace, makespan)
    }

    /// Finalize into the common trace, its makespan, and the structured
    /// observability report (empty when the sink was disabled).
    pub fn finish_with_obs(self) -> (Trace, Time, ObsReport) {
        let makespan = self.makespan();
        let obs = self.obs.finish(self.n_workers, &self.transfers);
        (
            Trace {
                n_workers: self.n_workers,
                events: self.events,
                transfers: self.transfers,
                queue_events: self.queue_events,
                fault_events: self.fault_events,
            },
            makespan,
            obs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use crate::profiles::TimingProfile;
    use crate::scheduler::StaticView;

    #[test]
    fn dep_tracker_releases_cholesky_in_full() {
        let graph = TaskGraph::cholesky(4);
        let mut deps = DepTracker::new(&graph);
        assert_eq!(deps.initial_ready(), graph.entry_tasks());
        assert_eq!(deps.remaining(), graph.len());
        // Drain in topological order; count the ready transitions.
        let mut ready: Vec<TaskId> = deps.initial_ready();
        let mut seen = 0usize;
        while let Some(t) = ready.pop() {
            seen += 1;
            ready.extend(deps.release(&graph, t));
        }
        assert_eq!(seen, graph.len());
        assert!(deps.is_done());
    }

    #[test]
    #[should_panic(expected = "released twice")]
    fn dep_tracker_rejects_double_release() {
        let graph = TaskGraph::cholesky(2);
        let mut deps = DepTracker::new(&graph);
        let entry = graph.entry_tasks()[0];
        deps.release(&graph, entry);
        deps.release(&graph, entry);
    }

    #[test]
    #[should_panic(expected = "unsatisfied dependencies")]
    fn dep_tracker_rejects_premature_release() {
        let graph = TaskGraph::cholesky(2);
        let mut deps = DepTracker::new(&graph);
        let exit = graph.exit_tasks()[0];
        deps.release(&graph, exit);
    }

    #[test]
    fn sorted_queue_orders_by_priority_then_seq() {
        let mut q = WorkerQueues::new(1);
        let ms = Time::from_millis(1);
        q.enqueue(0, TaskId(0), 5, Time::ZERO, ms, true);
        q.enqueue(0, TaskId(1), 9, Time::ZERO, ms, true);
        q.enqueue(0, TaskId(2), 5, Time::ZERO, ms, true);
        q.enqueue(0, TaskId(3), 7, Time::ZERO, ms, true);
        let order: Vec<TaskId> =
            std::iter::from_fn(|| q.pop_startable(0, |_| true).map(|e| e.task)).collect();
        // 9 first, then 7, then the two 5s in enqueue order.
        assert_eq!(order, [TaskId(1), TaskId(3), TaskId(0), TaskId(2)]);
    }

    #[test]
    fn fifo_queue_preserves_enqueue_order() {
        let mut q = WorkerQueues::new(1);
        let ms = Time::from_millis(1);
        q.enqueue(0, TaskId(0), 5, Time::ZERO, ms, false);
        q.enqueue(0, TaskId(1), 9, Time::ZERO, ms, false);
        q.enqueue(0, TaskId(2), 1, Time::ZERO, ms, false);
        let order: Vec<TaskId> =
            std::iter::from_fn(|| q.pop_startable(0, |_| true).map(|e| e.task)).collect();
        assert_eq!(order, [TaskId(0), TaskId(1), TaskId(2)]);
    }

    #[test]
    fn availability_tracks_busy_and_queued_work() {
        let mut q = WorkerQueues::new(2);
        let now = Time::from_millis(10);
        assert_eq!(q.worker_available_at(0, now), now);
        q.enqueue(0, TaskId(0), 0, now, Time::from_millis(5), false);
        assert_eq!(q.worker_available_at(0, now), Time::from_millis(15));
        // Start the queued task: queued work moves into busy_until.
        let e = q.pop_startable(0, |_| true).unwrap();
        q.set_busy_until(0, now + e.exec_estimate);
        assert_eq!(q.worker_available_at(0, now), Time::from_millis(15));
        // A busy worker whose estimated end passed is available "now".
        let later = Time::from_millis(40);
        assert_eq!(q.worker_available_at(0, later), later);
        q.set_idle(0);
        assert!(!q.is_busy(0));
        // Worker 1 was never touched.
        assert_eq!(q.worker_available_at(1, now), now);
    }

    #[test]
    fn pop_startable_respects_gate() {
        let mut q = WorkerQueues::new(1);
        let ms = Time::from_millis(1);
        q.enqueue(0, TaskId(0), 0, Time::ZERO, ms, false);
        q.enqueue(0, TaskId(1), 0, Time::ZERO, ms, false);
        // Gate holds the head back: the second entry starts first.
        let e = q.pop_startable(0, |t| t != TaskId(0)).unwrap();
        assert_eq!(e.task, TaskId(1));
        // Everything gated: nothing starts, nothing is lost.
        assert!(q.pop_startable(0, |_| false).is_none());
        assert!(q.has_queued(0));
    }

    #[test]
    fn dispatch_assigns_and_enqueues() {
        struct ToWorkerOne;
        impl Scheduler for ToWorkerOne {
            fn name(&self) -> &str {
                "to-one"
            }
            fn assign(
                &mut self,
                _: TaskId,
                _: &SchedContext,
                view: &dyn ExecutionView,
            ) -> WorkerId {
                assert_eq!(view.transfer_estimate(TaskId(0), 0), Time::ZERO);
                1
            }
            fn priority(&self, task: TaskId, _: &SchedContext) -> i64 {
                task.0 as i64
            }
            fn sorted_queues(&self) -> bool {
                true
            }
        }
        let graph = TaskGraph::cholesky(2);
        let platform = Platform::homogeneous(2);
        let profile = TimingProfile::mirage_homogeneous();
        let ctx = SchedContext {
            graph: &graph,
            platform: &platform,
            profile: &profile,
        };
        let mut queues = WorkerQueues::new(2);
        let mut rec = TraceRecorder::new(2, graph.len());
        let entry = graph.entry_tasks()[0];
        let w = dispatch(
            entry,
            Time::ZERO,
            &ctx,
            &mut ToWorkerOne,
            &mut queues,
            &mut rec,
            &mut SingleNode,
        );
        assert_eq!(w, 1);
        assert!(queues.has_queued(1));
        assert!(!queues.has_queued(0));
        let e = q_pop(&mut queues, 1);
        assert_eq!(e.task, entry);
        assert_eq!(e.exec_estimate, profile.time(graph.task(entry).kernel(), 0));
        // The enqueue decision was logged with the queue's seq and prio.
        let (trace, _) = rec.finish();
        assert_eq!(trace.queue_events.len(), 1);
        let qe = trace.queue_events[0];
        assert_eq!(qe.worker, 1);
        assert_eq!(qe.task, entry);
        assert_eq!(qe.prio, entry.0 as i64);
        assert_eq!(qe.seq, 0);
    }

    fn q_pop(q: &mut WorkerQueues, w: WorkerId) -> QueueEntry {
        q.pop_startable(w, |_| true).expect("queued entry")
    }

    #[test]
    fn queue_view_freezes_availability() {
        let mut q = WorkerQueues::new(2);
        q.enqueue(0, TaskId(0), 0, Time::ZERO, Time::from_millis(3), false);
        let view = QueueView::new(&q, Time::from_millis(2), &SingleNode);
        assert_eq!(view.now(), Time::from_millis(2));
        assert_eq!(view.worker_available_at(0), Time::from_millis(5));
        assert_eq!(view.worker_available_at(1), Time::from_millis(2));
        // Same estimate the StaticView-based tests use.
        let stat = StaticView {
            now: Time::from_millis(2),
            available: vec![Time::from_millis(5), Time::from_millis(2)],
        };
        assert_eq!(stat.worker_available_at(0), view.worker_available_at(0));
    }

    #[test]
    fn trace_recorder_builds_trace() {
        let graph = TaskGraph::cholesky(2);
        let mut rec = TraceRecorder::new(2, graph.len());
        assert!(rec.is_empty());
        let t = graph.entry_tasks()[0];
        rec.record(&graph, 0, t, Time::ZERO, Time::from_millis(4));
        rec.record(
            &graph,
            1,
            TaskId(1),
            Time::from_millis(1),
            Time::from_millis(9),
        );
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.makespan(), Time::from_millis(9));
        rec.transfers_mut().push(TransferEvent {
            tile: crate::task::Tile { row: 0, col: 0 },
            from: 0,
            to: 1,
            start: Time::ZERO,
            end: Time::from_millis(1),
        });
        let (trace, makespan) = rec.finish();
        assert_eq!(makespan, Time::from_millis(9));
        assert_eq!(trace.n_workers, 2);
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.transfers.len(), 1);
    }
}
