//! The shared execution core, laid out data-oriented (DESIGN.md §13).
//!
//! The discrete-event simulator (`hetchol-sim`) and the real threaded
//! runtime (`hetchol-rt`) drive the same scheduling machinery: indegree
//! dependency tracking, per-worker queues with the `dmda`/`dmdas`
//! FIFO-versus-priority insertion discipline, the queue-availability
//! estimate behind [`ExecutionView::worker_available_at`], and trace
//! recording. This module holds that machinery once; the engines are thin
//! drivers that differ only in how time advances (simulated clock versus
//! wall clock) and in their data model (tile residency and PCI transfers
//! versus shared memory).
//!
//! The hot-path state lives in flat structure-of-arrays vectors indexed by
//! the `u32` inside [`TaskId`] — the typed handle — so a steady-state
//! dispatch/retire cycle performs no heap allocation:
//!
//! * [`DepTracker`] — the task arena: per-task dependency counters,
//!   lifecycle [`TaskPhase`] bytes and assigned-worker ids, with a release
//!   API ([`DepTracker::release_into`]) that writes newly ready successors
//!   into a caller-reused scratch vector;
//! * [`WorkerQueues`] — per-worker ring-buffer queues ([`VecDeque`], so
//!   capacity is reused and a head pop is O(1)), queued-work accounting
//!   and the availability estimate, with [`dispatch`] pushing one ready
//!   task through a [`Scheduler`] into the right queue via a reused
//!   availability scratch buffer;
//! * [`TraceRecorder`] — the event sink both engines feed, producing the
//!   common [`Trace`].

use crate::dag::TaskGraph;
use crate::fault::FaultEvent;
use crate::obs::{ObsReport, ObsSink};
use crate::platform::WorkerId;
use crate::scheduler::{ExecutionView, SchedContext, Scheduler};
use crate::task::TaskId;
use crate::time::Time;
use crate::trace::{QueueEvent, Trace, TraceEvent, TransferEvent};
use std::collections::VecDeque;

/// Sentinel in the arena's assigned-worker column: no worker yet.
const NO_WORKER: u32 = u32::MAX;

/// Lifecycle phase of a task — one byte per task in the arena.
///
/// Phases move forward through `Waiting → Ready → Queued → Running →
/// Retired`, except under fault recovery, where a failed attempt or a dead
/// worker's drained queue drops a task back to `Queued` on re-dispatch.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum TaskPhase {
    /// Unsatisfied dependencies remain.
    Waiting = 0,
    /// Every dependency completed; not yet through the dispatcher.
    Ready = 1,
    /// Assigned to a worker, sitting in its queue.
    Queued = 2,
    /// Popped by its worker; executing (or in flight, in the simulator).
    Running = 3,
    /// Completed and released.
    Retired = 4,
}

/// Indegree-based readiness tracking over a [`TaskGraph`], stored as a
/// flat structure-of-arrays task arena addressed by [`TaskId`].
///
/// Seed the engine with [`DepTracker::initial_ready`], then call
/// [`DepTracker::release_into`] each time a task completes; it writes the
/// successors that just became ready, in successor order (ascending
/// [`TaskId`], which is submission order), into a scratch vector the
/// engine reuses across calls — the per-release allocation of the old
/// tracker is gone. The engines also feed the arena's phase and
/// assigned-worker columns ([`DepTracker::note_queued`],
/// [`DepTracker::note_started`]), which double as cheap engine-bug
/// tripwires (double release, release with unsatisfied dependencies).
#[derive(Clone, Debug)]
pub struct DepTracker {
    /// Unsatisfied predecessor count per task (SoA column, `u32`).
    dep_count: Vec<u32>,
    /// Lifecycle phase per task (SoA column, one byte).
    phase: Vec<TaskPhase>,
    /// Assigned worker per task (SoA column; [`NO_WORKER`] until queued).
    assigned: Vec<u32>,
    /// Tasks not yet released.
    remaining: u32,
}

impl DepTracker {
    /// Start tracking `graph` with all tasks unexecuted.
    pub fn new(graph: &TaskGraph) -> DepTracker {
        let dep_count: Vec<u32> = graph.indegrees().iter().map(|&d| d as u32).collect();
        let phase = dep_count
            .iter()
            .map(|&d| {
                if d == 0 {
                    TaskPhase::Ready
                } else {
                    TaskPhase::Waiting
                }
            })
            .collect();
        DepTracker {
            phase,
            assigned: vec![NO_WORKER; dep_count.len()],
            remaining: dep_count.len() as u32,
            dep_count,
        }
    }

    /// Tasks ready before anything has run (the graph's entry tasks), in
    /// submission order.
    pub fn initial_ready(&self) -> Vec<TaskId> {
        self.dep_count
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == 0)
            .map(|(i, _)| TaskId(i as u32))
            .collect()
    }

    /// Record that `task` completed and append the successors whose last
    /// unsatisfied dependency it was to `out` (cleared first), in
    /// ascending id order. The caller keeps `out` across calls, so the
    /// steady state allocates nothing.
    ///
    /// # Panics
    /// Panics if `task` is released twice or still has unsatisfied
    /// predecessors — both are engine bugs, not data-dependent conditions.
    pub fn release_into(&mut self, graph: &TaskGraph, task: TaskId, out: &mut Vec<TaskId>) {
        out.clear();
        let i = task.index();
        assert!(self.phase[i] != TaskPhase::Retired, "{task} released twice");
        assert_eq!(
            self.dep_count[i], 0,
            "{task} released with unsatisfied dependencies"
        );
        self.phase[i] = TaskPhase::Retired;
        self.remaining -= 1;
        for &s in graph.successors(task) {
            let j = s.index();
            self.dep_count[j] -= 1;
            if self.dep_count[j] == 0 {
                self.phase[j] = TaskPhase::Ready;
                out.push(s);
            }
        }
    }

    /// Allocating convenience wrapper over [`DepTracker::release_into`]
    /// (tests and cold paths; the engines reuse a scratch vector instead).
    pub fn release(&mut self, graph: &TaskGraph, task: TaskId) -> Vec<TaskId> {
        let mut out = Vec::new();
        self.release_into(graph, task, &mut out);
        out
    }

    /// Record in the arena that `task` was assigned to `worker`'s queue
    /// (called by the engines right after [`dispatch`] lands the task; a
    /// retried or re-queued task may be noted more than once).
    #[inline]
    pub fn note_queued(&mut self, task: TaskId, worker: WorkerId) {
        self.phase[task.index()] = TaskPhase::Queued;
        self.assigned[task.index()] = worker as u32;
    }

    /// Record in the arena that `task`'s worker popped it and started the
    /// attempt.
    #[inline]
    pub fn note_started(&mut self, task: TaskId) {
        self.phase[task.index()] = TaskPhase::Running;
    }

    /// Current lifecycle phase of `task`.
    #[inline]
    pub fn phase(&self, task: TaskId) -> TaskPhase {
        self.phase[task.index()]
    }

    /// Worker `task` was last queued on, if it reached the dispatcher.
    #[inline]
    pub fn assigned_worker(&self, task: TaskId) -> Option<WorkerId> {
        match self.assigned[task.index()] {
            NO_WORKER => None,
            w => Some(w as WorkerId),
        }
    }

    /// Number of tasks not yet released.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.remaining as usize
    }

    /// `true` once every task has been released.
    #[inline]
    pub fn is_done(&self) -> bool {
        self.remaining == 0
    }
}

/// One entry of a worker queue.
#[derive(Copy, Clone, Debug)]
pub struct QueueEntry {
    /// The queued task.
    pub task: TaskId,
    /// Scheduler priority (higher runs earlier under sorted queues).
    pub prio: i64,
    /// Global enqueue sequence number: FIFO tie-break among equal
    /// priorities, and the FIFO order itself for unsorted queues.
    pub seq: u64,
    /// When the task's prefetched inputs are all resident at the worker's
    /// memory node (equals enqueue time when there is nothing to move).
    pub data_ready: Time,
    /// Nominal execution time on the assigned worker, per the profile.
    /// Carried so dequeue can return it to the availability accounting
    /// without a second profile lookup.
    pub exec_estimate: Time,
}

/// Per-worker task queues with the queued-work availability estimate.
///
/// Each queue is a ring buffer ([`VecDeque`]): the common pop — the head
/// entry, once the `may_start` gate admits it — is O(1) and never shifts
/// the remaining entries, and the buffer's capacity is reused across the
/// whole run. Queues are FIFO, or kept sorted by `(-priority, seq)` when
/// the scheduler asks for sorted queues — the `dmda` versus `dmdas`
/// distinction of the paper (Section V-A). The availability estimate for
/// a worker is *end of its running task* (clamped to now) *plus the
/// nominal work already queued on it*, which is exactly what the
/// completion-time heuristics consume via
/// [`ExecutionView::worker_available_at`].
#[derive(Clone, Debug)]
pub struct WorkerQueues {
    queues: Vec<VecDeque<QueueEntry>>,
    /// Per-worker availability inputs, packed as `(effective busy-until,
    /// queued nominal work)` so the completion-time scan touches one pair
    /// per worker. The first element is the running task's estimated end
    /// while busy and `Time::ZERO` when idle — `max(effective, now)`
    /// yields exactly the old `if busy { busy_until.max(now) } else
    /// { now }` in either state.
    avail_parts: Vec<(Time, Time)>,
    busy: Vec<bool>,
    seq: u64,
    /// Reused buffer behind [`dispatch`]'s availability snapshot, so the
    /// steady state performs no per-dispatch allocation.
    avail_scratch: Vec<Time>,
}

impl WorkerQueues {
    /// Empty queues for `n_workers` workers.
    pub fn new(n_workers: usize) -> WorkerQueues {
        WorkerQueues {
            queues: vec![VecDeque::with_capacity(32); n_workers],
            avail_parts: vec![(Time::ZERO, Time::ZERO); n_workers],
            busy: vec![false; n_workers],
            seq: 0,
            avail_scratch: Vec::with_capacity(n_workers),
        }
    }

    /// Number of workers.
    #[inline]
    pub fn n_workers(&self) -> usize {
        self.queues.len()
    }

    /// Earliest estimated time worker `w` could start a task appended now.
    #[inline]
    pub fn worker_available_at(&self, w: WorkerId, now: Time) -> Time {
        let (eff_until, queued) = self.avail_parts[w];
        eff_until.max(now) + queued
    }

    /// Write the availability estimate of every worker at `now` into
    /// `out` (cleared first). Reusing `out` across calls keeps the
    /// dispatch path allocation-free.
    pub fn fill_availability(&self, now: Time, out: &mut Vec<Time>) {
        out.clear();
        out.reserve(self.avail_parts.len());
        for w in 0..self.avail_parts.len() {
            out.push(self.worker_available_at(w, now));
        }
    }

    /// The availability estimate of every worker at `now`, freshly
    /// allocated (tests and cold paths; [`dispatch`] reuses a scratch
    /// buffer instead).
    pub fn availability(&self, now: Time) -> Vec<Time> {
        let mut out = Vec::new();
        self.fill_availability(now, &mut out);
        out
    }

    /// Append `task` to worker `w`'s queue — at the back for FIFO, or at
    /// its `(-prio, seq)` rank for sorted queues. Returns the global
    /// enqueue sequence number assigned to the entry.
    pub fn enqueue(
        &mut self,
        w: WorkerId,
        task: TaskId,
        prio: i64,
        data_ready: Time,
        exec_estimate: Time,
        sorted: bool,
    ) -> u64 {
        let entry = QueueEntry {
            task,
            prio,
            seq: self.seq,
            data_ready,
            exec_estimate,
        };
        self.seq += 1;
        self.avail_parts[w].1 += exec_estimate;
        let queue = &mut self.queues[w];
        if sorted {
            // Highest priority first; FIFO among equals.
            let pos = queue.partition_point(|q| (-q.prio, q.seq) <= (-entry.prio, entry.seq));
            queue.insert(pos, entry);
        } else {
            queue.push_back(entry);
        }
        entry.seq
    }

    /// Remove and return the first entry of worker `w`'s queue that
    /// `may_start` admits (the schedule-injection gate: a worker may hold
    /// for its planned-next task instead of backfilling). Returns `None`
    /// when the queue is empty or every entry is gated.
    ///
    /// The dequeued entry's nominal execution time is subtracted from the
    /// worker's queued-work estimate.
    pub fn pop_startable(
        &mut self,
        w: WorkerId,
        may_start: impl FnMut(TaskId) -> bool,
    ) -> Option<QueueEntry> {
        self.pop_startable_indexed(w, may_start).map(|(e, _)| e)
    }

    /// Like [`WorkerQueues::pop_startable`], additionally returning how
    /// many gated entries ahead of the dequeued one were bypassed — a
    /// nonzero count is a *backfill* start, which the observability layer
    /// counts per worker.
    ///
    /// The ungated common case pops the ring's head in O(1); a gated pop
    /// removes from the middle, shifting whichever side of the ring is
    /// shorter.
    pub fn pop_startable_indexed(
        &mut self,
        w: WorkerId,
        mut may_start: impl FnMut(TaskId) -> bool,
    ) -> Option<(QueueEntry, usize)> {
        let queue = &mut self.queues[w];
        let pos = (0..queue.len()).find(|&i| may_start(queue[i].task))?;
        let entry = if pos == 0 {
            queue.pop_front().expect("found index 0 in a nonempty ring")
        } else {
            queue.remove(pos).expect("found index within the ring")
        };
        self.avail_parts[w].1 = self.avail_parts[w].1.saturating_sub(entry.exec_estimate);
        Some((entry, pos))
    }

    /// Current number of queued entries on worker `w` (a gauge the
    /// observability layer samples at enqueue time).
    #[inline]
    pub fn depth(&self, w: WorkerId) -> usize {
        self.queues[w].len()
    }

    /// Mark worker `w` busy until (an estimate of) `until`.
    #[inline]
    pub fn set_busy_until(&mut self, w: WorkerId, until: Time) {
        self.busy[w] = true;
        self.avail_parts[w].0 = until;
    }

    /// Mark worker `w` idle.
    #[inline]
    pub fn set_idle(&mut self, w: WorkerId) {
        self.busy[w] = false;
        self.avail_parts[w].0 = Time::ZERO;
    }

    /// Whether worker `w` is currently running a task.
    #[inline]
    pub fn is_busy(&self, w: WorkerId) -> bool {
        self.busy[w]
    }

    /// Whether worker `w` has queued tasks.
    #[inline]
    pub fn has_queued(&self, w: WorkerId) -> bool {
        !self.queues[w].is_empty()
    }

    /// Remove and return every queued entry of worker `w` in queue order,
    /// zeroing its queued-work estimate — the recovery path when `w` dies
    /// and its owned tasks must be re-dispatched onto the survivors.
    pub fn drain_worker(&mut self, w: WorkerId) -> Vec<QueueEntry> {
        self.avail_parts[w].1 = Time::ZERO;
        self.queues[w].drain(..).collect()
    }
}

/// Engine-specific hooks consulted while dispatching a ready task.
///
/// The runtime's single shared memory node needs neither hook (the
/// defaults model free, instantaneous data); the simulator estimates and
/// performs PCI prefetches through them.
pub trait EngineHooks {
    /// Estimated extra time to bring `task`'s missing inputs to worker
    /// `w`'s memory node (consulted by completion-time heuristics).
    fn transfer_estimate(&self, _task: TaskId, _w: WorkerId) -> Time {
        Time::ZERO
    }

    /// Start moving `task`'s missing inputs toward worker `w`, returning
    /// when they will all be resident. Called once, after assignment.
    fn data_ready(&mut self, _task: TaskId, _w: WorkerId, now: Time) -> Time {
        now
    }
}

/// The no-op hooks of a single-memory-node engine.
pub struct SingleNode;

impl EngineHooks for SingleNode {}

/// The [`ExecutionView`] both engines present to schedulers: current
/// time, the [`WorkerQueues`] availability estimate frozen at dispatch
/// time (borrowed from the dispatcher's reused scratch buffer), and the
/// engine's transfer estimator.
pub struct QueueView<'a, H: EngineHooks + ?Sized> {
    now: Time,
    avail: &'a [Time],
    hooks: &'a H,
}

impl<'a, H: EngineHooks + ?Sized> QueueView<'a, H> {
    /// A view over a pre-built availability slice (the resilient
    /// dispatcher patches dead workers to a far-future sentinel before
    /// handing the view to the scheduler).
    pub fn with_availability(now: Time, avail: &'a [Time], hooks: &'a H) -> QueueView<'a, H> {
        QueueView { now, avail, hooks }
    }
}

impl<H: EngineHooks + ?Sized> ExecutionView for QueueView<'_, H> {
    fn now(&self) -> Time {
        self.now
    }
    fn worker_available_at(&self, w: WorkerId) -> Time {
        self.avail[w]
    }
    fn transfer_estimate(&self, task: TaskId, w: WorkerId) -> Time {
        self.hooks.transfer_estimate(task, w)
    }
}

/// Lazy [`ExecutionView`] for the fault-free dispatch path: availability
/// is computed per query straight from the live queues instead of being
/// frozen into a scratch buffer first. The completion-time scan reads
/// each worker exactly once, so laziness returns the same values while
/// skipping a 1-per-worker store/load round trip per dispatched task.
/// (The resilient path still freezes [`QueueView`]'s slice — it must
/// patch dead workers to a sentinel before the scheduler looks.)
struct LiveQueueView<'a, H: EngineHooks + ?Sized> {
    now: Time,
    queues: &'a WorkerQueues,
    hooks: &'a H,
}

impl<H: EngineHooks + ?Sized> ExecutionView for LiveQueueView<'_, H> {
    fn now(&self) -> Time {
        self.now
    }
    fn worker_available_at(&self, w: WorkerId) -> Time {
        self.queues.worker_available_at(w, self.now)
    }
    fn transfer_estimate(&self, task: TaskId, w: WorkerId) -> Time {
        self.hooks.transfer_estimate(task, w)
    }
}

/// Push one ready task through the scheduler into a worker queue: build
/// the [`QueueView`], let the scheduler assign a worker, start the data
/// prefetch via [`EngineHooks::data_ready`], enqueue under the
/// scheduler's queue discipline, and log a [`QueueEvent`] so the linter
/// can audit the decision post hoc. Returns the chosen worker.
pub fn dispatch<H: EngineHooks + ?Sized>(
    task: TaskId,
    now: Time,
    ctx: &SchedContext,
    scheduler: &mut dyn Scheduler,
    queues: &mut WorkerQueues,
    recorder: &mut TraceRecorder,
    hooks: &mut H,
) -> WorkerId {
    dispatch_inner(
        task,
        now,
        ctx,
        scheduler,
        queues,
        recorder,
        hooks,
        None,
        Time::ZERO,
    )
    .expect("dispatch without a death mask always assigns")
}

/// Availability sentinel for dead workers: far enough in the future that
/// completion-time heuristics never prefer a dead worker, but small enough
/// that the strict `Time` additions inside schedulers (availability +
/// transfer + execution estimates) cannot overflow, which `Time::MAX`
/// would.
const DEAD_AVAILABILITY: Time = Time::from_secs(86_400 * 365);

/// [`dispatch`] with recovery inputs: workers flagged in `dead` are never
/// assigned (their availability is patched to a far-future sentinel, and
/// an assignment to one — e.g. by a static scheduler unaware of deaths —
/// is overridden to the best live worker), and `extra_delay` postpones the
/// entry's data-ready instant (the retry backoff). Returns `None` iff no
/// live worker exists.
#[allow(clippy::too_many_arguments)]
pub fn dispatch_resilient<H: EngineHooks + ?Sized>(
    task: TaskId,
    now: Time,
    ctx: &SchedContext,
    scheduler: &mut dyn Scheduler,
    queues: &mut WorkerQueues,
    recorder: &mut TraceRecorder,
    hooks: &mut H,
    dead: &[bool],
    extra_delay: Time,
) -> Option<WorkerId> {
    dispatch_inner(
        task,
        now,
        ctx,
        scheduler,
        queues,
        recorder,
        hooks,
        Some(dead),
        extra_delay,
    )
}

#[allow(clippy::too_many_arguments)]
fn dispatch_inner<H: EngineHooks + ?Sized>(
    task: TaskId,
    now: Time,
    ctx: &SchedContext,
    scheduler: &mut dyn Scheduler,
    queues: &mut WorkerQueues,
    recorder: &mut TraceRecorder,
    hooks: &mut H,
    dead: Option<&[bool]>,
    extra_delay: Time,
) -> Option<WorkerId> {
    let is_dead = |w: WorkerId| dead.is_some_and(|d| d.get(w).copied().unwrap_or(false));
    let mut w = if dead.is_none() {
        // Fault-free fast path: no sentinel patching needed, so the
        // scheduler reads availability lazily from the live queues.
        let view = LiveQueueView {
            now,
            queues,
            hooks: &*hooks,
        };
        scheduler.assign(task, ctx, &view)
    } else {
        // Freeze availability into the reused scratch buffer (taken out
        // of `queues` so the scheduler's view can borrow it while
        // `queues` stays untouched), then hand it back — no allocation
        // in the steady state.
        let mut avail = std::mem::take(&mut queues.avail_scratch);
        queues.fill_availability(now, &mut avail);
        for (v, a) in avail.iter_mut().enumerate() {
            if is_dead(v) {
                *a = DEAD_AVAILABILITY;
            }
        }
        let w = {
            let view = QueueView::with_availability(now, &avail, hooks);
            scheduler.assign(task, ctx, &view)
        };
        queues.avail_scratch = avail;
        w
    };
    assert!(
        w < queues.n_workers(),
        "scheduler assigned {task} to nonexistent worker {w}"
    );
    if is_dead(w) {
        // The scheduler ignored the sentinel (e.g. a static mapping).
        // Recovery overrides it: the live worker with the earliest
        // estimated completion takes the task.
        w = (0..queues.n_workers())
            .filter(|&v| !is_dead(v))
            .min_by_key(|&v| {
                (
                    queues
                        .worker_available_at(v, now)
                        .saturating_add(hooks.transfer_estimate(task, v)),
                    v,
                )
            })?;
    }
    let prio = scheduler.priority(task, ctx);
    let exec_estimate = ctx
        .profile
        .time(ctx.graph.task(task).kernel(), ctx.platform.class_of(w));
    let data_ready = hooks
        .data_ready(task, w, now)
        .max(now.saturating_add(extra_delay));
    let seq = queues.enqueue(
        w,
        task,
        prio,
        data_ready,
        exec_estimate,
        scheduler.sorted_queues(),
    );
    let event = QueueEvent {
        worker: w,
        task,
        prio,
        seq,
        at: now,
        data_ready,
    };
    recorder
        .obs
        .on_dispatch(ctx.graph.task(task).kernel(), &event, queues.depth(w));
    recorder.record_enqueue(event);
    Some(w)
}

/// Event sink shared by the engines, producing the common [`Trace`] and,
/// when an [`ObsSink`] was handed in at construction, the structured
/// [`ObsReport`].
#[derive(Debug)]
pub struct TraceRecorder {
    n_workers: usize,
    events: Vec<TraceEvent>,
    transfers: Vec<TransferEvent>,
    queue_events: Vec<QueueEvent>,
    fault_events: Vec<FaultEvent>,
    obs: ObsSink,
}

impl TraceRecorder {
    /// Empty recorder for `n_workers` workers, sized for `n_tasks` events,
    /// with observability disabled.
    pub fn new(n_workers: usize, n_tasks: usize) -> TraceRecorder {
        TraceRecorder::with_obs(n_workers, n_tasks, ObsSink::disabled())
    }

    /// Empty recorder feeding `obs` alongside the plain trace.
    pub fn with_obs(n_workers: usize, n_tasks: usize, mut obs: ObsSink) -> TraceRecorder {
        obs.prepare(n_workers, n_tasks);
        TraceRecorder {
            n_workers,
            events: Vec::with_capacity(n_tasks),
            transfers: Vec::new(),
            queue_events: Vec::with_capacity(n_tasks),
            fault_events: Vec::new(),
            obs,
        }
    }

    /// Append fault/recovery events (a resilient engine folds its
    /// [`crate::fault::FaultState`] log in before finishing).
    pub fn record_faults(&mut self, events: Vec<FaultEvent>) {
        self.fault_events.extend(events);
    }

    /// The observability sink, for engine-specific counters (condvar
    /// wakeups, backfill pops) that the shared core cannot see itself.
    #[inline]
    pub fn obs_mut(&mut self) -> &mut ObsSink {
        &mut self.obs
    }

    /// Record one dispatcher enqueue decision (called by [`dispatch`]).
    #[inline]
    pub fn record_enqueue(&mut self, event: QueueEvent) {
        self.queue_events.push(event);
    }

    /// Record one completed task execution.
    #[inline]
    pub fn record(
        &mut self,
        graph: &TaskGraph,
        worker: WorkerId,
        task: TaskId,
        start: Time,
        end: Time,
    ) {
        let kernel = graph.task(task).kernel();
        self.obs.on_exec(task, kernel, worker, start, end);
        self.events.push(TraceEvent {
            worker,
            task,
            kernel,
            start,
            end,
        });
    }

    /// The transfer-event sink (the simulator's link model appends here).
    #[inline]
    pub fn transfers_mut(&mut self) -> &mut Vec<TransferEvent> {
        &mut self.transfers
    }

    /// Number of recorded task events.
    #[inline]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no task events have been recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Latest recorded task end (zero when empty).
    pub fn makespan(&self) -> Time {
        self.events
            .iter()
            .map(|e| e.end)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Finalize into the common trace plus its makespan, discarding any
    /// observability record (see [`TraceRecorder::finish_with_obs`]).
    pub fn finish(self) -> (Trace, Time) {
        let (trace, makespan, _) = self.finish_with_obs();
        (trace, makespan)
    }

    /// Finalize into the common trace, its makespan, and the structured
    /// observability report (empty when the sink was disabled).
    pub fn finish_with_obs(self) -> (Trace, Time, ObsReport) {
        let makespan = self.makespan();
        let obs = self.obs.finish(self.n_workers, &self.transfers);
        (
            Trace {
                n_workers: self.n_workers,
                events: self.events,
                transfers: self.transfers,
                queue_events: self.queue_events,
                fault_events: self.fault_events,
            },
            makespan,
            obs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use crate::profiles::TimingProfile;
    use crate::scheduler::StaticView;

    #[test]
    fn dep_tracker_releases_cholesky_in_full() {
        let graph = TaskGraph::cholesky(4);
        let mut deps = DepTracker::new(&graph);
        assert_eq!(deps.initial_ready(), graph.entry_tasks());
        assert_eq!(deps.remaining(), graph.len());
        // Drain in topological order; count the ready transitions.
        let mut ready: Vec<TaskId> = deps.initial_ready();
        let mut seen = 0usize;
        while let Some(t) = ready.pop() {
            seen += 1;
            ready.extend(deps.release(&graph, t));
        }
        assert_eq!(seen, graph.len());
        assert!(deps.is_done());
    }

    #[test]
    fn dep_tracker_arena_tracks_phases_and_assignment() {
        let graph = TaskGraph::cholesky(3);
        let mut deps = DepTracker::new(&graph);
        let entry = graph.entry_tasks()[0];
        assert_eq!(deps.phase(entry), TaskPhase::Ready);
        assert_eq!(deps.assigned_worker(entry), None);
        let blocked = graph.exit_tasks()[0];
        assert_eq!(deps.phase(blocked), TaskPhase::Waiting);
        deps.note_queued(entry, 2);
        assert_eq!(deps.phase(entry), TaskPhase::Queued);
        assert_eq!(deps.assigned_worker(entry), Some(2));
        deps.note_started(entry);
        assert_eq!(deps.phase(entry), TaskPhase::Running);
        let mut scratch = Vec::new();
        deps.release_into(&graph, entry, &mut scratch);
        assert_eq!(deps.phase(entry), TaskPhase::Retired);
        // Every newly ready successor flipped to Ready in the arena.
        for &s in &scratch {
            assert_eq!(deps.phase(s), TaskPhase::Ready);
        }
    }

    #[test]
    #[should_panic(expected = "released twice")]
    fn dep_tracker_rejects_double_release() {
        let graph = TaskGraph::cholesky(2);
        let mut deps = DepTracker::new(&graph);
        let entry = graph.entry_tasks()[0];
        deps.release(&graph, entry);
        deps.release(&graph, entry);
    }

    #[test]
    #[should_panic(expected = "unsatisfied dependencies")]
    fn dep_tracker_rejects_premature_release() {
        let graph = TaskGraph::cholesky(2);
        let mut deps = DepTracker::new(&graph);
        let exit = graph.exit_tasks()[0];
        deps.release(&graph, exit);
    }

    #[test]
    fn sorted_queue_orders_by_priority_then_seq() {
        let mut q = WorkerQueues::new(1);
        let ms = Time::from_millis(1);
        q.enqueue(0, TaskId(0), 5, Time::ZERO, ms, true);
        q.enqueue(0, TaskId(1), 9, Time::ZERO, ms, true);
        q.enqueue(0, TaskId(2), 5, Time::ZERO, ms, true);
        q.enqueue(0, TaskId(3), 7, Time::ZERO, ms, true);
        let order: Vec<TaskId> =
            std::iter::from_fn(|| q.pop_startable(0, |_| true).map(|e| e.task)).collect();
        // 9 first, then 7, then the two 5s in enqueue order.
        assert_eq!(order, [TaskId(1), TaskId(3), TaskId(0), TaskId(2)]);
    }

    #[test]
    fn fifo_queue_preserves_enqueue_order() {
        let mut q = WorkerQueues::new(1);
        let ms = Time::from_millis(1);
        q.enqueue(0, TaskId(0), 5, Time::ZERO, ms, false);
        q.enqueue(0, TaskId(1), 9, Time::ZERO, ms, false);
        q.enqueue(0, TaskId(2), 1, Time::ZERO, ms, false);
        let order: Vec<TaskId> =
            std::iter::from_fn(|| q.pop_startable(0, |_| true).map(|e| e.task)).collect();
        assert_eq!(order, [TaskId(0), TaskId(1), TaskId(2)]);
    }

    /// Regression for the ring-buffer migration: against a model running
    /// the pre-refactor `Vec` insert/remove code verbatim, a long random
    /// mix of enqueues (with deliberate priority ties) and gated pops must
    /// yield the identical dequeue sequence, FIFO and sorted alike.
    #[test]
    fn ring_queue_order_matches_pre_refactor_vec_model() {
        // Tiny deterministic LCG; no RNG dependency in hetchol-core.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for sorted in [false, true] {
            let mut q = WorkerQueues::new(1);
            let mut model: Vec<QueueEntry> = Vec::new();
            let mut next_id = 0u32;
            let mut popped = Vec::new();
            let mut popped_model = Vec::new();
            for _ in 0..4000 {
                let r = next();
                if r % 3 < 2 {
                    // Enqueue; a 4-value priority range forces many ties,
                    // which must break by global seq.
                    let prio = ((r >> 8) % 4) as i64;
                    let task = TaskId(next_id);
                    next_id += 1;
                    let seq = q.enqueue(0, task, prio, Time::ZERO, Time::from_micros(1), sorted);
                    let entry = QueueEntry {
                        task,
                        prio,
                        seq,
                        data_ready: Time::ZERO,
                        exec_estimate: Time::from_micros(1),
                    };
                    if sorted {
                        let pos =
                            model.partition_point(|m| (-m.prio, m.seq) <= (-entry.prio, entry.seq));
                        model.insert(pos, entry);
                    } else {
                        model.push(entry);
                    }
                } else {
                    // Pop, sometimes through a gate that rejects every
                    // fifth task id (exercises the mid-ring removal path).
                    let gated = r % 2 == 0;
                    let admit = |t: TaskId| !gated || !t.0.is_multiple_of(5);
                    if let Some(e) = q.pop_startable(0, admit) {
                        popped.push(e.task);
                    }
                    if let Some(pos) = (0..model.len()).find(|&i| admit(model[i].task)) {
                        popped_model.push(model.remove(pos).task);
                    }
                }
            }
            while let Some(e) = q.pop_startable(0, |_| true) {
                popped.push(e.task);
            }
            while !model.is_empty() {
                popped_model.push(model.remove(0).task);
            }
            assert_eq!(popped, popped_model, "sorted={sorted}");
        }
    }

    #[test]
    fn availability_tracks_busy_and_queued_work() {
        let mut q = WorkerQueues::new(2);
        let now = Time::from_millis(10);
        assert_eq!(q.worker_available_at(0, now), now);
        q.enqueue(0, TaskId(0), 0, now, Time::from_millis(5), false);
        assert_eq!(q.worker_available_at(0, now), Time::from_millis(15));
        // Start the queued task: queued work moves into busy_until.
        let e = q.pop_startable(0, |_| true).unwrap();
        q.set_busy_until(0, now + e.exec_estimate);
        assert_eq!(q.worker_available_at(0, now), Time::from_millis(15));
        // A busy worker whose estimated end passed is available "now".
        let later = Time::from_millis(40);
        assert_eq!(q.worker_available_at(0, later), later);
        q.set_idle(0);
        assert!(!q.is_busy(0));
        // Worker 1 was never touched.
        assert_eq!(q.worker_available_at(1, now), now);
    }

    #[test]
    fn pop_startable_respects_gate() {
        let mut q = WorkerQueues::new(1);
        let ms = Time::from_millis(1);
        q.enqueue(0, TaskId(0), 0, Time::ZERO, ms, false);
        q.enqueue(0, TaskId(1), 0, Time::ZERO, ms, false);
        // Gate holds the head back: the second entry starts first.
        let e = q.pop_startable(0, |t| t != TaskId(0)).unwrap();
        assert_eq!(e.task, TaskId(1));
        // Everything gated: nothing starts, nothing is lost.
        assert!(q.pop_startable(0, |_| false).is_none());
        assert!(q.has_queued(0));
    }

    #[test]
    fn dispatch_assigns_and_enqueues() {
        struct ToWorkerOne;
        impl Scheduler for ToWorkerOne {
            fn name(&self) -> &str {
                "to-one"
            }
            fn assign(
                &mut self,
                _: TaskId,
                _: &SchedContext,
                view: &dyn ExecutionView,
            ) -> WorkerId {
                assert_eq!(view.transfer_estimate(TaskId(0), 0), Time::ZERO);
                1
            }
            fn priority(&self, task: TaskId, _: &SchedContext) -> i64 {
                task.0 as i64
            }
            fn sorted_queues(&self) -> bool {
                true
            }
        }
        let graph = TaskGraph::cholesky(2);
        let platform = Platform::homogeneous(2);
        let profile = TimingProfile::mirage_homogeneous();
        let ctx = SchedContext {
            graph: &graph,
            platform: &platform,
            profile: &profile,
        };
        let mut queues = WorkerQueues::new(2);
        let mut rec = TraceRecorder::new(2, graph.len());
        let entry = graph.entry_tasks()[0];
        let w = dispatch(
            entry,
            Time::ZERO,
            &ctx,
            &mut ToWorkerOne,
            &mut queues,
            &mut rec,
            &mut SingleNode,
        );
        assert_eq!(w, 1);
        assert!(queues.has_queued(1));
        assert!(!queues.has_queued(0));
        let e = q_pop(&mut queues, 1);
        assert_eq!(e.task, entry);
        assert_eq!(e.exec_estimate, profile.time(graph.task(entry).kernel(), 0));
        // The enqueue decision was logged with the queue's seq and prio.
        let (trace, _) = rec.finish();
        assert_eq!(trace.queue_events.len(), 1);
        let qe = trace.queue_events[0];
        assert_eq!(qe.worker, 1);
        assert_eq!(qe.task, entry);
        assert_eq!(qe.prio, entry.0 as i64);
        assert_eq!(qe.seq, 0);
    }

    fn q_pop(q: &mut WorkerQueues, w: WorkerId) -> QueueEntry {
        q.pop_startable(w, |_| true).expect("queued entry")
    }

    #[test]
    fn queue_view_freezes_availability() {
        let mut q = WorkerQueues::new(2);
        q.enqueue(0, TaskId(0), 0, Time::ZERO, Time::from_millis(3), false);
        let mut avail = Vec::new();
        q.fill_availability(Time::from_millis(2), &mut avail);
        let view = QueueView::with_availability(Time::from_millis(2), &avail, &SingleNode);
        assert_eq!(view.now(), Time::from_millis(2));
        assert_eq!(view.worker_available_at(0), Time::from_millis(5));
        assert_eq!(view.worker_available_at(1), Time::from_millis(2));
        // Same estimate the StaticView-based tests use.
        let stat = StaticView {
            now: Time::from_millis(2),
            available: vec![Time::from_millis(5), Time::from_millis(2)],
        };
        assert_eq!(stat.worker_available_at(0), view.worker_available_at(0));
    }

    #[test]
    fn trace_recorder_builds_trace() {
        let graph = TaskGraph::cholesky(2);
        let mut rec = TraceRecorder::new(2, graph.len());
        assert!(rec.is_empty());
        let t = graph.entry_tasks()[0];
        rec.record(&graph, 0, t, Time::ZERO, Time::from_millis(4));
        rec.record(
            &graph,
            1,
            TaskId(1),
            Time::from_millis(1),
            Time::from_millis(9),
        );
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.makespan(), Time::from_millis(9));
        rec.transfers_mut().push(TransferEvent {
            tile: crate::task::Tile { row: 0, col: 0 },
            from: 0,
            to: 1,
            start: Time::ZERO,
            end: Time::from_millis(1),
        });
        let (trace, makespan) = rec.finish();
        assert_eq!(makespan, Time::from_millis(9));
        assert_eq!(trace.n_workers, 2);
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.transfers.len(), 1);
    }
}
