//! One hand-rolled JSON value module for the whole workspace: emit *and*
//! parse.
//!
//! The workspace deliberately has no serde (see `crates/compat/README.md`);
//! before this module every layer grew its own emitter or parser — the
//! Chrome-trace schema checker in [`crate::obs`], the witness reader in
//! `hetchol-analyze::mc`, `Figure::to_json`, the bench-report validator.
//! They now share this one [`JsonValue`] (the parser moved here verbatim
//! from `obs`) and the job-API wire format of the `hetchol-serve` crate is
//! built directly on it.
//!
//! Numbers are `f64` throughout, like JSON itself: integers are exact up
//! to 2⁵³ (large identifiers such as content hashes should travel as hex
//! *strings*, see [`crate::hash`]). The compact renderer prints integral
//! floats without a fractional part, so `u64` counters and nanosecond
//! timestamps round-trip byte-identically through
//! [`JsonValue::render`] → [`parse_json`].
//!
//! ```
//! use hetchol_core::json::{parse_json, JsonValue};
//!
//! let v = JsonValue::Obj(vec![
//!     ("n".into(), JsonValue::Num(8.0)),
//!     ("scheduler".into(), JsonValue::Str("dmdas".into())),
//! ]);
//! let text = v.render();
//! assert_eq!(text, r#"{"n":8,"scheduler":"dmdas"}"#);
//! assert_eq!(parse_json(&text).unwrap(), v);
//! ```

use std::fmt;
use std::fmt::Write as _;

/// A parsed or to-be-emitted JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in key order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Member lookup that *requires* the member to exist (wire-format
    /// readers want an error message naming the missing key).
    pub fn field(&self, key: &str) -> Result<&JsonValue, String> {
        match self {
            JsonValue::Obj(members) => members
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field {key:?}")),
            other => Err(format!(
                "expected an object with field {key:?}, got {other:?}"
            )),
        }
    }

    /// The value as a non-negative integer (exact, `fract() == 0`).
    pub fn as_u64(&self) -> Result<u64, String> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Ok(*n as u64)
            }
            other => Err(format!("expected a non-negative integer, got {other:?}")),
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Result<f64, String> {
        match self {
            JsonValue::Num(n) => Ok(*n),
            other => Err(format!("expected a number, got {other:?}")),
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Result<&str, String> {
        match self {
            JsonValue::Str(s) => Ok(s),
            other => Err(format!("expected a string, got {other:?}")),
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Result<bool, String> {
        match self {
            JsonValue::Bool(b) => Ok(*b),
            other => Err(format!("expected a bool, got {other:?}")),
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Result<&[JsonValue], String> {
        match self {
            JsonValue::Arr(items) => Ok(items),
            other => Err(format!("expected an array, got {other:?}")),
        }
    }

    /// Shorthand string constructor.
    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::Str(s.into())
    }

    /// Shorthand number constructor for anything convertible to `f64`
    /// (integers are exact up to 2⁵³ — see the module docs).
    pub fn num(n: impl Into<f64>) -> JsonValue {
        JsonValue::Num(n.into())
    }

    /// A `u64` as a JSON number. Debug-asserts the value survives the
    /// `f64` crossing; counters and nanosecond times always do.
    pub fn uint(n: u64) -> JsonValue {
        let f = n as f64;
        debug_assert_eq!(f as u64, n, "u64 {n} not exactly representable; send hex");
        JsonValue::Num(f)
    }

    /// Render compactly (no whitespace), in member order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Append the compact rendering to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => write_num(*n, out),
            JsonValue::Str(s) => escape_into(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Append `s` as a quoted, escaped JSON string.
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a JSON number: finite values via Rust's shortest round-tripping
/// `{}` formatting (integral floats print bare, `123` not `123.0`);
/// NaN/infinity become `null`, as JSON requires.
pub fn write_num(v: f64, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Parse a complete JSON document (strict: one value, nothing trailing).
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.bytes.get(self.pos).map(|&c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|&c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through unchanged.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("non-empty by construction");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            members.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip() {
        let v = JsonValue::Obj(vec![
            (
                "a".into(),
                JsonValue::Arr(vec![
                    JsonValue::Num(1.0),
                    JsonValue::Num(-2.5),
                    JsonValue::Str("q\"\n".into()),
                    JsonValue::Null,
                    JsonValue::Bool(true),
                    JsonValue::Obj(Vec::new()),
                ]),
            ),
            ("b".into(), JsonValue::Num(1e300)),
        ]);
        let text = v.render();
        assert_eq!(parse_json(&text).unwrap(), v);
    }

    #[test]
    fn integral_floats_print_bare() {
        assert_eq!(JsonValue::uint(123).render(), "123");
        assert_eq!(JsonValue::Num(123.5).render(), "123.5");
        let ns = 86_400_000_000_000u64; // a day in nanoseconds
        assert_eq!(JsonValue::uint(ns).render(), ns.to_string());
        assert_eq!(parse_json(&ns.to_string()).unwrap().as_u64().unwrap(), ns);
    }

    #[test]
    fn non_finite_numbers_emit_null() {
        assert_eq!(JsonValue::Num(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn typed_accessors_report_errors() {
        let v = parse_json(r#"{"n": 4, "s": "x", "b": true, "a": [1]}"#).unwrap();
        assert_eq!(v.field("n").unwrap().as_u64().unwrap(), 4);
        assert_eq!(v.field("s").unwrap().as_str().unwrap(), "x");
        assert!(v.field("b").unwrap().as_bool().unwrap());
        assert_eq!(v.field("a").unwrap().as_arr().unwrap().len(), 1);
        assert!(v.field("missing").is_err());
        assert!(v.field("s").unwrap().as_u64().is_err());
        assert!(JsonValue::Num(1.5).as_u64().is_err());
        assert!(JsonValue::Null.field("x").is_err());
    }

    #[test]
    fn strict_parse_rejects_trailing() {
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("").is_err());
    }
}
