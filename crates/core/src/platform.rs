//! Heterogeneous platform descriptions.
//!
//! A platform is a set of *resource classes* (e.g. "CPU core" × 9,
//! "GPU" × 3 on the paper's Mirage machine), each containing identical
//! workers. CPU workers share the host memory node; each GPU worker owns a
//! private memory node connected to the host by a PCI link described by a
//! latency/bandwidth [`CommModel`] (SimGrid-style fluid model, first order).

use crate::time::Time;

/// Index of a worker (a processing element) on the platform.
pub type WorkerId = usize;
/// Index of a resource class (a *type* of processing element).
pub type ClassId = usize;
/// Index of a memory node (0 = host RAM, `1..` = GPU memories).
pub type MemNode = usize;

/// The broad kind of a resource class, which determines its memory topology.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ResourceKind {
    /// A CPU core; shares the host memory node.
    Cpu,
    /// A GPU; owns a private memory node behind a PCI link.
    Gpu,
}

/// A class of identical processing elements.
#[derive(Clone, Debug)]
pub struct ResourceClass {
    /// Human-readable name ("CPU", "GPU", ...).
    pub name: String,
    /// Kind, for memory-topology purposes.
    pub kind: ResourceKind,
    /// Number of workers in this class (the paper's `M_r`).
    pub count: usize,
}

/// Latency + bandwidth model of one PCI direction.
#[derive(Copy, Clone, Debug)]
pub struct CommModel {
    /// Per-message latency.
    pub latency: Time,
    /// Link bandwidth in bytes per second.
    pub bandwidth: f64,
}

impl CommModel {
    /// Time to move `bytes` over the link: `latency + bytes / bandwidth`.
    pub fn transfer_time(&self, bytes: usize) -> Time {
        self.latency + Time::from_secs_f64(bytes as f64 / self.bandwidth)
    }
}

/// An immutable heterogeneous platform.
#[derive(Clone, Debug)]
pub struct Platform {
    classes: Vec<ResourceClass>,
    /// `None` models the paper's "communication removed" configuration used
    /// when comparing against bounds (Section V-C2); `Some` enables the PCI
    /// model for actual-execution-style runs.
    comm: Option<CommModel>,
    /// Class of each worker, flattened in class order.
    worker_class: Vec<ClassId>,
    /// Memory node of each worker.
    worker_node: Vec<MemNode>,
    /// Total number of memory nodes (host + one per GPU worker).
    n_nodes: usize,
}

impl Platform {
    /// Build a platform from resource classes and an optional PCI model.
    ///
    /// Workers are numbered class by class, in order; GPU workers are
    /// assigned private memory nodes `1, 2, ...` while all other workers
    /// share node `0`.
    pub fn new(classes: Vec<ResourceClass>, comm: Option<CommModel>) -> Platform {
        let mut worker_class = Vec::new();
        let mut worker_node = Vec::new();
        let mut next_node: MemNode = 1;
        for (cid, class) in classes.iter().enumerate() {
            for _ in 0..class.count {
                worker_class.push(cid);
                match class.kind {
                    ResourceKind::Cpu => worker_node.push(0),
                    ResourceKind::Gpu => {
                        worker_node.push(next_node);
                        next_node += 1;
                    }
                }
            }
        }
        Platform {
            classes,
            comm,
            worker_class,
            worker_node,
            n_nodes: next_node,
        }
    }

    /// The paper's *Mirage* machine as used in the experiments: 9 CPU
    /// workers (12 cores minus the 3 reserved as GPU drivers) and 3 GPUs,
    /// with an 8 GB/s, 10 µs PCI model per GPU.
    pub fn mirage() -> Platform {
        Platform::new(
            vec![
                ResourceClass {
                    name: "CPU".into(),
                    kind: ResourceKind::Cpu,
                    count: 9,
                },
                ResourceClass {
                    name: "GPU".into(),
                    kind: ResourceKind::Gpu,
                    count: 3,
                },
            ],
            Some(CommModel {
                latency: Time::from_micros(10),
                bandwidth: 8.0e9,
            }),
        )
    }

    /// The homogeneous configuration of Section V-C1: 9 CPU cores, no
    /// accelerators (communication is irrelevant: one memory node).
    pub fn homogeneous(n_cpus: usize) -> Platform {
        Platform::new(
            vec![ResourceClass {
                name: "CPU".into(),
                kind: ResourceKind::Cpu,
                count: n_cpus,
            }],
            None,
        )
    }

    /// Same platform with communications disabled (made free), as the paper
    /// does when comparing schedulers against the bounds.
    pub fn without_comm(&self) -> Platform {
        let mut p = self.clone();
        p.comm = None;
        p
    }

    /// Same platform with the given PCI model.
    pub fn with_comm(&self, comm: CommModel) -> Platform {
        let mut p = self.clone();
        p.comm = Some(comm);
        p
    }

    /// The PCI model, if communications are enabled.
    #[inline]
    pub fn comm(&self) -> Option<&CommModel> {
        self.comm.as_ref()
    }

    /// Resource classes.
    #[inline]
    pub fn classes(&self) -> &[ResourceClass] {
        &self.classes
    }

    /// Number of resource classes.
    #[inline]
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// Total number of workers.
    #[inline]
    pub fn n_workers(&self) -> usize {
        self.worker_class.len()
    }

    /// Class of a worker.
    #[inline]
    pub fn class_of(&self, w: WorkerId) -> ClassId {
        self.worker_class[w]
    }

    /// Memory node a worker computes from.
    #[inline]
    pub fn node_of(&self, w: WorkerId) -> MemNode {
        self.worker_node[w]
    }

    /// Number of memory nodes (host + GPUs).
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Workers belonging to a class, as a contiguous range.
    pub fn workers_in_class(&self, class: ClassId) -> std::ops::Range<WorkerId> {
        let first: usize = self.classes[..class].iter().map(|c| c.count).sum();
        first..first + self.classes[class].count
    }

    /// All worker ids.
    #[inline]
    pub fn workers(&self) -> std::ops::Range<WorkerId> {
        0..self.n_workers()
    }

    /// Short display name of a worker, e.g. `CPU3` or `GPU0`.
    pub fn worker_name(&self, w: WorkerId) -> String {
        let class = self.class_of(w);
        let rank = w - self.workers_in_class(class).start;
        format!("{}{}", self.classes[class].name, rank)
    }

    /// Deterministic content hash over everything that defines the
    /// platform (classes, counts, PCI model) — the serving layer's cache
    /// key ingredient ([`crate::hash`]). The worker/node layout is fully
    /// derived from the classes, so hashing the inputs suffices.
    pub fn content_hash(&self) -> u64 {
        let mut h = crate::hash::ContentHasher::new();
        h.write_usize(self.classes.len());
        for c in &self.classes {
            h.write_str(&c.name);
            h.write_u64(match c.kind {
                ResourceKind::Cpu => 0,
                ResourceKind::Gpu => 1,
            });
            h.write_usize(c.count);
        }
        match &self.comm {
            None => h.write_u64(0),
            Some(m) => {
                h.write_u64(1);
                h.write_u64(m.latency.as_nanos());
                h.write_f64(m.bandwidth);
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirage_topology() {
        let p = Platform::mirage();
        assert_eq!(p.n_workers(), 12);
        assert_eq!(p.n_classes(), 2);
        assert_eq!(p.workers_in_class(0), 0..9);
        assert_eq!(p.workers_in_class(1), 9..12);
        // 9 CPUs share node 0; GPUs own nodes 1..=3.
        for w in 0..9 {
            assert_eq!(p.node_of(w), 0);
            assert_eq!(p.class_of(w), 0);
        }
        for (rank, w) in (9..12).enumerate() {
            assert_eq!(p.node_of(w), 1 + rank);
            assert_eq!(p.class_of(w), 1);
        }
        assert_eq!(p.n_nodes(), 4);
        assert!(p.comm().is_some());
    }

    #[test]
    fn homogeneous_topology() {
        let p = Platform::homogeneous(9);
        assert_eq!(p.n_workers(), 9);
        assert_eq!(p.n_nodes(), 1);
        assert!(p.comm().is_none());
        assert_eq!(p.worker_name(4), "CPU4");
    }

    #[test]
    fn worker_names() {
        let p = Platform::mirage();
        assert_eq!(p.worker_name(0), "CPU0");
        assert_eq!(p.worker_name(8), "CPU8");
        assert_eq!(p.worker_name(9), "GPU0");
        assert_eq!(p.worker_name(11), "GPU2");
    }

    #[test]
    fn comm_model_transfer_time() {
        let m = CommModel {
            latency: Time::from_micros(10),
            bandwidth: 8.0e9,
        };
        // A 960x960 f64 tile is 7_372_800 bytes -> 921.6 us + 10 us latency.
        let t = m.transfer_time(960 * 960 * 8);
        assert!((t.as_secs_f64() - (10e-6 + 7_372_800.0 / 8.0e9)).abs() < 1e-12);
        // Zero bytes still pays latency.
        assert_eq!(m.transfer_time(0), Time::from_micros(10));
    }

    #[test]
    fn without_comm_strips_the_link() {
        let p = Platform::mirage().without_comm();
        assert!(p.comm().is_none());
        assert_eq!(p.n_workers(), 12);
        let p2 = p.with_comm(CommModel {
            latency: Time::ZERO,
            bandwidth: 1.0,
        });
        assert!(p2.comm().is_some());
    }
}
