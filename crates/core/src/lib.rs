//! # hetchol-core
//!
//! Foundation types for the `hetchol` reproduction of *"Bridging the Gap
//! between Performance and Bounds of Cholesky Factorization on Heterogeneous
//! Platforms"* (Agullo et al., HCW 2015).
//!
//! This crate defines everything the rest of the workspace shares:
//!
//! * [`time`] — deterministic nanosecond time arithmetic used by the
//!   discrete-event simulator, the real runtime and the bound computations.
//! * [`kernel`] — the four Cholesky kernels (POTRF/TRSM/SYRK/GEMM), their
//!   flop counts and their multiplicities in an `n × n`-tile factorization.
//! * [`task`] — task and tile identifiers, and per-task data accesses.
//! * [`dag`] — the tiled-Cholesky task graph (Figure 1 of the paper):
//!   data-driven dependency construction, topological orders, bottom levels
//!   and critical paths.
//! * [`platform`] — heterogeneous platform descriptions (resource classes,
//!   workers, memory nodes, PCI links), including the paper's *Mirage*
//!   machine.
//! * [`profiles`] — per-(kernel, resource-class) timing profiles, the
//!   paper's Table I speedups, and the *related* platform construction of
//!   Section V-C2.
//! * [`schedule`] — explicit schedules (task → worker/start/end) and a
//!   validator that checks resource exclusivity and dependency feasibility.
//! * [`scheduler`] — the dynamic-scheduler interface shared by the
//!   simulator (`hetchol-sim`) and the real runtime (`hetchol-rt`),
//!   mirroring StarPU's push-model scheduling hooks.
//! * [`exec`] — the shared execution core both engines are built on:
//!   dependency tracking ([`exec::DepTracker`]), per-worker queues with
//!   the `dmda`/`dmdas` insertion discipline ([`exec::WorkerQueues`]) and
//!   trace recording ([`exec::TraceRecorder`]).
//! * [`fault`] — seeded, deterministic fault injection ([`fault::FaultPlan`])
//!   and the recovery vocabulary ([`fault::RetryPolicy`],
//!   [`fault::RunOutcome`], the [`fault::FaultEvent`] audit log) shared by
//!   both engines' resilient entry points.
//! * [`trace`] — per-worker execution traces (Figure 12 of the paper),
//!   idle-time accounting and ASCII Gantt rendering.
//! * [`obs`] — structured observability: per-task phase spans
//!   ([`obs::TaskSpan`]), the lock-cheap counter registry
//!   ([`obs::ObsCounters`]) and the Chrome-trace / utilization / summary
//!   exporters, recorded by both engines through the shared core when an
//!   [`obs::ObsSink`] is enabled at run construction.
//! * [`metrics`] — GFLOP/s conversions and result-series containers used by
//!   the reproduction harness.
//! * [`json`] — the one hand-rolled JSON value module (emit + parse) every
//!   exporter, validator and the `hetchol-serve` wire format build on.
//! * [`hash`] — deterministic FNV-1a content hashing for the serving
//!   layer's cache keys ([`Platform::content_hash`],
//!   [`TimingProfile::content_hash`]).

#![forbid(unsafe_code)]

pub mod algorithm;
pub mod dag;
pub mod exec;
pub mod fault;
pub mod hash;
pub mod json;
pub mod kernel;
pub mod metrics;
pub mod obs;
pub mod platform;
pub mod profiles;
pub mod schedule;
pub mod scheduler;
pub mod task;
pub mod time;
pub mod trace;

pub use algorithm::Algorithm;
pub use dag::TaskGraph;
pub use exec::{DepTracker, TraceRecorder, WorkerQueues};
pub use fault::{
    ConfigError, FailureCause, Fault, FaultEvent, FaultEventKind, FaultKind, FaultPlan, FaultState,
    RetryPolicy, RunOutcome,
};
pub use hash::ContentHasher;
pub use json::{parse_json, JsonValue};
pub use kernel::Kernel;
pub use metrics::{Figure, Point, Series};
pub use obs::{
    validate_chrome_trace, FailedAttempt, ObsCounters, ObsReport, ObsSink, TaskSpan, WorkerPhases,
};
pub use platform::{ClassId, CommModel, MemNode, Platform, ResourceClass, ResourceKind, WorkerId};
pub use profiles::TimingProfile;
pub use schedule::{DurationCheck, Schedule, ScheduleEntry, ScheduleError};
pub use scheduler::{ExecutionView, SchedContext, Scheduler, StaticView};
pub use task::{Access, AccessMode, Task, TaskCoords, TaskId, Tile};
pub use time::Time;
pub use trace::{QueueEvent, Trace, TraceEvent, TransferEvent};
