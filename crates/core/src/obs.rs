//! Structured observability: per-task phase spans, engine counters, and
//! exporters (Chrome trace JSON, per-worker utilization report, summary).
//!
//! The paper's whole diagnostic method is trace-driven — Figure 12's
//! per-worker Gantt views are what reveal *why* `dmda`/`dmdas` leave GPU
//! idle time. The plain [`crate::trace::Trace`] records *what executed
//! when*; this module records *why the rest of the time was lost*: for
//! every task a [`TaskSpan`] with its phase segments
//! (submitted → queued → data-transfer → executing → retired), and a
//! lock-cheap counter registry ([`ObsCounters`]: dispatches per
//! kernel × worker, queue depths, backfill pops, condvar wakeups, transfer
//! totals).
//!
//! Both engines emit spans from the one shared code path: the dispatcher
//! ([`crate::exec::dispatch`]) opens a span when it enqueues a ready task
//! and [`crate::exec::TraceRecorder::record`] closes it at retirement, so
//! the simulator and the threaded runtime cannot drift apart in what they
//! report.
//!
//! Observability is **zero-cost when disabled**: an [`ObsSink`] is either
//! a no-op (`ObsSink::disabled()`, the default — one branch per hook) or
//! an owned recording state (`ObsSink::enabled()`), selected once at run
//! construction.

use crate::kernel::Kernel;
use crate::platform::WorkerId;
use crate::task::TaskId;
use crate::time::Time;
use crate::trace::{QueueEvent, TransferEvent};
use std::fmt::Write as _;

/// One task's life cycle through the engine, as phase timestamps.
///
/// The phases partition the span's wall interval `[queued, end)`:
///
/// * **submitted / queued** at `queued` — in both engines a task is pushed
///   through the dispatcher the moment its last dependency retires, so
///   submission and enqueue coincide;
/// * **data transfer** over `[queued, min(data_ready, start))` — the
///   prefetch of missing input tiles (empty on the shared-memory runtime);
/// * **queue wait** over the rest of `[queued, start)` — the task sat
///   startable in its worker's queue;
/// * **executing** over `[start, end)`;
/// * **retired** at `end`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TaskSpan {
    /// The task.
    pub task: TaskId,
    /// Its kernel (denormalised, like [`crate::trace::TraceEvent`]).
    pub kernel: Kernel,
    /// Worker that ran it.
    pub worker: WorkerId,
    /// Scheduler priority at enqueue time.
    pub prio: i64,
    /// Global enqueue sequence number.
    pub seq: u64,
    /// Dispatch/enqueue instant (== submission instant, see above).
    pub queued: Time,
    /// When the task's inputs were (estimated) resident at the worker.
    pub data_ready: Time,
    /// Execution start.
    pub start: Time,
    /// Execution end (retirement).
    pub end: Time,
}

impl TaskSpan {
    /// Duration of the data-transfer segment `[queued, min(data_ready, start))`.
    pub fn transfer_wait(&self) -> Time {
        self.data_ready.min(self.start).saturating_sub(self.queued)
    }

    /// Duration of the queue-wait segment (time startable but not started).
    pub fn queue_wait(&self) -> Time {
        self.start
            .saturating_sub(self.queued)
            .saturating_sub(self.transfer_wait())
    }

    /// Duration of the executing segment.
    pub fn exec(&self) -> Time {
        self.end.saturating_sub(self.start)
    }
}

/// The lock-cheap counter/gauge registry.
///
/// All counters are plain integers bumped while the caller already holds
/// whatever synchronisation the engine uses (the simulator is single
/// threaded; the runtime's hooks all run under its one state lock), so
/// recording never adds a lock acquisition of its own.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ObsCounters {
    /// Tasks dispatched per worker × kernel, flattened as
    /// `worker * Kernel::COUNT + kernel.index()`.
    pub dispatched: Vec<u64>,
    /// High-water queue depth per worker (gauge, sampled at every enqueue).
    pub max_queue_depth: Vec<u64>,
    /// Pops that bypassed a gated queue head per worker (the backfill /
    /// out-of-head-order starts that schedule injection permits).
    pub backfills: Vec<u64>,
    /// Condvar wakeups per worker (threaded runtime only; zero in the
    /// simulator, which has no parked threads).
    pub wakeups: Vec<u64>,
    /// Number of tile transfers performed.
    pub transfers: u64,
    /// Total wall/virtual time spent in transfers.
    pub transfer_time: Time,
    /// Total bytes moved by transfers (tile size is an engine concern;
    /// engines that do not track bytes leave this zero).
    pub transfer_bytes: u64,
    /// Failed task attempts (injected or watchdog-converted), resilient
    /// runs only.
    pub failures: u64,
    /// Attempts re-dispatched after a failure.
    pub retries: u64,
    /// Workers permanently lost during the run.
    pub workers_lost: u64,
}

impl ObsCounters {
    fn sized(n_workers: usize) -> ObsCounters {
        ObsCounters {
            dispatched: vec![0; n_workers * Kernel::COUNT],
            max_queue_depth: vec![0; n_workers],
            backfills: vec![0; n_workers],
            wakeups: vec![0; n_workers],
            ..ObsCounters::default()
        }
    }

    /// Tasks dispatched to `worker` with kernel `k`.
    pub fn dispatched(&self, worker: WorkerId, k: Kernel) -> u64 {
        self.dispatched
            .get(worker * Kernel::COUNT + k.index())
            .copied()
            .unwrap_or(0)
    }

    /// Total tasks dispatched across all workers and kernels.
    pub fn total_dispatched(&self) -> u64 {
        self.dispatched.iter().sum()
    }
}

/// One failed task attempt, as the observability layer records it —
/// rendered as a `[retrying]` slice in the Chrome trace.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FailedAttempt {
    /// The task whose attempt failed.
    pub task: TaskId,
    /// Its kernel.
    pub kernel: Kernel,
    /// Worker that owned the attempt.
    pub worker: WorkerId,
    /// Attempt start (== end for attempts that never occupied the worker).
    pub start: Time,
    /// When the failure was recorded.
    pub end: Time,
    /// 1-based attempt number.
    pub attempt: u32,
    /// Failure-kind label (`transient` / `numerical` / `timeout` /
    /// `worker-lost`; a string so this module stays decoupled from
    /// [`crate::fault`]).
    pub kind: &'static str,
}

/// A task's in-flight recording slot.
#[derive(Copy, Clone, Debug)]
struct SpanSlot {
    kernel: Kernel,
    worker: WorkerId,
    prio: i64,
    seq: u64,
    queued: Time,
    data_ready: Time,
    start: Time,
    end: Time,
    dispatched: bool,
    executed: bool,
}

impl Default for SpanSlot {
    fn default() -> SpanSlot {
        SpanSlot {
            kernel: Kernel::Potrf,
            worker: 0,
            prio: 0,
            seq: 0,
            queued: Time::ZERO,
            data_ready: Time::ZERO,
            start: Time::ZERO,
            end: Time::ZERO,
            dispatched: false,
            executed: false,
        }
    }
}

/// Recording state behind an enabled [`ObsSink`].
#[derive(Clone, Debug, Default)]
struct ObsState {
    n_workers: usize,
    slots: Vec<SpanSlot>,
    counters: ObsCounters,
    failed: Vec<FailedAttempt>,
    deaths: Vec<(WorkerId, Time)>,
}

impl ObsState {
    fn slot(&mut self, task: TaskId) -> &mut SpanSlot {
        let idx = task.index();
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, SpanSlot::default);
        }
        &mut self.slots[idx]
    }
}

/// The observability event sink both engines feed through the shared
/// execution core. Either a no-op ([`ObsSink::disabled`], the default) or
/// an owned recording state ([`ObsSink::enabled`]); the choice is made
/// once, at run construction, so the disabled path costs one branch per
/// hook and allocates nothing.
#[derive(Debug, Default)]
pub struct ObsSink(Option<Box<ObsState>>);

impl ObsSink {
    /// The no-op sink: every hook is a single `None` check.
    pub fn disabled() -> ObsSink {
        ObsSink(None)
    }

    /// A recording sink. Sized lazily by the engine's trace recorder.
    pub fn enabled() -> ObsSink {
        ObsSink(Some(Box::default()))
    }

    /// Whether this sink records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Size the registry for the run (called by the trace recorder).
    pub(crate) fn prepare(&mut self, n_workers: usize, n_tasks: usize) {
        if let Some(s) = &mut self.0 {
            s.n_workers = n_workers;
            s.slots = vec![SpanSlot::default(); n_tasks];
            s.counters = ObsCounters::sized(n_workers);
        }
    }

    /// Open a span: the dispatcher enqueued `event.task` (called by
    /// [`crate::exec::dispatch`] right after the queue insert).
    #[inline]
    pub fn on_dispatch(&mut self, kernel: Kernel, event: &QueueEvent, queue_depth: usize) {
        if let Some(s) = &mut self.0 {
            let idx = event.worker * Kernel::COUNT + kernel.index();
            if let Some(c) = s.counters.dispatched.get_mut(idx) {
                *c += 1;
            }
            if let Some(d) = s.counters.max_queue_depth.get_mut(event.worker) {
                *d = (*d).max(queue_depth as u64);
            }
            let slot = s.slot(event.task);
            slot.kernel = kernel;
            slot.worker = event.worker;
            slot.prio = event.prio;
            slot.seq = event.seq;
            slot.queued = event.at;
            slot.data_ready = event.data_ready;
            slot.dispatched = true;
        }
    }

    /// Close a span: `task` executed over `[start, end)` on `worker`.
    #[inline]
    pub fn on_exec(
        &mut self,
        task: TaskId,
        kernel: Kernel,
        worker: WorkerId,
        start: Time,
        end: Time,
    ) {
        if let Some(s) = &mut self.0 {
            let slot = s.slot(task);
            slot.kernel = kernel;
            slot.worker = worker;
            slot.start = start;
            slot.end = end;
            slot.executed = true;
        }
    }

    /// Record one failed attempt of `task` (resilient runs; called by the
    /// engines when an injected or watchdog failure fires).
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn on_attempt_failed(
        &mut self,
        task: TaskId,
        kernel: Kernel,
        worker: WorkerId,
        start: Time,
        end: Time,
        attempt: u32,
        kind: &'static str,
    ) {
        if let Some(s) = &mut self.0 {
            s.counters.failures += 1;
            s.failed.push(FailedAttempt {
                task,
                kernel,
                worker,
                start,
                end,
                attempt,
                kind,
            });
        }
    }

    /// Count one retry re-dispatch.
    #[inline]
    pub fn count_retry(&mut self) {
        if let Some(s) = &mut self.0 {
            s.counters.retries += 1;
        }
    }

    /// Record the permanent loss of `worker` at `at`.
    #[inline]
    pub fn count_worker_lost(&mut self, worker: WorkerId, at: Time) {
        if let Some(s) = &mut self.0 {
            s.counters.workers_lost += 1;
            s.deaths.push((worker, at));
        }
    }

    /// Count one condvar wakeup of `worker` (threaded runtime).
    #[inline]
    pub fn count_wakeup(&mut self, worker: WorkerId) {
        if let Some(s) = &mut self.0 {
            if let Some(c) = s.counters.wakeups.get_mut(worker) {
                *c += 1;
            }
        }
    }

    /// Count one pop that bypassed `skipped` gated entries ahead of it in
    /// `worker`'s queue (a backfill start).
    #[inline]
    pub fn count_backfill(&mut self, worker: WorkerId, skipped: usize) {
        if skipped == 0 {
            return;
        }
        if let Some(s) = &mut self.0 {
            if let Some(c) = s.counters.backfills.get_mut(worker) {
                *c += 1;
            }
        }
    }

    /// Finalize into a report, folding the engine's transfer log into the
    /// counters. A disabled sink yields the empty report.
    pub(crate) fn finish(self, n_workers: usize, transfers: &[TransferEvent]) -> ObsReport {
        let Some(mut s) = self.0 else {
            return ObsReport::empty(n_workers);
        };
        s.counters.transfers = transfers.len() as u64;
        s.counters.transfer_time = transfers.iter().map(|t| t.end - t.start).sum();
        let mut spans: Vec<TaskSpan> = s
            .slots
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.executed)
            .map(|(idx, slot)| TaskSpan {
                task: TaskId(idx as u32),
                kernel: slot.kernel,
                worker: slot.worker,
                prio: slot.prio,
                seq: slot.seq,
                // A span closed without a dispatch (a recorder fed
                // directly, as some tests do) degenerates to exec-only.
                queued: if slot.dispatched {
                    slot.queued
                } else {
                    slot.start
                },
                data_ready: if slot.dispatched {
                    slot.data_ready
                } else {
                    slot.start
                },
                start: slot.start,
                end: slot.end,
            })
            .collect();
        spans.sort_by_key(|sp| (sp.start, sp.seq));
        ObsReport {
            n_workers,
            enabled: true,
            spans,
            counters: s.counters,
            failed_attempts: s.failed,
            worker_deaths: s.deaths,
        }
    }
}

/// Per-worker phase accounting over the run's makespan.
///
/// The four buckets partition the worker's timeline exactly:
/// `exec + transfer_wait + queue_wait + idle == makespan`.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerPhases {
    /// The worker.
    pub worker: WorkerId,
    /// Time executing tasks.
    pub exec: Time,
    /// Gap time attributable to waiting for the next task's data.
    pub transfer_wait: Time,
    /// Gap time while the next-started task sat startable in the queue.
    pub queue_wait: Time,
    /// Gap time with no dispatched next task (true starvation).
    pub idle: Time,
}

impl WorkerPhases {
    /// Sum of all four buckets (equals the report makespan).
    pub fn total(&self) -> Time {
        self.exec + self.transfer_wait + self.queue_wait + self.idle
    }
}

/// The finalized observability record of one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ObsReport {
    /// Number of workers on the run's platform.
    pub n_workers: usize,
    /// Whether the run actually recorded (a disabled sink reports `false`,
    /// with everything else empty).
    pub enabled: bool,
    /// One span per executed task, sorted by `(start, seq)`.
    pub spans: Vec<TaskSpan>,
    /// The counter registry.
    pub counters: ObsCounters,
    /// Failed attempts (resilient runs only), in recording order.
    pub failed_attempts: Vec<FailedAttempt>,
    /// Permanent worker losses as `(worker, death instant)` pairs.
    pub worker_deaths: Vec<(WorkerId, Time)>,
}

impl ObsReport {
    /// The empty (observability-disabled) report.
    pub fn empty(n_workers: usize) -> ObsReport {
        ObsReport {
            n_workers,
            ..ObsReport::default()
        }
    }

    /// Span of `task`, if it executed.
    pub fn span(&self, task: TaskId) -> Option<&TaskSpan> {
        self.spans.iter().find(|s| s.task == task)
    }

    /// Latest span end (zero when empty).
    pub fn makespan(&self) -> Time {
        self.spans.iter().map(|s| s.end).max().unwrap_or(Time::ZERO)
    }

    /// Spans of one worker, in start order.
    pub fn worker_spans(&self, worker: WorkerId) -> Vec<&TaskSpan> {
        self.spans.iter().filter(|s| s.worker == worker).collect()
    }

    /// Partition every worker's timeline into exec / transfer-wait /
    /// queue-wait / idle (see [`WorkerPhases`]). Each gap between
    /// executions is attributed by what the *next started* task on that
    /// worker was doing: not yet dispatched → `idle`; dispatched but its
    /// data in flight → `transfer_wait`; startable → `queue_wait`.
    pub fn worker_phases(&self) -> Vec<WorkerPhases> {
        let makespan = self.makespan();
        (0..self.n_workers)
            .map(|worker| {
                let spans = self.worker_spans(worker);
                let mut p = WorkerPhases {
                    worker,
                    ..WorkerPhases::default()
                };
                let mut cursor = Time::ZERO;
                for s in &spans {
                    if s.start > cursor {
                        // Attribute the gap [cursor, s.start).
                        let queued_at = s.queued.clamp(cursor, s.start);
                        let ready_at = s.data_ready.max(s.queued).clamp(queued_at, s.start);
                        p.idle += queued_at - cursor;
                        p.transfer_wait += ready_at - queued_at;
                        p.queue_wait += s.start - ready_at;
                    }
                    p.exec += s.end.saturating_sub(s.start.max(cursor));
                    cursor = cursor.max(s.end);
                }
                p.idle += makespan.saturating_sub(cursor);
                p
            })
            .collect()
    }

    /// Export as Chrome trace-event JSON (`chrome://tracing` /
    /// [Perfetto](https://ui.perfetto.dev) "JSON array format").
    ///
    /// Every event is a complete (`"ph":"X"`) slice or a counter sample
    /// (`"ph":"C"`), and always carries the full key set
    /// `ph, ts, dur, pid, tid, name, args` — the schema
    /// [`validate_chrome_trace`] pins. Timestamps are microseconds, `tid`
    /// is the worker id, and per-task `args` carry task id, phase, prio
    /// and enqueue seq.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut event = |out: &mut String,
                         ph: &str,
                         ts: Time,
                         dur: Time,
                         tid: usize,
                         name: &str,
                         args: &str| {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n{{\"ph\":\"{ph}\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{tid},\"name\":",
                micros(ts),
                micros(dur)
            );
            escape_into(name, out);
            let _ = write!(out, ",\"args\":{{{args}}}}}");
        };
        for s in &self.spans {
            let base = format!(
                "\"task\":{},\"kernel\":\"{}\",\"prio\":{},\"seq\":{}",
                s.task.index(),
                s.kernel.label(),
                s.prio,
                s.seq
            );
            let transfer = s.transfer_wait();
            let queue = s.queue_wait();
            if !transfer.is_zero() {
                event(
                    &mut out,
                    "X",
                    s.queued,
                    transfer,
                    s.worker,
                    &format!("{} #{} [transfer]", s.kernel.label(), s.task.index()),
                    &format!("{base},\"phase\":\"transfer\""),
                );
            }
            if !queue.is_zero() {
                event(
                    &mut out,
                    "X",
                    s.queued + transfer,
                    queue,
                    s.worker,
                    &format!("{} #{} [queued]", s.kernel.label(), s.task.index()),
                    &format!("{base},\"phase\":\"queued\""),
                );
            }
            event(
                &mut out,
                "X",
                s.start,
                s.exec(),
                s.worker,
                &format!("{} #{}", s.kernel.label(), s.task.index()),
                &format!("{base},\"phase\":\"exec\""),
            );
        }
        for a in &self.failed_attempts {
            event(
                &mut out,
                "X",
                a.start,
                a.end.saturating_sub(a.start),
                a.worker,
                &format!("{} #{} [retrying]", a.kernel.label(), a.task.index()),
                &format!(
                    "\"task\":{},\"kernel\":\"{}\",\"phase\":\"retrying\",\
                     \"attempt\":{},\"fault\":\"{}\"",
                    a.task.index(),
                    a.kernel.label(),
                    a.attempt,
                    a.kind
                ),
            );
        }
        for &(w, at) in &self.worker_deaths {
            event(
                &mut out,
                "i",
                at,
                Time::ZERO,
                w,
                "worker lost",
                &format!("\"worker\":{w},\"phase\":\"worker-lost\""),
            );
        }
        for (name, values) in [
            ("wakeups", &self.counters.wakeups),
            ("backfills", &self.counters.backfills),
            ("max_queue_depth", &self.counters.max_queue_depth),
        ] {
            for (w, &v) in values.iter().enumerate() {
                if v > 0 {
                    event(
                        &mut out,
                        "C",
                        Time::ZERO,
                        Time::ZERO,
                        w,
                        name,
                        &format!("\"value\":{v}"),
                    );
                }
            }
        }
        if !first {
            out.push('\n');
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// Render the per-worker utilization / idle-histogram text report —
    /// the numeric companion to the ASCII Gantt of
    /// [`crate::trace::Trace::gantt_ascii`].
    pub fn utilization_report(&self) -> String {
        let makespan = self.makespan();
        let mut out = String::new();
        let _ = writeln!(out, "# per-worker phase accounting (makespan {makespan})");
        let _ = writeln!(
            out,
            "{:>6} {:>9} {:>9} {:>9} {:>9} {:>6} {:>6} {:>8} {:>8} {:>5}",
            "worker",
            "exec%",
            "transfer%",
            "queued%",
            "idle%",
            "tasks",
            "wakeup",
            "backfill",
            "disp",
            "maxq"
        );
        let pct = |t: Time| {
            if makespan.is_zero() {
                0.0
            } else {
                100.0 * t.as_secs_f64() / makespan.as_secs_f64()
            }
        };
        for p in self.worker_phases() {
            let w = p.worker;
            let _ = writeln!(
                out,
                "{:>6} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>6} {:>6} {:>8} {:>8} {:>5}",
                w,
                pct(p.exec),
                pct(p.transfer_wait),
                pct(p.queue_wait),
                pct(p.idle),
                self.worker_spans(w).len(),
                self.counters.wakeups.get(w).copied().unwrap_or(0),
                self.counters.backfills.get(w).copied().unwrap_or(0),
                Kernel::ALL
                    .iter()
                    .map(|&k| self.counters.dispatched(w, k))
                    .sum::<u64>(),
                self.counters.max_queue_depth.get(w).copied().unwrap_or(0),
            );
        }
        let _ = writeln!(
            out,
            "transfers: {} ({} total)",
            self.counters.transfers, self.counters.transfer_time
        );
        if self.counters.failures > 0 || self.counters.workers_lost > 0 {
            let _ = writeln!(
                out,
                "faults: {} failed attempts, {} retries, {} workers lost",
                self.counters.failures, self.counters.retries, self.counters.workers_lost
            );
        }
        // Idle-gap histogram over all inter-execution gaps.
        const BUCKETS: [(&str, u64); 5] = [
            ("<100us", 100_000),
            ("<1ms", 1_000_000),
            ("<10ms", 10_000_000),
            ("<100ms", 100_000_000),
            (">=100ms", u64::MAX),
        ];
        let mut counts = [0u64; BUCKETS.len()];
        for worker in 0..self.n_workers {
            let mut cursor = Time::ZERO;
            for s in self.worker_spans(worker) {
                if s.start > cursor {
                    let gap = (s.start - cursor).as_nanos();
                    let b = BUCKETS.iter().position(|&(_, lim)| gap < lim).unwrap_or(4);
                    counts[b] += 1;
                }
                cursor = cursor.max(s.end);
            }
        }
        let _ = write!(out, "idle-gap histogram:");
        for (i, (label, _)) in BUCKETS.iter().enumerate() {
            let _ = write!(out, "  {label}: {}", counts[i]);
        }
        out.push('\n');
        out
    }

    /// Machine-readable summary JSON: makespan, per-worker phase
    /// accounting, and the counter registry (hand-rolled, like
    /// [`crate::metrics::Figure::to_json`]).
    pub fn summary_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"makespan_ns\":{},\"n_workers\":{},\"n_spans\":{},\"workers\":[",
            self.makespan().as_nanos(),
            self.n_workers,
            self.spans.len()
        );
        for (i, p) in self.worker_phases().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"worker\":{},\"exec_ns\":{},\"transfer_wait_ns\":{},\"queue_wait_ns\":{},\
                 \"idle_ns\":{},\"tasks\":{},\"wakeups\":{},\"backfills\":{},\"max_queue_depth\":{}}}",
                p.worker,
                p.exec.as_nanos(),
                p.transfer_wait.as_nanos(),
                p.queue_wait.as_nanos(),
                p.idle.as_nanos(),
                self.worker_spans(p.worker).len(),
                self.counters.wakeups.get(p.worker).copied().unwrap_or(0),
                self.counters.backfills.get(p.worker).copied().unwrap_or(0),
                self.counters
                    .max_queue_depth
                    .get(p.worker)
                    .copied()
                    .unwrap_or(0),
            );
        }
        let _ = write!(
            out,
            "],\"transfers\":{},\"transfer_ns\":{},\"failures\":{},\"retries\":{},\
             \"workers_lost\":{}}}",
            self.counters.transfers,
            self.counters.transfer_time.as_nanos(),
            self.counters.failures,
            self.counters.retries,
            self.counters.workers_lost
        );
        out
    }
}

/// Nanoseconds → microsecond JSON number (Chrome's native unit), emitted
/// without float noise: integral values print bare, the rest with the
/// exact sub-microsecond remainder.
fn micros(t: Time) -> String {
    let ns = t.as_nanos();
    if ns.is_multiple_of(1_000) {
        format!("{}", ns / 1_000)
    } else {
        format!("{}.{:03}", ns / 1_000, ns % 1_000)
    }
}

// ---------------------------------------------------------------------------
// Chrome-trace schema checker
// ---------------------------------------------------------------------------

// The JSON machinery the exporters and the schema checker use lived here
// until PR 8 consolidated every hand-rolled emitter/parser in the
// workspace into [`crate::json`]; re-exported so existing callers keep
// compiling.
pub use crate::json::{escape_into, parse_json, JsonValue};

/// The keys every exported trace event must carry — the pinned schema.
pub const CHROME_EVENT_KEYS: [&str; 7] = ["ph", "ts", "dur", "pid", "tid", "name", "args"];

/// Validate a Chrome-trace JSON document against the pinned schema:
/// a top-level object with a `traceEvents` array whose every element
/// carries all of [`CHROME_EVENT_KEYS`] with the right types (`ph`/`name`
/// strings, `ts`/`dur`/`pid`/`tid` finite non-negative numbers, `args` an
/// object). Returns the number of events.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc = parse_json(text)?;
    let events = doc.get("traceEvents").ok_or("missing key `traceEvents`")?;
    let JsonValue::Arr(events) = events else {
        return Err("`traceEvents` is not an array".into());
    };
    for (i, ev) in events.iter().enumerate() {
        for key in CHROME_EVENT_KEYS {
            let v = ev
                .get(key)
                .ok_or_else(|| format!("event {i}: missing key `{key}`"))?;
            let ok = match key {
                "ph" | "name" => matches!(v, JsonValue::Str(_)),
                "args" => matches!(v, JsonValue::Obj(_)),
                _ => matches!(v, JsonValue::Num(n) if n.is_finite() && *n >= 0.0),
            };
            if !ok {
                return Err(format!("event {i}: key `{key}` has the wrong type"));
            }
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        task: u32,
        worker: usize,
        queued: u64,
        data_ready: u64,
        start: u64,
        end: u64,
    ) -> TaskSpan {
        TaskSpan {
            task: TaskId(task),
            kernel: Kernel::Gemm,
            worker,
            prio: 0,
            seq: task as u64,
            queued: Time::from_millis(queued),
            data_ready: Time::from_millis(data_ready),
            start: Time::from_millis(start),
            end: Time::from_millis(end),
        }
    }

    fn demo_report() -> ObsReport {
        let mut counters = ObsCounters::sized(2);
        counters.wakeups[1] = 3;
        counters.max_queue_depth[0] = 2;
        ObsReport {
            n_workers: 2,
            enabled: true,
            // worker 0: idle [0,2), transfer [2,4), queue [4,5), exec [5,10)
            // worker 1: exec [0,8), idle [8,10)
            spans: vec![span(1, 1, 0, 0, 0, 8), span(0, 0, 2, 4, 5, 10)],
            counters,
            failed_attempts: Vec::new(),
            worker_deaths: Vec::new(),
        }
    }

    #[test]
    fn span_phase_segments_partition_the_span() {
        let s = span(0, 0, 2, 4, 5, 10);
        assert_eq!(s.transfer_wait(), Time::from_millis(2));
        assert_eq!(s.queue_wait(), Time::from_millis(1));
        assert_eq!(s.exec(), Time::from_millis(5));
        assert_eq!(
            s.transfer_wait() + s.queue_wait() + s.exec(),
            s.end - s.queued
        );
        // Data that arrives only after start clamps to the start.
        let late = span(0, 0, 0, 7, 5, 10);
        assert_eq!(late.transfer_wait(), Time::from_millis(5));
        assert_eq!(late.queue_wait(), Time::ZERO);
    }

    #[test]
    fn worker_phases_partition_the_makespan() {
        let r = demo_report();
        let phases = r.worker_phases();
        assert_eq!(r.makespan(), Time::from_millis(10));
        for p in &phases {
            assert_eq!(p.total(), r.makespan(), "worker {}", p.worker);
        }
        assert_eq!(phases[0].idle, Time::from_millis(2));
        assert_eq!(phases[0].transfer_wait, Time::from_millis(2));
        assert_eq!(phases[0].queue_wait, Time::from_millis(1));
        assert_eq!(phases[0].exec, Time::from_millis(5));
        assert_eq!(phases[1].exec, Time::from_millis(8));
        assert_eq!(phases[1].idle, Time::from_millis(2));
    }

    #[test]
    fn disabled_sink_reports_empty() {
        let mut sink = ObsSink::disabled();
        assert!(!sink.is_enabled());
        sink.prepare(4, 10);
        sink.count_wakeup(0);
        sink.count_backfill(0, 1);
        let r = sink.finish(4, &[]);
        assert!(!r.enabled);
        assert!(r.spans.is_empty());
        assert_eq!(r, ObsReport::empty(4));
    }

    #[test]
    fn enabled_sink_records_spans_and_counters() {
        let mut sink = ObsSink::enabled();
        sink.prepare(2, 2);
        let qe = QueueEvent {
            worker: 1,
            task: TaskId(0),
            prio: 7,
            seq: 0,
            at: Time::from_millis(1),
            data_ready: Time::from_millis(3),
        };
        sink.on_dispatch(Kernel::Trsm, &qe, 1);
        sink.on_exec(
            TaskId(0),
            Kernel::Trsm,
            1,
            Time::from_millis(4),
            Time::from_millis(9),
        );
        sink.count_wakeup(1);
        sink.count_backfill(1, 2);
        sink.count_backfill(1, 0); // not a backfill
        let r = sink.finish(2, &[]);
        assert!(r.enabled);
        assert_eq!(r.spans.len(), 1);
        let s = r.span(TaskId(0)).unwrap();
        assert_eq!(s.worker, 1);
        assert_eq!(s.prio, 7);
        assert_eq!(s.queued, Time::from_millis(1));
        assert_eq!(s.data_ready, Time::from_millis(3));
        assert_eq!(s.exec(), Time::from_millis(5));
        assert_eq!(r.counters.dispatched(1, Kernel::Trsm), 1);
        assert_eq!(r.counters.total_dispatched(), 1);
        assert_eq!(r.counters.wakeups[1], 1);
        assert_eq!(r.counters.backfills[1], 1);
        assert_eq!(r.counters.max_queue_depth[1], 1);
    }

    #[test]
    fn chrome_trace_validates_against_pinned_schema() {
        let r = demo_report();
        let json = r.to_chrome_trace();
        let n = validate_chrome_trace(&json).expect("schema-valid");
        // worker-0 span: transfer + queued + exec; worker-1 span: exec;
        // plus two counter events (wakeups, max_queue_depth).
        assert_eq!(n, 6);
        // The document genuinely loads.
        let doc = parse_json(&json).unwrap();
        let JsonValue::Arr(evs) = doc.get("traceEvents").unwrap() else {
            panic!("traceEvents not an array");
        };
        assert!(evs
            .iter()
            .any(|e| e.get("name") == Some(&JsonValue::Str("GEMM #0 [transfer]".into()))));
        assert!(evs
            .iter()
            .any(|e| matches!(e.get("args").unwrap().get("phase"),
                              Some(JsonValue::Str(p)) if p == "exec")));
    }

    #[test]
    fn chrome_trace_of_empty_report_is_valid() {
        assert_eq!(
            validate_chrome_trace(&ObsReport::empty(3).to_chrome_trace()),
            Ok(0)
        );
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":7}").is_err());
        // An event missing `dur` must be rejected.
        let bad = "{\"traceEvents\":[{\"ph\":\"X\",\"ts\":0,\"pid\":0,\"tid\":0,\
                    \"name\":\"x\",\"args\":{}}]}";
        let err = validate_chrome_trace(bad).unwrap_err();
        assert!(err.contains("dur"), "{err}");
        // Wrong type: ph must be a string.
        let bad = "{\"traceEvents\":[{\"ph\":3,\"ts\":0,\"dur\":0,\"pid\":0,\"tid\":0,\
                    \"name\":\"x\",\"args\":{}}]}";
        assert!(validate_chrome_trace(bad).is_err());
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let v = parse_json("{\"a\": [1, -2.5e1, \"q\\\"\\u0041\", null, true, {}]}").unwrap();
        let JsonValue::Arr(items) = v.get("a").unwrap() else {
            panic!()
        };
        assert_eq!(items[0], JsonValue::Num(1.0));
        assert_eq!(items[1], JsonValue::Num(-25.0));
        assert_eq!(items[2], JsonValue::Str("q\"A".into()));
        assert_eq!(items[3], JsonValue::Null);
        assert_eq!(items[4], JsonValue::Bool(true));
        assert!(parse_json("{\"a\":1} trailing").is_err());
        assert!(parse_json("[1,]").is_err());
    }

    #[test]
    fn utilization_report_and_summary_json() {
        let r = demo_report();
        let text = r.utilization_report();
        assert!(text.contains("phase accounting"));
        assert!(text.contains("idle-gap histogram"));
        let summary = r.summary_json();
        let doc = parse_json(&summary).expect("summary is valid JSON");
        assert_eq!(doc.get("makespan_ns"), Some(&JsonValue::Num(10_000_000.0)));
        let JsonValue::Arr(workers) = doc.get("workers").unwrap() else {
            panic!()
        };
        assert_eq!(workers.len(), 2);
        // Phase accounting in the summary sums to the makespan.
        for w in workers {
            let ns = |k: &str| match w.get(k) {
                Some(JsonValue::Num(n)) => *n,
                _ => panic!("missing {k}"),
            };
            assert_eq!(
                ns("exec_ns") + ns("transfer_wait_ns") + ns("queue_wait_ns") + ns("idle_ns"),
                10_000_000.0
            );
        }
    }

    #[test]
    fn micros_formatting_is_exact() {
        assert_eq!(micros(Time::from_millis(1)), "1000");
        assert_eq!(micros(Time::from_nanos(1_500)), "1.500");
        assert_eq!(micros(Time::from_nanos(999)), "0.999");
        assert_eq!(micros(Time::ZERO), "0");
    }
}
