//! Deterministic content hashing for cache keys.
//!
//! The serving layer (`hetchol-serve`, DESIGN.md §15) caches expensive
//! derived objects — calibrated platform/profile pairs, [`crate::metrics`]
//! figures, bound sets — keyed by the *content* of the request that
//! produced them, so two jobs asking the same question share one
//! computation. Content keys must be stable across processes and platform
//! builds, which rules out `std::hash::DefaultHasher` (its seed is
//! unspecified); this module pins FNV-1a 64, folded byte by byte.
//!
//! Hashes are identifiers, not security: FNV is trivially forgeable and
//! is only ever fed trusted, already-validated job specs.
//!
//! ```
//! use hetchol_core::hash::ContentHasher;
//!
//! let mut h = ContentHasher::new();
//! h.write_str("dmdas");
//! h.write_u64(8);
//! let a = h.finish();
//! assert_eq!(a, {
//!     let mut h = ContentHasher::new();
//!     h.write_str("dmdas");
//!     h.write_u64(8);
//!     h.finish()
//! });
//! ```

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64 hasher with typed `write_*` helpers.
///
/// Every helper folds a length/tag-unambiguous byte encoding, so
/// `write_str("ab"); write_str("c")` and `write_str("a"); write_str("bc")`
/// produce different hashes.
#[derive(Clone, Debug)]
pub struct ContentHasher {
    state: u64,
}

impl Default for ContentHasher {
    fn default() -> Self {
        ContentHasher::new()
    }
}

impl ContentHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> ContentHasher {
        ContentHasher { state: FNV_OFFSET }
    }

    /// Fold raw bytes (no length prefix; prefer the typed helpers).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Fold a `u64` as 8 little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Fold a `usize` (widened to `u64` so 32- and 64-bit builds agree).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Fold an `f64` by its exact bit pattern (NaN payloads included —
    /// content equality, not numeric equality).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Fold a string: length prefix, then bytes.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The current 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Hash a canonical string encoding in one call — the job API hashes the
/// canonical JSON of a spec this way.
pub fn content_hash_str(s: &str) -> u64 {
    let mut h = ContentHasher::new();
    h.write_str(s);
    h.finish()
}

/// Render a content hash the way the wire format carries it: 16 lowercase
/// hex digits (JSON numbers are only exact to 2⁵³ — see [`crate::json`]).
pub fn hash_hex(h: u64) -> String {
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vector() {
        // FNV-1a 64 of the empty input is the offset basis; of "a" it is
        // the published 0xaf63dc4c8601ec8c.
        assert_eq!(ContentHasher::new().finish(), FNV_OFFSET);
        let mut h = ContentHasher::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn typed_writes_are_unambiguous() {
        let mut a = ContentHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = ContentHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex_rendering_is_stable() {
        assert_eq!(hash_hex(0xdead_beef), "00000000deadbeef");
        assert_eq!(
            hash_hex(content_hash_str("x")),
            hash_hex(content_hash_str("x"))
        );
    }
}
