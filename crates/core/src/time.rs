//! Deterministic time arithmetic.
//!
//! Both the discrete-event simulator and the makespan bounds need a time
//! representation with total ordering and exact arithmetic, so that repeated
//! simulations of the same scenario are bit-for-bit reproducible. We use a
//! nanosecond-resolution unsigned integer: at 1 ns resolution a `u64` spans
//! ~585 years, far beyond any simulated makespan, while kernel durations in
//! the hundreds of microseconds keep full precision.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (simulated or measured) time, or a duration, in nanoseconds.
///
/// `Time` is used for both instants and durations; the scheduling literature
/// the paper builds on (makespans, bottom levels, completion-time estimates)
/// freely mixes the two and the extra type safety of separating them buys
/// little here.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// The zero instant / empty duration.
    pub const ZERO: Time = Time(0);
    /// The maximum representable time; used as "+infinity" in longest-path
    /// and earliest-finish computations.
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Time(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Time(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Time(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Time(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Negative and non-finite inputs saturate to zero: they only arise from
    /// numerical noise in bound computations, where clamping is the correct
    /// interpretation of "no earlier than now".
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return Time::ZERO;
        }
        Time((s * 1e9).round() as u64)
    }

    /// Construct from fractional milliseconds (the natural unit for tile
    /// kernels at `nb = 960`).
    #[inline]
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms * 1e-3)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// `true` iff this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: `a.saturating_sub(b)` is zero when `b > a`.
    #[inline]
    pub const fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, `None` on overflow. Useful when accumulating onto
    /// `Time::MAX` sentinels in longest-path computations.
    #[inline]
    pub const fn checked_add(self, rhs: Time) -> Option<Time> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Time(v)),
            None => None,
        }
    }

    /// Saturating addition (overflow clamps to `Time::MAX`).
    #[inline]
    pub const fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// Multiply a duration by a dimensionless `f64` factor (e.g. jitter),
    /// rounding to the nearest nanosecond and clamping at zero.
    #[inline]
    pub fn scale(self, factor: f64) -> Time {
        Time::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// The maximum of two times.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The minimum of two times.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0.checked_add(rhs.0).expect("Time addition overflowed"))
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(
            self.0
                .checked_sub(rhs.0)
                .expect("Time subtraction underflowed"),
        )
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(
            self.0
                .checked_mul(rhs)
                .expect("Time multiplication overflowed"),
        )
    }
}

impl Div<u64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == u64::MAX {
            write!(f, "+inf")
        } else if ns >= 1_000_000_000 {
            write!(f, "{:.6}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(Time::from_millis(104).as_millis_f64(), 104.0);
        assert_eq!(Time::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(Time::from_micros(7).as_nanos(), 7_000);
        let t = Time::from_secs_f64(0.186);
        assert!((t.as_secs_f64() - 0.186).abs() < 1e-12);
    }

    #[test]
    fn from_secs_f64_clamps_garbage() {
        assert_eq!(Time::from_secs_f64(-1.0), Time::ZERO);
        assert_eq!(Time::from_secs_f64(f64::NAN), Time::ZERO);
        assert_eq!(Time::from_secs_f64(f64::NEG_INFINITY), Time::ZERO);
        assert_eq!(Time::from_secs_f64(0.0), Time::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_millis(10);
        let b = Time::from_millis(4);
        assert_eq!(a + b, Time::from_millis(14));
        assert_eq!(a - b, Time::from_millis(6));
        assert_eq!(a * 3, Time::from_millis(30));
        assert_eq!(a / 2, Time::from_millis(5));
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        assert_eq!(Time::MAX.saturating_add(a), Time::MAX);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn strict_sub_panics() {
        let _ = Time::from_millis(1) - Time::from_millis(2);
    }

    #[test]
    fn scale_rounds_and_clamps() {
        let a = Time::from_millis(100);
        assert_eq!(a.scale(0.5), Time::from_millis(50));
        assert_eq!(a.scale(-3.0), Time::ZERO);
        // 1/11th of 104 ms, rounded to nearest ns
        let t = Time::from_millis(104).scale(1.0 / 11.0);
        assert!((t.as_millis_f64() - 104.0 / 11.0).abs() < 1e-6);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = Time::from_millis(3);
        let b = Time::from_millis(5);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(Time::ZERO.max(Time::MAX), Time::MAX);
    }

    #[test]
    fn sum_of_durations() {
        let total: Time = (1..=4).map(Time::from_millis).sum();
        assert_eq!(total, Time::from_millis(10));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", Time::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", Time::from_micros(3)), "3.000us");
        assert_eq!(format!("{}", Time::from_millis(9)), "9.000ms");
        assert_eq!(format!("{}", Time::from_secs(2)), "2.000000s");
        assert_eq!(format!("{}", Time::MAX), "+inf");
    }
}
