//! Property tests for the execution core's dependency tracker: on random
//! factorization DAGs, driven in arbitrary ready-set orders, every task is
//! released exactly once and never before all of its predecessors.

use hetchol_core::dag::TaskGraph;
use hetchol_core::exec::DepTracker;
use hetchol_core::task::TaskId;
use proptest::prelude::*;

/// Drain the tracker with an adversarial ready-pick policy: at each step
/// pick the `(seed + step)`-th ready task (mod ready-set size), so many
/// different valid topological executions are exercised across cases.
fn drain(graph: &TaskGraph, seed: u64) -> Result<Vec<TaskId>, String> {
    let mut deps = DepTracker::new(graph);
    let mut ready = deps.initial_ready();
    let mut order = Vec::with_capacity(graph.len());
    let mut done = vec![false; graph.len()];
    let mut step = seed;
    while let Some(&task) = {
        let len = ready.len();
        (len > 0).then(|| &ready[(step as usize) % len])
    } {
        ready.swap_remove((step as usize) % ready.len());
        step = step.wrapping_add(1);
        // Precedence: every predecessor must already have executed.
        for &p in graph.predecessors(task) {
            if !done[p.index()] {
                return Err(format!("{task:?} released before predecessor {p:?}"));
            }
        }
        if done[task.index()] {
            return Err(format!("{task:?} released twice"));
        }
        done[task.index()] = true;
        order.push(task);
        ready.extend(deps.release(graph, task));
    }
    if !deps.is_done() {
        return Err(format!("{} tasks never became ready", deps.remaining()));
    }
    Ok(order)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exactly-once release + precedence, over Cholesky/LU/QR DAGs of
    /// varying size and arbitrary ready-pick orders.
    #[test]
    fn every_task_released_exactly_once_respecting_preds(
        n in 1usize..7,
        algo in 0u8..3,
        seed in 0u64..1_000_000,
    ) {
        let graph = match algo {
            0 => TaskGraph::cholesky(n),
            1 => TaskGraph::lu(n),
            _ => TaskGraph::qr(n),
        };
        let order = drain(&graph, seed).map_err(|e| e.to_string())?;
        prop_assert_eq!(order.len(), graph.len());
    }

    /// The initial ready set is exactly the indegree-zero tasks.
    #[test]
    fn initial_ready_is_the_indegree_zero_set(n in 1usize..8) {
        let graph = TaskGraph::cholesky(n);
        let deps = DepTracker::new(&graph);
        let mut ready = deps.initial_ready();
        ready.sort();
        let mut expect: Vec<TaskId> = graph
            .indegrees()
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == 0)
            .map(|(i, _)| TaskId(i as u32))
            .collect();
        expect.sort();
        prop_assert_eq!(ready, expect);
    }

    /// Releasing in two different valid orders completes the same task set
    /// (the tracker carries no order-dependent state across runs).
    #[test]
    fn any_valid_order_drains_the_whole_graph(n in 1usize..6, seed in 0u64..1_000_000) {
        let graph = TaskGraph::cholesky(n);
        let mut a = drain(&graph, seed).map_err(|e| e.to_string())?;
        let mut b = drain(&graph, seed.wrapping_add(1)).map_err(|e| e.to_string())?;
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }
}
