//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::{Mutex, Condvar}` behind `parking_lot`'s
//! non-poisoning API (guards returned directly from `lock`, `Condvar::wait`
//! taking `&mut MutexGuard`). Poisoned locks are recovered transparently —
//! matching `parking_lot`, which has no poisoning at all.
//!
//! In addition the shim is *instrumentable*: the [`explore`] module lets a
//! model checker (the `hetchol-analyze` interleaving explorer) interpose on
//! every lock acquire/release, condvar wait and notify performed by threads
//! that opted in via [`explore::checkin`]. With no hook installed a single
//! relaxed atomic load is the only overhead.

use std::ops::{Deref, DerefMut};
use std::sync;

pub mod explore {
    //! Optional exploration hook for deterministic interleaving search.
    //!
    //! A model checker installs an [`ExploreHook`] with [`install`]; worker
    //! threads that want to be *controlled* call [`checkin`] once at
    //! startup. From then on every `Mutex::lock`, guard drop,
    //! `Condvar::wait` and notify performed by a checked-in thread reports
    //! a kind-tagged [`SyncEvent`] to the hook — and, crucially, a
    //! controlled `Condvar::wait` never touches the real condvar: the shim
    //! releases the real lock, parks the thread inside the hook's
    //! [`SyncEvent::Wait`] handling (where the explorer models the wait
    //! and decides when — and whether — the thread resumes), then
    //! reacquires the real lock. This gives the explorer full authority
    //! over wakeup order, which is what makes lost-wakeup bugs observable
    //! as model deadlocks instead of 60-second test hangs.
    //!
    //! The single-event-stream shape (rather than one method per
    //! operation) is what lets a hook feed the events straight into a
    //! happens-before model: a DPOR explorer keeps one vector clock per
    //! thread and per sync object and joins them on each event, so the
    //! event must carry the operation kind and the object identities
    //! together.
    //!
    //! The hook's blocking discipline (one running thread at a time, DFS
    //! over decision points, sleep sets or DPOR…) lives entirely in the
    //! installer; the shim only guarantees the delivery order below:
    //!
    //! * [`SyncEvent::Acquire`] is delivered **before** the real acquire —
    //!   the hook must block until its model says the mutex is free for
    //!   this thread;
    //! * [`SyncEvent::Release`] is delivered **after** the real release;
    //! * [`SyncEvent::Wait`] is delivered with the real lock **released**;
    //!   when the hook returns the shim reacquires the real lock directly
    //!   (no second `Acquire` event) — the hook must model wait +
    //!   reacquisition atomically;
    //! * [`SyncEvent::Notify`] is delivered before the real notify (a
    //!   no-op for controlled waiters, which never sleep on the real
    //!   condvar);
    //! * [`SyncEvent::ThreadExit`] fires from a TLS destructor when a
    //!   checked-in thread terminates, however it terminates (return or
    //!   unwind).
    //!
    //! Threads that never call [`checkin`] (e.g. the main thread) are
    //! invisible to the hook and use the primitives at full speed.

    use std::cell::{Cell, RefCell};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex as StdMutex};

    /// One synchronization operation performed by a checked-in thread.
    ///
    /// Sync objects are identified by their stable address (see the
    /// `addr` helper); the enum carries exactly the metadata a
    /// happens-before model needs: which objects were touched and how.
    #[derive(Copy, Clone, Debug, PartialEq, Eq)]
    pub enum SyncEvent {
        /// A worker thread registered itself under worker id `worker`.
        Checkin {
            /// The runtime-chosen worker id for this thread.
            worker: usize,
        },
        /// The thread is about to acquire `mutex`.
        Acquire {
            /// Identity of the mutex being acquired.
            mutex: usize,
        },
        /// The thread released `mutex`.
        Release {
            /// Identity of the mutex that was released.
            mutex: usize,
        },
        /// The thread waits on `condvar`, having released `mutex`; the
        /// hook returns once the model has woken the thread *and*
        /// re-granted `mutex`.
        Wait {
            /// Identity of the condvar being waited on.
            condvar: usize,
            /// Identity of the mutex released for the wait's duration.
            mutex: usize,
        },
        /// The thread notified `condvar` (`all` distinguishes
        /// `notify_all` from `notify_one`).
        Notify {
            /// Identity of the notified condvar.
            condvar: usize,
            /// `true` for `notify_all`, `false` for `notify_one`.
            all: bool,
        },
        /// The checked-in thread registered as `worker` is terminating.
        /// Delivered from a TLS destructor, so the hook must not rely on
        /// its own thread-locals here — hence the explicit id.
        ThreadExit {
            /// The worker id the exiting thread checked in under.
            worker: usize,
        },
    }

    /// The callback a model checker implements to control checked-in
    /// threads.
    ///
    /// `on_event` is invoked on the checked-in thread itself; it is
    /// allowed to block (that is the point) and to panic (the explorer's
    /// abort path — the panic unwinds the worker thread).
    pub trait ExploreHook: Send + Sync {
        /// A checked-in thread performed the synchronization operation
        /// `event`. See the module docs for the delivery-order contract.
        fn on_event(&self, event: SyncEvent);
    }

    static ACTIVE: AtomicBool = AtomicBool::new(false);
    static HOOK: StdMutex<Option<Arc<dyn ExploreHook>>> = StdMutex::new(None);

    thread_local! {
        static CONTROLLED: Cell<bool> = const { Cell::new(false) };
        static EXIT_GUARD: RefCell<Option<ExitGuard>> = const { RefCell::new(None) };
    }

    struct ExitGuard(Arc<dyn ExploreHook>, usize);

    impl Drop for ExitGuard {
        fn drop(&mut self) {
            let _ = CONTROLLED.try_with(|c| c.set(false));
            self.0.on_event(SyncEvent::ThreadExit { worker: self.1 });
        }
    }

    /// Install `hook` and start instrumenting checked-in threads.
    ///
    /// The registry is process-global: callers running under a test
    /// harness must serialize sessions themselves.
    pub fn install(hook: Arc<dyn ExploreHook>) {
        *HOOK.lock().unwrap_or_else(|e| e.into_inner()) = Some(hook);
        ACTIVE.store(true, Ordering::Release);
    }

    /// Remove the hook; threads checked in afterwards run uninstrumented.
    pub fn uninstall() {
        ACTIVE.store(false, Ordering::Release);
        *HOOK.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }

    /// Register the current thread as controlled worker `worker`.
    ///
    /// A no-op when no hook is installed, so runtimes can call it
    /// unconditionally. Installs a TLS guard that reports thread exit.
    pub fn checkin(worker: usize) {
        if !ACTIVE.load(Ordering::Acquire) {
            return;
        }
        let Some(hook) = HOOK.lock().unwrap_or_else(|e| e.into_inner()).clone() else {
            return;
        };
        CONTROLLED.with(|c| c.set(true));
        EXIT_GUARD.with(|g| *g.borrow_mut() = Some(ExitGuard(hook.clone(), worker)));
        hook.on_event(SyncEvent::Checkin { worker });
    }

    /// The hook, iff one is installed *and* the current thread checked in.
    pub(crate) fn current() -> Option<Arc<dyn ExploreHook>> {
        if !ACTIVE.load(Ordering::Acquire) {
            return None;
        }
        if !CONTROLLED.try_with(|c| c.get()).unwrap_or(false) {
            return None;
        }
        HOOK.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Stable identity of a sync object: its address.
    pub(crate) fn addr<T: ?Sized>(x: &T) -> usize {
        x as *const T as *const () as usize
    }
}

/// A mutual-exclusion primitive (non-poisoning `lock` API).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard of a locked [`Mutex`].
///
/// Holds the underlying std guard in an `Option` so [`Condvar::wait`] can
/// move it through `std`'s by-value wait and put it back, plus a backref
/// to the owning mutex so the exploration hook can identify the lock on
/// release and reacquire it after a controlled wait.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
    owner: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if let Some(hook) = explore::current() {
            // The hook blocks until its model grants this thread the lock;
            // the real acquire below then succeeds without contention.
            hook.on_event(explore::SyncEvent::Acquire {
                mutex: explore::addr(self),
            });
        }
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(|e| e.into_inner())),
            owner: self,
        }
    }

    /// Try to acquire the lock without blocking.
    ///
    /// Not a schedule point for the exploration hook (the runtime under
    /// test never uses it on controlled threads).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard {
                inner: Some(g),
                owner: self,
            }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
                owner: self,
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard live outside wait")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        let inner = self.inner.take();
        let was_locked = inner.is_some();
        drop(inner); // real release happens first…
        if was_locked {
            if let Some(hook) = explore::current() {
                // …then the model release, so a thread the explorer
                // schedules next never blocks on the real lock.
                hook.on_event(explore::SyncEvent::Release {
                    mutex: explore::addr(self.owner),
                });
            }
        }
    }
}

/// A reader-writer lock (non-poisoning `read`/`write` API).
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking until available.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access, blocking until available.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A condition variable with `parking_lot`'s `&mut guard` wait API.
#[derive(Default, Debug)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Atomically release the guard's lock and wait for a notification,
    /// reacquiring the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard live outside wait");
        if let Some(hook) = explore::current() {
            // Controlled wait: never sleep on the real condvar. Release
            // the real lock, park inside the hook (which models the wait
            // and the reacquisition), then retake the real lock directly.
            drop(inner);
            hook.on_event(explore::SyncEvent::Wait {
                condvar: explore::addr(self),
                mutex: explore::addr(guard.owner),
            });
            guard.inner = Some(guard.owner.0.lock().unwrap_or_else(|e| e.into_inner()));
            return;
        }
        let reacquired = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(reacquired);
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        if let Some(hook) = explore::current() {
            hook.on_event(explore::SyncEvent::Notify {
                condvar: explore::addr(self),
                all: false,
            });
        }
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        if let Some(hook) = explore::current() {
            hook.on_event(explore::SyncEvent::Notify {
                condvar: explore::addr(self),
                all: true,
            });
        }
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn lock_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contention() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!((*r1).len() + (*r2).len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiters() {
        let m = Mutex::new(0usize);
        let cv = Condvar::new();
        let woken = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    let mut g = m.lock();
                    while *g == 0 {
                        cv.wait(&mut g);
                    }
                    woken.fetch_add(1, Ordering::SeqCst);
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(30));
            *m.lock() = 1;
            cv.notify_all();
        });
        assert_eq!(woken.load(Ordering::SeqCst), 3);
    }
}
