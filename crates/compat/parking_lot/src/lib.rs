//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::{Mutex, Condvar}` behind `parking_lot`'s
//! non-poisoning API (guards returned directly from `lock`, `Condvar::wait`
//! taking `&mut MutexGuard`). Poisoned locks are recovered transparently —
//! matching `parking_lot`, which has no poisoning at all.
//!
//! In addition the shim is *instrumentable*: the [`explore`] module lets a
//! model checker (the `hetchol-analyze` interleaving explorer) interpose on
//! every lock acquire/release, condvar wait and notify performed by threads
//! that opted in via [`explore::checkin`] — or, in *passive* mode
//! ([`explore::install_passive`]), record the same event stream from every
//! thread in the process without perturbing scheduling, which is what a
//! happens-before race detector consumes. With no hook installed a single
//! relaxed atomic load is the only overhead.
//!
//! The [`channel`] module provides an mpsc-compatible channel built on the
//! shim's own `Mutex` + `Condvar`, so message passing is visible to both
//! the model checker and the happens-before recorder as `Send`/`Recv`
//! events plus the underlying lock traffic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::Duration;

pub mod explore {
    //! Optional exploration hook for deterministic interleaving search and
    //! passive happens-before recording.
    //!
    //! Two modes share one [`ExploreHook`] event stream:
    //!
    //! **Controlled** ([`install`]): a model checker installs the hook;
    //! worker threads that want to be *controlled* call [`checkin`] once at
    //! startup. From then on every `Mutex::lock`, guard drop,
    //! `Condvar::wait` and notify performed by a checked-in thread reports
    //! a kind-tagged [`SyncEvent`] to the hook — and, crucially, a
    //! controlled `Condvar::wait` never touches the real condvar: the shim
    //! releases the real lock, parks the thread inside the hook's
    //! [`SyncEvent::Wait`] handling (where the explorer models the wait
    //! and decides when — and whether — the thread resumes), then
    //! reacquires the real lock. This gives the explorer full authority
    //! over wakeup order, which is what makes lost-wakeup bugs observable
    //! as model deadlocks instead of 60-second test hangs.
    //!
    //! **Passive** ([`install_passive`]): every thread in the process —
    //! checked in or not — reports the same events, but the shim never
    //! parks inside the hook and never reorders anything; threads run at
    //! real-time speed under the OS scheduler. So that the serialized
    //! event order a passive hook observes is consistent with the real
    //! lock order, the delivery points flip relative to controlled mode:
    //! `Acquire` is delivered *after* the real acquire (while holding the
    //! lock) and `Release` *before* the real release (still holding it).
    //! A passive wait additionally reports [`SyncEvent::WakeAcquire`]
    //! after the real reacquisition.
    //!
    //! The single-event-stream shape (rather than one method per
    //! operation) is what lets a hook feed the events straight into a
    //! happens-before model: the recorder keeps one vector clock per
    //! thread and per sync object and joins them on each event, so the
    //! event must carry the operation kind and the object identities
    //! together.
    //!
    //! The hook's blocking discipline (one running thread at a time, DFS
    //! over decision points, sleep sets or DPOR…) lives entirely in the
    //! installer; the shim only guarantees the delivery order below for
    //! **controlled** threads:
    //!
    //! * [`SyncEvent::Acquire`] is delivered **before** the real acquire —
    //!   the hook must block until its model says the mutex is free for
    //!   this thread;
    //! * [`SyncEvent::Release`] is delivered **after** the real release;
    //! * [`SyncEvent::Wait`] is delivered with the real lock **released**;
    //!   when the hook returns the shim reacquires the real lock directly
    //!   (no second `Acquire` event) — the hook must model wait +
    //!   reacquisition atomically;
    //! * [`SyncEvent::Notify`] is delivered before the real notify (a
    //!   no-op for controlled waiters, which never sleep on the real
    //!   condvar);
    //! * [`SyncEvent::ThreadExit`] fires from a TLS destructor when a
    //!   checked-in thread terminates, however it terminates (return or
    //!   unwind).
    //!
    //! Threads that never call [`checkin`] (e.g. the main thread) are
    //! invisible to a controlled hook and use the primitives at full
    //! speed; in passive mode every thread is visible.

    use std::cell::{Cell, RefCell};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex as StdMutex};

    /// One synchronization operation performed by an instrumented thread.
    ///
    /// Sync objects are identified by their stable address (see [`addr`]);
    /// the enum carries exactly the metadata a happens-before model
    /// needs: which objects were touched and how.
    #[derive(Copy, Clone, Debug, PartialEq, Eq)]
    pub enum SyncEvent {
        /// A worker thread registered itself under worker id `worker`.
        Checkin {
            /// The runtime-chosen worker id for this thread.
            worker: usize,
        },
        /// Controlled mode: the thread is about to acquire `mutex`.
        /// Passive mode: the thread just acquired `mutex`.
        Acquire {
            /// Identity of the mutex being acquired.
            mutex: usize,
        },
        /// Controlled mode: the thread released `mutex`. Passive mode:
        /// the thread is about to release `mutex` (still holding it).
        Release {
            /// Identity of the mutex that was released.
            mutex: usize,
        },
        /// The thread waits on `condvar`, having released (controlled) or
        /// being about to release (passive) `mutex`. In controlled mode
        /// the hook returns once the model has woken the thread *and*
        /// re-granted `mutex`; in passive mode the reacquisition is
        /// reported separately as [`SyncEvent::WakeAcquire`].
        Wait {
            /// Identity of the condvar being waited on.
            condvar: usize,
            /// Identity of the mutex released for the wait's duration.
            mutex: usize,
        },
        /// Passive mode only: a waiter woke from `condvar` and reacquired
        /// `mutex` (delivered holding the lock). Never emitted for
        /// controlled threads — their `Wait` models the reacquisition.
        WakeAcquire {
            /// Identity of the condvar the thread was waiting on.
            condvar: usize,
            /// Identity of the mutex just reacquired.
            mutex: usize,
        },
        /// The thread notified `condvar` (`all` distinguishes
        /// `notify_all` from `notify_one`).
        Notify {
            /// Identity of the notified condvar.
            condvar: usize,
            /// `true` for `notify_all`, `false` for `notify_one`.
            all: bool,
        },
        /// The thread enqueued a message on channel `chan` (delivered
        /// while holding the channel's state lock).
        Send {
            /// Identity of the channel.
            chan: usize,
        },
        /// The thread dequeued a message from channel `chan` (delivered
        /// while holding the channel's state lock).
        Recv {
            /// Identity of the channel.
            chan: usize,
        },
        /// A declared shared-state touchpoint: application code announced
        /// it is reading (`write == false`) or writing (`write == true`)
        /// the logical object named `obj`. Consumed by the
        /// happens-before race detector; a no-op for the model checker.
        Touch {
            /// Stable logical name of the shared state.
            obj: &'static str,
            /// `true` for a write access, `false` for a read.
            write: bool,
        },
        /// A human-readable label for sync object `obj`, for reports.
        Label {
            /// Identity of the labelled sync object.
            obj: usize,
            /// The label to display instead of a raw address-derived id.
            label: &'static str,
        },
        /// The checked-in thread registered as `worker` is terminating.
        /// Delivered from a TLS destructor, so the hook must not rely on
        /// its own thread-locals here — hence the explicit id.
        ThreadExit {
            /// The worker id the exiting thread checked in under.
            worker: usize,
        },
    }

    /// The callback a model checker or recorder implements to observe
    /// (and, in controlled mode, control) instrumented threads.
    ///
    /// `on_event` is invoked on the instrumented thread itself; it is
    /// allowed to block (that is the point of controlled mode) and to
    /// panic (the explorer's abort path — the panic unwinds the worker
    /// thread). A passive hook must not block.
    pub trait ExploreHook: Send + Sync {
        /// An instrumented thread performed the synchronization operation
        /// `event`. See the module docs for the delivery-order contract.
        fn on_event(&self, event: SyncEvent);
    }

    static ACTIVE: AtomicBool = AtomicBool::new(false);
    static PASSIVE: AtomicBool = AtomicBool::new(false);
    static HOOK: StdMutex<Option<Arc<dyn ExploreHook>>> = StdMutex::new(None);

    thread_local! {
        static CONTROLLED: Cell<bool> = const { Cell::new(false) };
        static EXIT_GUARD: RefCell<Option<ExitGuard>> = const { RefCell::new(None) };
    }

    struct ExitGuard(Arc<dyn ExploreHook>, usize);

    impl Drop for ExitGuard {
        fn drop(&mut self) {
            let _ = CONTROLLED.try_with(|c| c.set(false));
            self.0.on_event(SyncEvent::ThreadExit { worker: self.1 });
        }
    }

    /// Install `hook` in controlled mode and start instrumenting
    /// checked-in threads.
    ///
    /// The registry is process-global: callers running under a test
    /// harness must serialize sessions themselves.
    pub fn install(hook: Arc<dyn ExploreHook>) {
        *HOOK.lock().unwrap_or_else(|e| e.into_inner()) = Some(hook);
        PASSIVE.store(false, Ordering::Release);
        ACTIVE.store(true, Ordering::Release);
    }

    /// Install `hook` in passive mode: every thread in the process
    /// reports its sync events, the shim never blocks inside the hook,
    /// and delivery points are ordered consistently with the real lock
    /// order (see the module docs).
    pub fn install_passive(hook: Arc<dyn ExploreHook>) {
        *HOOK.lock().unwrap_or_else(|e| e.into_inner()) = Some(hook);
        PASSIVE.store(true, Ordering::Release);
        ACTIVE.store(true, Ordering::Release);
    }

    /// Remove the hook; threads checked in afterwards run uninstrumented.
    pub fn uninstall() {
        ACTIVE.store(false, Ordering::Release);
        PASSIVE.store(false, Ordering::Release);
        *HOOK.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }

    /// Register the current thread as controlled worker `worker`.
    ///
    /// A no-op when no hook is installed, so runtimes can call it
    /// unconditionally. Installs a TLS guard that reports thread exit.
    /// In passive mode the checkin is reported (naming the thread for
    /// race reports) but the thread was already instrumented.
    pub fn checkin(worker: usize) {
        if !ACTIVE.load(Ordering::Acquire) {
            return;
        }
        let Some(hook) = HOOK.lock().unwrap_or_else(|e| e.into_inner()).clone() else {
            return;
        };
        if !PASSIVE.load(Ordering::Acquire) {
            CONTROLLED.with(|c| c.set(true));
            EXIT_GUARD.with(|g| *g.borrow_mut() = Some(ExitGuard(hook.clone(), worker)));
        }
        hook.on_event(SyncEvent::Checkin { worker });
    }

    /// How the current thread is instrumented, if at all.
    pub(crate) enum Hooked {
        /// Controlled by a model checker: events are schedule points.
        Controlled(Arc<dyn ExploreHook>),
        /// Passively recorded: events never block.
        Passive(Arc<dyn ExploreHook>),
    }

    /// The hook applying to the current thread, tagged with its mode.
    pub(crate) fn hooked() -> Option<Hooked> {
        if !ACTIVE.load(Ordering::Acquire) {
            return None;
        }
        if PASSIVE.load(Ordering::Acquire) {
            return HOOK
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone()
                .map(Hooked::Passive);
        }
        if !CONTROLLED.try_with(|c| c.get()).unwrap_or(false) {
            return None;
        }
        // A controlled thread that is unwinding (its own bug, or the
        // session aborting the run) must clean up rawly: destructors drop
        // guards and channel endpoints, and modeling those events would
        // re-park — a panic inside a destructor during unwind aborts the
        // process. Thread death itself still reaches the session through
        // the exit guard, which bypasses this gate.
        if std::thread::panicking() {
            return None;
        }
        HOOK.lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
            .map(Hooked::Controlled)
    }

    /// Report `event` to the hook applying to this thread, if any,
    /// regardless of mode. Used for events that never block (send/recv
    /// bookkeeping, touchpoints, labels).
    pub(crate) fn emit(event: SyncEvent) {
        match hooked() {
            Some(Hooked::Controlled(h)) | Some(Hooked::Passive(h)) => h.on_event(event),
            None => {}
        }
    }

    /// Declare a shared-state touchpoint: the calling thread is reading
    /// (`write == false`) or writing (`write == true`) the logical object
    /// named `obj`. Feeds the happens-before race detector; free (one
    /// relaxed load) when no hook is installed.
    pub fn touch(obj: &'static str, write: bool) {
        if !ACTIVE.load(Ordering::Relaxed) {
            return;
        }
        emit(SyncEvent::Touch { obj, write });
    }

    /// Attach a human-readable `label` to sync object `x` for reports.
    /// Free (one relaxed load) when no hook is installed.
    pub fn label<T: ?Sized>(x: &T, label: &'static str) {
        if !ACTIVE.load(Ordering::Relaxed) {
            return;
        }
        emit(SyncEvent::Label {
            obj: addr(x),
            label,
        });
    }

    /// Stable identity of a sync object: its address.
    pub fn addr<T: ?Sized>(x: &T) -> usize {
        x as *const T as *const () as usize
    }
}

/// A mutual-exclusion primitive (non-poisoning `lock` API).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard of a locked [`Mutex`].
///
/// Holds the underlying std guard in an `Option` so [`Condvar::wait`] can
/// move it through `std`'s by-value wait and put it back, plus a backref
/// to the owning mutex so the exploration hook can identify the lock on
/// release and reacquire it after a controlled wait.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
    owner: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match explore::hooked() {
            Some(explore::Hooked::Controlled(hook)) => {
                // The hook blocks until its model grants this thread the
                // lock; the real acquire below then succeeds without
                // contention.
                hook.on_event(explore::SyncEvent::Acquire {
                    mutex: explore::addr(self),
                });
                MutexGuard {
                    inner: Some(self.0.lock().unwrap_or_else(|e| e.into_inner())),
                    owner: self,
                }
            }
            Some(explore::Hooked::Passive(hook)) => {
                // Acquire for real first, then report while holding the
                // lock: the recorder's serialized event order stays
                // consistent with the real lock order.
                let inner = self.0.lock().unwrap_or_else(|e| e.into_inner());
                hook.on_event(explore::SyncEvent::Acquire {
                    mutex: explore::addr(self),
                });
                MutexGuard {
                    inner: Some(inner),
                    owner: self,
                }
            }
            None => MutexGuard {
                inner: Some(self.0.lock().unwrap_or_else(|e| e.into_inner())),
                owner: self,
            },
        }
    }

    /// Try to acquire the lock without blocking.
    ///
    /// Not a schedule point for a controlled exploration hook (the
    /// runtime under test never uses it on controlled threads); a
    /// successful try-lock is reported to a passive recorder like any
    /// other acquire.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.0.try_lock() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        if let Some(explore::Hooked::Passive(hook)) = explore::hooked() {
            hook.on_event(explore::SyncEvent::Acquire {
                mutex: explore::addr(self),
            });
        }
        Some(MutexGuard {
            inner: Some(inner),
            owner: self,
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard live outside wait")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.is_none() {
            return;
        }
        match explore::hooked() {
            Some(explore::Hooked::Controlled(hook)) => {
                // Real release first, then the model release, so a thread
                // the explorer schedules next never blocks on the real
                // lock.
                drop(self.inner.take());
                hook.on_event(explore::SyncEvent::Release {
                    mutex: explore::addr(self.owner),
                });
            }
            Some(explore::Hooked::Passive(hook)) => {
                // Report first, while still holding the lock: any thread
                // that records an Acquire of this mutex afterwards really
                // did acquire it after our release.
                hook.on_event(explore::SyncEvent::Release {
                    mutex: explore::addr(self.owner),
                });
                drop(self.inner.take());
            }
            None => drop(self.inner.take()),
        }
    }
}

/// A reader-writer lock (non-poisoning `read`/`write` API).
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking until available.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access, blocking until available.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A condition variable with `parking_lot`'s `&mut guard` wait API.
#[derive(Default, Debug)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Atomically release the guard's lock and wait for a notification,
    /// reacquiring the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        match explore::hooked() {
            Some(explore::Hooked::Controlled(hook)) => {
                // Controlled wait: never sleep on the real condvar.
                // Release the real lock, park inside the hook (which
                // models the wait and the reacquisition), then retake the
                // real lock directly.
                let inner = guard.inner.take().expect("guard live outside wait");
                drop(inner);
                hook.on_event(explore::SyncEvent::Wait {
                    condvar: explore::addr(self),
                    mutex: explore::addr(guard.owner),
                });
                guard.inner = Some(guard.owner.0.lock().unwrap_or_else(|e| e.into_inner()));
            }
            Some(explore::Hooked::Passive(hook)) => {
                // Report the wait while still holding the lock (the
                // recorder treats it as the release), wait for real, then
                // report the reacquisition while holding the lock again.
                hook.on_event(explore::SyncEvent::Wait {
                    condvar: explore::addr(self),
                    mutex: explore::addr(guard.owner),
                });
                let inner = guard.inner.take().expect("guard live outside wait");
                let reacquired = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
                guard.inner = Some(reacquired);
                hook.on_event(explore::SyncEvent::WakeAcquire {
                    condvar: explore::addr(self),
                    mutex: explore::addr(guard.owner),
                });
            }
            None => {
                let inner = guard.inner.take().expect("guard live outside wait");
                let reacquired = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
                guard.inner = Some(reacquired);
            }
        }
    }

    /// Like [`Condvar::wait`], but give up after `timeout`. Returns
    /// `true` iff the wait timed out (the lock is reacquired either way).
    ///
    /// Under a **controlled** exploration hook the timeout is ignored and
    /// this behaves exactly like [`Condvar::wait`] (returning `false`):
    /// model time has no clock, so a timeout would be a nondeterministic
    /// schedule point. Models must guarantee a notify (or model deadlock
    /// detection) instead — which is precisely what makes lost-wakeup
    /// bugs show up as deadlocks rather than silent timeouts.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        match explore::hooked() {
            Some(explore::Hooked::Controlled(_)) => {
                self.wait(guard);
                false
            }
            Some(explore::Hooked::Passive(hook)) => {
                hook.on_event(explore::SyncEvent::Wait {
                    condvar: explore::addr(self),
                    mutex: explore::addr(guard.owner),
                });
                let inner = guard.inner.take().expect("guard live outside wait");
                let (reacquired, result) = self
                    .0
                    .wait_timeout(inner, timeout)
                    .unwrap_or_else(|e| e.into_inner());
                guard.inner = Some(reacquired);
                hook.on_event(explore::SyncEvent::WakeAcquire {
                    condvar: explore::addr(self),
                    mutex: explore::addr(guard.owner),
                });
                result.timed_out()
            }
            None => {
                let inner = guard.inner.take().expect("guard live outside wait");
                let (reacquired, result) = self
                    .0
                    .wait_timeout(inner, timeout)
                    .unwrap_or_else(|e| e.into_inner());
                guard.inner = Some(reacquired);
                result.timed_out()
            }
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        explore::emit(explore::SyncEvent::Notify {
            condvar: explore::addr(self),
            all: false,
        });
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        explore::emit(explore::SyncEvent::Notify {
            condvar: explore::addr(self),
            all: true,
        });
        self.0.notify_all();
    }
}

pub mod channel {
    //! An instrumented mpsc channel with `std::sync::mpsc`'s API surface
    //! (the subset this workspace uses), built on the shim's [`Mutex`] +
    //! [`Condvar`] so every send and receive is visible to the
    //! exploration hook — as [`SyncEvent::Send`]/[`SyncEvent::Recv`]
    //! bookkeeping events plus the underlying lock and condvar traffic
    //! that actually orders them.
    //!
    //! Disconnect semantics match std: `recv` on an empty channel with no
    //! live senders errors; sending to a dropped receiver errors and
    //! returns the message. `recv_timeout` degrades to an untimed `recv`
    //! under a controlled exploration hook (see [`Condvar::wait_for`]).
    //!
    //! [`Mutex`]: super::Mutex
    //! [`Condvar`]: super::Condvar
    //! [`SyncEvent::Send`]: super::explore::SyncEvent::Send
    //! [`SyncEvent::Recv`]: super::explore::SyncEvent::Recv

    use super::{explore, Condvar, Mutex};
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receiver_alive: bool,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        bound: Option<usize>,
    }

    impl<T> Chan<T> {
        fn id(&self) -> usize {
            explore::addr(&self.state)
        }
    }

    /// Sending half of an unbounded [`channel`]. Clonable.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// Sending half of a bounded [`sync_channel`]. Clonable.
    pub struct SyncSender<T>(Arc<Chan<T>>);

    /// Receiving half of a channel.
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// The receiver disconnected before the message could be delivered;
    /// the message is handed back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Why a [`SyncSender::try_send`] could not enqueue.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded queue is at capacity; the message is handed back.
        Full(T),
        /// The receiver disconnected; the message is handed back.
        Disconnected(T),
    }

    /// All senders disconnected and the queue is drained.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Why a [`Receiver::try_recv`] returned no message.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is currently empty but senders remain.
        Empty,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Why a [`Receiver::recv_timeout`] returned no message.
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the queue still empty.
        Timeout,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> fmt::Debug for SyncSender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SyncSender")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver")
        }
    }

    /// Create an unbounded instrumented channel.
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receiver_alive: true,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            bound: None,
        });
        (Sender(chan.clone()), Receiver(chan))
    }

    /// Create a bounded instrumented channel holding at most `bound`
    /// queued messages (`bound == 0` is treated as capacity 1; the shim
    /// does not model rendezvous channels).
    pub fn sync_channel<T>(bound: usize) -> (SyncSender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receiver_alive: true,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            bound: Some(bound.max(1)),
        });
        (SyncSender(chan.clone()), Receiver(chan))
    }

    fn push<T>(chan: &Chan<T>, state: &mut State<T>, value: T) {
        state.queue.push_back(value);
        explore::emit(explore::SyncEvent::Send { chan: chan.id() });
    }

    impl<T> Sender<T> {
        /// Enqueue `value`, failing (and handing it back) iff the
        /// receiver disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.0.state.lock();
            if !state.receiver_alive {
                return Err(SendError(value));
            }
            push(&self.0, &mut state, value);
            drop(state);
            self.0.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> SyncSender<T> {
        /// Enqueue `value`, blocking while the queue is at capacity;
        /// fails (handing the message back) iff the receiver
        /// disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let bound = self.0.bound.expect("sync sender has a bound");
            let mut state = self.0.state.lock();
            loop {
                if !state.receiver_alive {
                    return Err(SendError(value));
                }
                if state.queue.len() < bound {
                    push(&self.0, &mut state, value);
                    drop(state);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                self.0.not_full.wait(&mut state);
            }
        }

        /// Enqueue `value` without blocking, failing if the queue is at
        /// capacity or the receiver disconnected.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let bound = self.0.bound.expect("sync sender has a bound");
            let mut state = self.0.state.lock();
            if !state.receiver_alive {
                return Err(TrySendError::Disconnected(value));
            }
            if state.queue.len() >= bound {
                return Err(TrySendError::Full(value));
            }
            push(&self.0, &mut state, value);
            drop(state);
            self.0.not_empty.notify_one();
            Ok(())
        }
    }

    fn clone_sender<T>(chan: &Arc<Chan<T>>) -> Arc<Chan<T>> {
        chan.state.lock().senders += 1;
        chan.clone()
    }

    fn drop_sender<T>(chan: &Chan<T>) {
        let mut state = chan.state.lock();
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            // Wake every blocked receiver so it can observe disconnect.
            chan.not_empty.notify_all();
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender(clone_sender(&self.0))
        }
    }

    impl<T> Clone for SyncSender<T> {
        fn clone(&self) -> SyncSender<T> {
            SyncSender(clone_sender(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            drop_sender(&self.0);
        }
    }

    impl<T> Drop for SyncSender<T> {
        fn drop(&mut self) {
            drop_sender(&self.0);
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.0.state.lock();
            state.receiver_alive = false;
            state.queue.clear();
            drop(state);
            // Wake every blocked sender so it can observe disconnect.
            self.0.not_full.notify_all();
        }
    }

    fn pop<T>(chan: &Chan<T>, state: &mut State<T>) -> Option<T> {
        let value = state.queue.pop_front()?;
        explore::emit(explore::SyncEvent::Recv { chan: chan.id() });
        Some(value)
    }

    impl<T> Receiver<T> {
        /// Dequeue the next message, blocking while the queue is empty;
        /// fails once every sender disconnected and the queue drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.0.state.lock();
            loop {
                if let Some(value) = pop(&self.0, &mut state) {
                    drop(state);
                    self.0.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                self.0.not_empty.wait(&mut state);
            }
        }

        /// Dequeue the next message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.0.state.lock();
            if let Some(value) = pop(&self.0, &mut state) {
                drop(state);
                self.0.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Dequeue the next message, giving up after `timeout`.
        ///
        /// Under a controlled exploration hook the timeout never fires
        /// (see [`Condvar::wait_for`](super::Condvar::wait_for)): models
        /// must arrange delivery or rely on model deadlock detection.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.0.state.lock();
            loop {
                if let Some(value) = pop(&self.0, &mut state) {
                    drop(state);
                    self.0.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                // A timed-out wait falls through to the next iteration,
                // whose queue/disconnect/deadline checks decide the
                // verdict — a message that raced in still wins.
                let _ = self.0.not_empty.wait_for(&mut state, deadline - now);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn lock_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contention() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!((*r1).len() + (*r2).len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiters() {
        let m = Mutex::new(0usize);
        let cv = Condvar::new();
        let woken = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    let mut g = m.lock();
                    while *g == 0 {
                        cv.wait(&mut g);
                    }
                    woken.fetch_add(1, Ordering::SeqCst);
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(30));
            *m.lock() = 1;
            cv.notify_all();
        });
        assert_eq!(woken.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn wait_for_times_out_without_notify() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(5)));
    }

    #[test]
    fn channel_roundtrip_and_disconnect() {
        let (tx, rx) = channel::channel();
        tx.send(7).unwrap();
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn sync_channel_respects_bound() {
        let (tx, rx) = channel::sync_channel(1);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(channel::TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        drop(rx);
        assert_eq!(tx.try_send(4), Err(channel::TrySendError::Disconnected(4)));
        assert_eq!(tx.send(5), Err(channel::SendError(5)));
    }

    #[test]
    fn recv_timeout_reports_timeout_then_delivery() {
        let (tx, rx) = channel::channel();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        std::thread::scope(|scope| {
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                tx.send(9).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(30)), Ok(9));
        });
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }
}
