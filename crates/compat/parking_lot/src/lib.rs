//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::{Mutex, Condvar}` behind `parking_lot`'s
//! non-poisoning API (guards returned directly from `lock`, `Condvar::wait`
//! taking `&mut MutexGuard`). Poisoned locks are recovered transparently —
//! matching `parking_lot`, which has no poisoning at all.

use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion primitive (non-poisoning `lock` API).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard of a locked [`Mutex`].
///
/// Holds the underlying std guard in an `Option` so [`Condvar::wait`] can
/// move it through `std`'s by-value wait and put it back.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard live outside wait")
    }
}

/// A reader-writer lock (non-poisoning `read`/`write` API).
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking until available.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access, blocking until available.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A condition variable with `parking_lot`'s `&mut guard` wait API.
#[derive(Default, Debug)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Atomically release the guard's lock and wait for a notification,
    /// reacquiring the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard live outside wait");
        let reacquired = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(reacquired);
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn lock_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contention() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!((*r1).len() + (*r2).len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiters() {
        let m = Mutex::new(0usize);
        let cv = Condvar::new();
        let woken = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    let mut g = m.lock();
                    while *g == 0 {
                        cv.wait(&mut g);
                    }
                    woken.fetch_add(1, Ordering::SeqCst);
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(30));
            *m.lock() = 1;
            cv.notify_all();
        });
        assert_eq!(woken.load(Ordering::SeqCst), 3);
    }
}
