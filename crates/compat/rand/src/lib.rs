//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the *subset* of the `rand 0.8` API it actually uses: [`RngCore`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_range` (half-open and inclusive integer/float ranges) and
//! `gen_bool`. Sampling is uniform and unbiased (fixed-point widening
//! multiply for integers, 53-bit mantissa fill for floats), but the exact
//! value streams are **not** promised to match upstream `rand` — every
//! consumer in this workspace only relies on determinism per seed and on
//! distribution quality, both of which hold.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform generator interface (the `rand_core` trait).
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators. Only the `seed_from_u64` entry point is exposed —
/// it is the only constructor the workspace uses.
pub trait SeedableRng: Sized {
    /// Deterministically derive a full generator state from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step, the standard seed expander (also what upstream
/// `rand::SeedableRng::seed_from_u64` uses to fill seed bytes).
pub fn split_mix_64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)`. Panics if the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`. Panics if `hi < lo`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $unsigned:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
                let span = (hi as $unsigned).wrapping_sub(lo as $unsigned) as u64;
                let offset = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((lo as $unsigned).wrapping_add(offset as $unsigned)) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
                let span = (hi as $unsigned).wrapping_sub(lo as $unsigned) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let offset = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                ((lo as $unsigned).wrapping_add(offset as $unsigned)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
                lo + (hi - lo) * unit_f64(rng) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
                lo + (hi - lo) * unit_f64(rng) as $t
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Uniform `f64` in `[0, 1)` with full 53-bit resolution.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Distributions, in the shape of `rand::distributions`.
pub mod distributions {
    use super::{unit_f64, RngCore};

    /// A sampling distribution over `T`.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" uniform distribution of a type (`rng.gen()`).
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng)
        }
    }
    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            ((rng.next_u32() >> 8) as f32) * (1.0 / (1u32 << 24) as f32)
        }
    }
    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }
    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }
    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`] (the `rand::Rng` extension trait).
pub trait Rng: RngCore {
    /// Sample a value from its [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution as _;
        distributions::Standard.sample(self)
    }

    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `rand::rngs`-shaped namespace (kept for import compatibility).
pub mod rngs {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal deterministic generator for testing the samplers.
    struct SplitMix(u64);
    impl RngCore for SplitMix {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            split_mix_64(&mut self.0)
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SplitMix(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = SplitMix(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn unit_f64_is_uniform_ish() {
        let mut rng = SplitMix(42);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn fill_bytes_fills_every_byte_eventually() {
        let mut rng = SplitMix(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        // 13 zero bytes after a fill would be a 2^-104 event.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SplitMix(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
