//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's API this workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark runs a short
//! warm-up, then `sample_size` timed samples whose per-iteration batch
//! count is calibrated so one sample takes roughly
//! [`Criterion::target_sample_time`]. Median, mean, and min/max of the
//! per-iteration times are printed. There is no statistical outlier
//! analysis, plotting, or saved baselines — this harness exists so
//! `cargo bench` works without network access.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of the standard optimisation barrier under criterion's name.
pub use std::hint::black_box;

/// Benchmark identifier combining a function name and a parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("area", 32)` renders as `area/32`.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> BenchmarkId {
        BenchmarkId { id }
    }
}

/// Work performed per iteration, used to report throughput.
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    batch: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `batch` calls of `routine`, keeping each return value alive
    /// through [`black_box`] so the work is not optimised away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.batch {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// One benchmark's collected samples (per-iteration seconds).
struct SampleStats {
    per_iter: Vec<f64>,
}

impl SampleStats {
    fn median(&mut self) -> f64 {
        self.per_iter
            .sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        self.per_iter[self.per_iter.len() / 2]
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// A set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (minimum 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark with no input parameter.
    pub fn bench_function<I: Into<BenchmarkId>, R: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut routine: R,
    ) -> &mut Self {
        let id = id.into();
        self.run(&id.id, &mut |b| routine(b));
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        self.run(&id.id, &mut |b| routine(b, input));
        self
    }

    fn run(&mut self, id: &str, routine: &mut dyn FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches_filter(&full) {
            return;
        }

        // Calibrate: grow the batch until one sample takes long enough to
        // time reliably, capped so tiny budgets still finish quickly.
        let mut bencher = Bencher {
            batch: 1,
            elapsed: Duration::ZERO,
        };
        let target = self.criterion.target_sample_time;
        loop {
            routine(&mut bencher);
            if bencher.elapsed >= target || bencher.batch >= 1 << 20 {
                break;
            }
            let grow = if bencher.elapsed < target / 16 { 8 } else { 2 };
            bencher.batch *= grow;
        }

        let mut stats = SampleStats {
            per_iter: Vec::with_capacity(self.sample_size),
        };
        for _ in 0..self.sample_size {
            routine(&mut bencher);
            stats
                .per_iter
                .push(bencher.elapsed.as_secs_f64() / bencher.batch as f64);
        }

        let median = stats.median();
        let lo = stats.per_iter[0];
        let hi = stats.per_iter[stats.per_iter.len() - 1];
        let mut line = format!(
            "{full:<40} time: [{} {} {}]",
            format_time(lo),
            format_time(median),
            format_time(hi)
        );
        if let Some(tp) = self.throughput {
            let (amount, unit) = match tp {
                Throughput::Elements(n) => (n as f64, "elem"),
                Throughput::Bytes(n) => (n as f64, "B"),
            };
            line.push_str(&format!("  thrpt: {:.3e} {unit}/s", amount / median));
        }
        println!("{line}");
    }

    /// End the group (prints a separator, like upstream's report break).
    pub fn finish(self) {
        println!();
    }
}

/// Benchmark harness entry point.
pub struct Criterion {
    filter: Option<String>,
    target_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo bench` invokes each harness=false binary with arguments
        // such as `--bench` and an optional name filter; accept the
        // filter, ignore the flags.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            target_sample_time: Duration::from_millis(20),
        }
    }
}

impl Criterion {
    /// How long one calibrated sample should take (default 20 ms).
    pub fn target_sample_time(mut self, t: Duration) -> Criterion {
        self.target_sample_time = t;
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
            criterion: self,
        }
    }

    /// Top-level `bench_function` (no group).
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: &str, routine: R) -> &mut Self {
        let group_name = id.to_string();
        let mut group = BenchmarkGroup {
            criterion: self,
            name: group_name,
            sample_size: 10,
            throughput: None,
        };
        let mut routine = routine;
        group.run("", &mut |b| routine(b));
        self
    }

    fn matches_filter(&self, full_id: &str) -> bool {
        match &self.filter {
            Some(f) => full_id.contains(f.as_str()),
            None => true,
        }
    }
}

/// Collect benchmark functions into a group runner, like upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).map(black_box).sum::<u64>())
        });
        group.bench_function("push", |b| {
            b.iter(|| {
                let mut v = Vec::new();
                for i in 0..32 {
                    v.push(i);
                }
                v
            })
        });
        group.finish();
    }

    #[test]
    fn harness_runs_to_completion() {
        let mut criterion = Criterion::default().target_sample_time(Duration::from_micros(200));
        demo_bench(&mut criterion);
    }

    #[test]
    fn benchmark_id_renders_function_and_parameter() {
        assert_eq!(BenchmarkId::new("area", 32).to_string(), "area/32");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn bencher_measures_batches() {
        let mut b = Bencher {
            batch: 100,
            elapsed: Duration::ZERO,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 100);
        assert!(b.elapsed > Duration::ZERO);
    }

    criterion_group!(example_group, demo_bench);

    #[test]
    fn group_macro_produces_runner() {
        // Smoke: the generated fn is callable (uses default Criterion).
        example_group();
    }
}
