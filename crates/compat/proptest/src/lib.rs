//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of proptest's surface this workspace uses: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), range
//! strategies, tuple strategies, [`collection::vec`], [`array::uniform2`],
//! and the `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from upstream, chosen for an offline, dependency-free
//! build: cases are drawn from a ChaCha8 stream seeded deterministically
//! from the test's name (so failures are reproducible run-to-run), and
//! there is **no shrinking** — a failing case reports its inputs verbatim.

pub use rand_chacha::ChaCha8Rng as TestRng;

/// Strategies: value generators for property inputs.
pub mod strategy {
    use super::TestRng;
    use rand::Rng as _;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Self::Value`.
    ///
    /// Upstream proptest strategies carry shrinking machinery; here a
    /// strategy is simply a sampler.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// `Just`-style constant strategy.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+ );)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng as _;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S: Strategy> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, 1..6)`: vectors of 1 to 5 sampled elements.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Fixed-size-array strategies (`prop::array`).
pub mod array {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy for `[T; 2]` from one element strategy.
    pub struct UniformArray2<S: Strategy>(S);

    /// `uniform2(element)`: two independent samples as an array.
    pub fn uniform2<S: Strategy>(element: S) -> UniformArray2<S> {
        UniformArray2(element)
    }

    impl<S: Strategy> Strategy for UniformArray2<S> {
        type Value = [S::Value; 2];
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            [self.0.sample(rng), self.0.sample(rng)]
        }
    }
}

/// Runner configuration (`proptest::test_runner`).
pub mod test_runner {
    /// How many cases each property runs.
    #[derive(Copy, Clone, Debug)]
    pub struct Config {
        /// Number of random cases.
        pub cases: u32,
    }

    impl Config {
        /// Build a config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }
}

/// Derive a per-test RNG from the test's name: failures reproduce
/// deterministically across runs without any environment state.
pub fn rng_for(test_name: &str) -> TestRng {
    use rand::SeedableRng as _;
    // FNV-1a over the name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// The macro surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as proptest_crate;
    /// Upstream exposes strategy constructors under `prop::...`.
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests over sampled inputs.
///
/// Supports the upstream form used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in 0usize..10, v in prop::collection::vec(0f64..1.0, 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_property(
                    concat!(module_path!(), "::", stringify!($name)),
                    $cfg,
                    |__proptest_rng| {
                        use $crate::strategy::Strategy as _;
                        $(let $arg = ($strat).sample(__proptest_rng);)+
                        let __proptest_inputs = format!(
                            concat!($(stringify!($arg), " = {:?}; "),+),
                            $(&$arg),+
                        );
                        let __proptest_result: ::std::result::Result<(), ::std::string::String> =
                            (|| {
                                $body
                                ::std::result::Result::Ok(())
                            })();
                        (__proptest_inputs, __proptest_result)
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Execute one property over `cfg.cases` sampled cases (macro plumbing).
pub fn run_property(
    name: &str,
    cfg: test_runner::Config,
    mut case: impl FnMut(&mut TestRng) -> (String, Result<(), String>),
) {
    let mut rng = rng_for(name);
    for i in 0..cfg.cases {
        let (inputs, result) = case(&mut rng);
        if let Err(msg) = result {
            panic!(
                "property {name} failed at case {i}/{}:\n  {msg}\n  inputs: {inputs}",
                cfg.cases
            );
        }
    }
}

/// Property assertion: fails the current case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} ({:?} != {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "{} ({:?} != {:?})",
                format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

/// Skip the current case when its sampled inputs don't satisfy a
/// precondition. Upstream rejects-and-resamples; here the case simply
/// passes vacuously, which preserves soundness (no false failures) at a
/// small coverage cost.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_sample_in_bounds(x in 3usize..17, y in -2.0f64..2.0, z in 0u8..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!(z <= 4);
        }

        #[test]
        fn vec_strategy_respects_length(v in prop::collection::vec((0.1f64..1.0, 0u32..9), 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            for (f, i) in &v {
                prop_assert!((0.1..1.0).contains(f));
                prop_assert!(*i < 9);
            }
        }

        #[test]
        fn uniform2_yields_pairs(c in prop::array::uniform2(0.0f64..10.0)) {
            prop_assert!(c.iter().all(|v| (0.0..10.0).contains(v)));
            prop_assert_eq!(c.len(), 2);
        }
    }

    proptest! {
        #[test]
        fn default_config_form_works(n in 1usize..5) {
            prop_assert!(n >= 1, "n = {}", n);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_inputs() {
        crate::run_property("demo", crate::test_runner::Config::with_cases(3), |_rng| {
            ("x = 1".to_string(), Err("boom".to_string()))
        });
    }

    #[test]
    fn named_rng_is_deterministic() {
        use rand::RngCore as _;
        let mut a = crate::rng_for("some::test");
        let mut b = crate::rng_for("some::test");
        let mut c = crate::rng_for("other::test");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        assert_eq!(xs, (0..8).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(xs, (0..8).map(|_| c.next_u64()).collect::<Vec<_>>());
    }
}
