//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha8 keystream generator (Bernstein's ChaCha
//! with 8 rounds) behind the [`ChaCha8Rng`] name. Seeding follows the
//! upstream convention of expanding a `u64` seed through SplitMix64 into
//! the 256-bit key. The keystream is *a* correct ChaCha8 stream, keyed the
//! same way every run — workspace consumers rely on per-seed determinism
//! and statistical quality, not on bit-compatibility with upstream.

use rand::{split_mix_64, RngCore, SeedableRng};

/// "expand 32-byte k", the ChaCha constant words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha stream cipher RNG with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Input block: constants, 8 key words, 2 counter words, 2 nonce words.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word of `block` (16 = exhausted).
    index: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Construct from a 256-bit key (eight little-endian words).
    pub fn from_key(key: [u32; 8]) -> ChaCha8Rng {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&key);
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            index: 16,
        }
    }

    /// Generate the next keystream block and advance the counter.
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, inp) in self.block.iter_mut().zip(&working) {
            *out = *inp;
        }
        for (out, inp) in self.block.iter_mut().zip(&self.state) {
            *out = out.wrapping_add(*inp);
        }
        // 64-bit block counter in words 12-13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut key = [0u32; 8];
        for pair in key.chunks_exact_mut(2) {
            let v = split_mix_64(&mut sm);
            pair[0] = v as u32;
            pair[1] = (v >> 32) as u32;
        }
        ChaCha8Rng::from_key(key)
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let v = self.block[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn zero_key_matches_chacha8_test_vector() {
        // ChaCha8 with an all-zero key and nonce, block 0 — keystream from
        // the original "ChaCha, a variant of Salsa20" reference
        // implementation (first 8 bytes shown here, little-endian words).
        let mut rng = ChaCha8Rng::from_key([0; 8]);
        let w0 = rng.next_u32();
        let w1 = rng.next_u32();
        let mut first8 = [0u8; 8];
        first8[..4].copy_from_slice(&w0.to_le_bytes());
        first8[4..].copy_from_slice(&w1.to_le_bytes());
        assert_eq!(
            first8,
            [0x3e, 0x00, 0xef, 0x2f, 0x89, 0x5f, 0x40, 0xd6],
            "keystream head {first8:02x?}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn works_through_the_rng_extension_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let in_range = (0..1000).all(|_| (0..10).contains(&rng.gen_range(0..10)));
        assert!(in_range);
    }

    #[test]
    fn blocks_differ_as_counter_advances() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
