//! Quickstart: factorize a real SPD matrix with the parallel runtime,
//! verify the result, and compare against the simulator and the bounds.
//!
//! ```text
//! cargo run --release --example quickstart [n_tiles] [nb] [n_workers]
//! ```

use hetchol::bounds::BoundSet;
use hetchol::core::metrics;
use hetchol::linalg::matrix::TiledMatrix;
use hetchol::linalg::{factorization_residual, random_spd, solve_with_factor};
use hetchol::prelude::*;
use hetchol::rt::calibrate_profile;
use hetchol::sched::Dmdas;

fn main() {
    let mut args = std::env::args().skip(1);
    let n_tiles: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(8);
    let nb: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(96);
    let n_workers: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(4);
    let n = n_tiles * nb;

    println!("== hetchol quickstart ==");
    println!("matrix: {n} x {n} ({n_tiles} x {n_tiles} tiles of {nb}), {n_workers} workers\n");

    // 1. Calibrate kernel times on this host (StarPU-style).
    let profile = calibrate_profile(nb, 5).expect("host calibration failed");
    println!("calibrated kernel times (per {nb}x{nb} tile):");
    for k in hetchol::core::kernel::Kernel::ALL {
        println!("  {:>5}: {}", k.label(), profile.time(k, 0));
    }

    // 2. Build the problem and the task graph.
    let a = random_spd(n, 42);
    let workload = CholeskyWorkload::new(&TiledMatrix::from_dense(&a, nb));
    let graph = TaskGraph::cholesky(n_tiles);
    println!(
        "\ntask graph: {} tasks, {} edges",
        graph.len(),
        graph.n_edges()
    );

    // 3. Factorize on real threads with the dmdas scheduler, recording
    // structured observability spans along the way.
    let result = Run::new(&graph)
        .scheduler(Dmdas::new())
        .profile(profile.clone())
        .workers(n_workers)
        .obs(ObsSink::enabled())
        .execute(&workload)
        .expect("matrix is SPD by construction");
    let gflops = metrics::gflops(n_tiles, nb, result.makespan);
    println!("factorized in {} ({gflops:.2} GFLOP/s)", result.makespan);
    print!("{}", result.obs.utilization_report());

    // 4. Verify: residual and a linear solve.
    let m = workload.into_matrix();
    let residual = factorization_residual(&a, &m);
    println!("residual |A - LL^T|_F / |A|_F = {residual:.3e}");
    assert!(residual < 1e-9, "factorization failed verification");
    let b: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
    let x = solve_with_factor(&m, &b);
    println!("solved A x = b; x[0..4] = {:?}", &x[..4.min(n)]);

    // 5. How good was that schedule? Compare with the homogeneous bounds.
    let platform = Platform::homogeneous(n_workers);
    let bound_profile = TimingProfile::new(
        nb,
        vec![std::array::from_fn(|i| {
            profile.time(hetchol::core::kernel::Kernel::from_index(i), 0)
        })],
    );
    let bounds = BoundSet::compute(n_tiles, &platform, &bound_profile);
    println!(
        "\nbounds for this machine: mixed {:.2} GFLOP/s, critical path {:.2} GFLOP/s",
        bounds.mixed_gflops(),
        bounds.critical_path_gflops()
    );
    println!(
        "achieved {:.0}% of the mixed bound",
        100.0 * gflops / bounds.mixed_gflops()
    );
}
