//! Render ASCII Gantt traces of simulated executions (the paper's
//! Figure 12): compare where each scheduler leaves its GPUs idle, with
//! the observability layer's per-worker phase accounting alongside.
//!
//! ```text
//! cargo run --release --example trace_gantt [n_tiles] [width] [trace-dir]
//! ```
//!
//! When `trace-dir` is given, each run's Chrome-trace JSON is written
//! there — open it in `chrome://tracing` or Perfetto.

use hetchol::core::kernel::Kernel;
use hetchol::prelude::*;
use hetchol::sched::{Dmda, Dmdas, TriangleTrsmOnCpu};
use hetchol::Run;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let width: usize = std::env::args()
        .nth(2)
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    let trace_dir = std::env::args().nth(3).map(std::path::PathBuf::from);

    let platform = Platform::mirage().without_comm();
    let profile = TimingProfile::mirage();
    let graph = TaskGraph::cholesky(n);

    let schedulers: Vec<(&str, Box<dyn Scheduler + Send>)> = vec![
        ("dmda", Box::new(Dmda::new())),
        ("dmdas", Box::new(Dmdas::new())),
        ("triangle k=7", Box::new(TriangleTrsmOnCpu(Dmdas::new(), 7))),
    ];

    for (name, sched) in schedulers {
        let r = Run::new(&graph)
            .scheduler_boxed(sched)
            .profile(profile.clone())
            .obs(ObsSink::enabled())
            .simulate(&platform, &SimOptions::default());
        println!(
            "== {name}: makespan {} ({:.1} GFLOP/s) ==",
            r.makespan,
            r.gflops(n, profile.nb())
        );
        print!("{}", r.trace.gantt_ascii(&platform, width));
        println!(
            "GPU idle: {:.1}%   CPU idle: {:.1}%",
            r.trace.idle_fraction(9..12) * 100.0,
            r.trace.idle_fraction(0..9) * 100.0
        );
        // Kernel mix per class.
        for (label, workers) in [("CPUs", 0..9usize), ("GPUs", 9..12usize)] {
            let mut by_kernel = [Time::ZERO; Kernel::COUNT];
            for w in workers {
                let bk = r.trace.busy_by_kernel(w);
                for (acc, b) in by_kernel.iter_mut().zip(bk) {
                    *acc += b;
                }
            }
            print!("{label} busy by kernel: ");
            for k in Kernel::ALL {
                print!("{}={} ", k.label(), by_kernel[k.index()]);
            }
            println!();
        }
        // Structured phase accounting from the observability layer.
        print!("{}", r.obs.utilization_report());
        if let Some(dir) = &trace_dir {
            std::fs::create_dir_all(dir).expect("create trace dir");
            let path = dir.join(format!("gantt_{}.trace.json", name.replace(' ', "_")));
            std::fs::write(&path, r.obs.to_chrome_trace()).expect("write trace");
            println!("chrome trace: {}", path.display());
        }
        println!();
    }
}
