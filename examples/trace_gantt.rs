//! Render ASCII Gantt traces of simulated executions (the paper's
//! Figure 12): compare where each scheduler leaves its GPUs idle.
//!
//! ```text
//! cargo run --release --example trace_gantt [n_tiles] [width]
//! ```

use hetchol::core::dag::TaskGraph;
use hetchol::core::kernel::Kernel;
use hetchol::core::platform::Platform;
use hetchol::core::profiles::TimingProfile;
use hetchol::core::scheduler::Scheduler;
use hetchol::sched::{Dmda, Dmdas, TriangleTrsmOnCpu};
use hetchol::sim::{simulate, SimOptions};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let width: usize = std::env::args()
        .nth(2)
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);

    let platform = Platform::mirage().without_comm();
    let profile = TimingProfile::mirage();
    let graph = TaskGraph::cholesky(n);

    let mut schedulers: Vec<(&str, Box<dyn Scheduler>)> = vec![
        ("dmda", Box::new(Dmda::new())),
        ("dmdas", Box::new(Dmdas::new())),
        ("triangle k=7", Box::new(TriangleTrsmOnCpu(Dmdas::new(), 7))),
    ];

    for (name, sched) in schedulers.iter_mut() {
        let r = simulate(
            &graph,
            &platform,
            &profile,
            sched.as_mut(),
            &SimOptions::default(),
        );
        println!(
            "== {name}: makespan {} ({:.1} GFLOP/s) ==",
            r.makespan,
            r.gflops(n, profile.nb())
        );
        print!("{}", r.trace.gantt_ascii(&platform, width));
        println!(
            "GPU idle: {:.1}%   CPU idle: {:.1}%",
            r.trace.idle_fraction(9..12) * 100.0,
            r.trace.idle_fraction(0..9) * 100.0
        );
        // Kernel mix per class.
        for (label, workers) in [("CPUs", 0..9usize), ("GPUs", 9..12usize)] {
            let mut by_kernel = [hetchol::core::time::Time::ZERO; Kernel::COUNT];
            for w in workers {
                let bk = r.trace.busy_by_kernel(w);
                for (acc, b) in by_kernel.iter_mut().zip(bk) {
                    *acc += b;
                }
            }
            print!("{label} busy by kernel: ");
            for k in Kernel::ALL {
                print!("{}={} ", k.label(), by_kernel[k.index()]);
            }
            println!();
        }
        println!();
    }
}
