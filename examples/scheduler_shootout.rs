//! Scheduler shoot-out on the simulated Mirage machine: random vs dmda vs
//! dmdas vs the triangle hint, against the mixed bound — the paper's
//! Figure 7/10 story in one table.
//!
//! ```text
//! cargo run --release --example scheduler_shootout [--comm]
//! ```
//! `--comm` enables the PCI model (default: communication-free, as the
//! paper uses for bound comparisons).

use hetchol::bounds::BoundSet;
use hetchol::core::dag::TaskGraph;
use hetchol::core::platform::Platform;
use hetchol::core::profiles::TimingProfile;
use hetchol::core::scheduler::Scheduler;
use hetchol::sched::{Dmda, Dmdas, RandomScheduler, TriangleTrsmOnCpu};
use hetchol::sim::{simulate_with, SimOptions};

fn main() {
    let with_comm = std::env::args().any(|a| a == "--comm");
    let platform = if with_comm {
        Platform::mirage()
    } else {
        Platform::mirage().without_comm()
    };
    let profile = TimingProfile::mirage();

    println!(
        "== scheduler shoot-out on simulated Mirage ({}) ==",
        if with_comm {
            "PCI modelled"
        } else {
            "comm-free"
        }
    );
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>14} {:>12} {:>8}",
        "tiles", "random", "dmda", "dmdas", "triangle(k=7)", "mixed bound", "dmdas%"
    );

    for n in [4usize, 8, 12, 16, 20, 24, 28, 32] {
        let graph = TaskGraph::cholesky(n);
        let run = |sched: &mut dyn Scheduler| -> f64 {
            simulate_with(
                &graph,
                &platform,
                &profile,
                sched,
                &SimOptions::default(),
                hetchol::core::obs::ObsSink::disabled(),
            )
            .gflops(n, profile.nb())
        };
        // Average the stochastic scheduler over 5 seeds.
        let random: f64 = (0..5)
            .map(|s| run(&mut RandomScheduler::new(s)))
            .sum::<f64>()
            / 5.0;
        let dmda = run(&mut Dmda::new());
        let dmdas = run(&mut Dmdas::new());
        let triangle = run(&mut TriangleTrsmOnCpu(Dmdas::new(), 7));
        let bound = BoundSet::compute(n, &platform, &profile).mixed_gflops();
        println!(
            "{n:>6} {random:>10.1} {dmda:>10.1} {dmdas:>10.1} {triangle:>14.1} {bound:>12.1} {:>7.0}%",
            100.0 * dmdas / bound
        );
    }
    println!("\n(dmdas% = fraction of the mixed bound achieved by dmdas — the paper's gap)");
}
