//! Explore the makespan bounds of Section III on arbitrary platforms:
//! vary the GPU count and see how the area/mixed/critical-path bounds and
//! the GEMM peak move.
//!
//! ```text
//! cargo run --release --example bounds_explorer [n_tiles]
//! ```

use hetchol::bounds::BoundSet;
use hetchol::core::platform::{CommModel, Platform, ResourceClass, ResourceKind};
use hetchol::core::profiles::TimingProfile;
use hetchol::core::time::Time;

fn platform_with(cpus: usize, gpus: usize) -> Platform {
    let mut classes = vec![ResourceClass {
        name: "CPU".into(),
        kind: ResourceKind::Cpu,
        count: cpus,
    }];
    if gpus > 0 {
        classes.push(ResourceClass {
            name: "GPU".into(),
            kind: ResourceKind::Gpu,
            count: gpus,
        });
    }
    Platform::new(
        classes,
        Some(CommModel {
            latency: Time::from_micros(10),
            bandwidth: 8.0e9,
        }),
    )
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);

    println!("== bounds for a {n}x{n}-tile Cholesky while varying the platform ==");
    println!(
        "{:>5} {:>5} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "CPUs", "GPUs", "crit.path", "area", "mixed", "gemm peak", "best(ms)"
    );
    for (cpus, gpus) in [
        (9usize, 0usize),
        (9, 1),
        (9, 2),
        (9, 3), // Mirage
        (9, 6),
        (36, 3),
        (1, 3),
    ] {
        let platform = platform_with(cpus, gpus);
        let profile = if gpus > 0 {
            TimingProfile::mirage()
        } else {
            TimingProfile::mirage_homogeneous()
        };
        let set = BoundSet::compute(n, &platform, &profile);
        println!(
            "{cpus:>5} {gpus:>5} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            set.critical_path_gflops(),
            set.area_gflops(),
            set.mixed_gflops(),
            set.gemm_peak,
            set.best().as_millis_f64(),
        );
    }
    println!(
        "\n(GFLOP/s upper bounds; 'best' is the tightest makespan lower bound in ms.\n\
         Note how the mixed bound saturates with extra GPUs once the POTRF chain binds —\n\
         the effect the paper exploits for small matrices.)"
    );
}
