//! The paper's stated future work, runnable: apply the same
//! bounds-vs-schedulers methodology to tiled LU (with real numerics) and
//! tiled QR (scheduling model).
//!
//! ```text
//! cargo run --release --example other_factorizations
//! ```

use hetchol::bounds::BoundSet;
use hetchol::core::algorithm::Algorithm;
use hetchol::core::dag::TaskGraph;
use hetchol::core::obs::ObsSink;
use hetchol::core::platform::Platform;
use hetchol::core::profiles::TimingProfile;
use hetchol::core::scheduler::Scheduler;
use hetchol::linalg::full::FullTiledMatrix;
use hetchol::linalg::qr::QrMatrix;
use hetchol::linalg::{lu_residual, random_diagonally_dominant, tiled_lu_in_place};
use hetchol::rt::{LuWorkload, QrWorkload};
use hetchol::sched::{Dmda, Dmdas, EagerScheduler};
use hetchol::sim::{simulate_with, SimOptions};
use hetchol::Run;

fn main() {
    // 1. Real numeric LU on a diagonally dominant matrix (sequential).
    let nb = 64;
    let n_tiles = 6;
    let a = random_diagonally_dominant(n_tiles * nb, 2024);
    let mut m = FullTiledMatrix::from_dense(&a, nb);
    let t0 = std::time::Instant::now();
    tiled_lu_in_place(&mut m).expect("diagonally dominant => LU-nopiv stable");
    let elapsed = t0.elapsed();
    println!(
        "tiled LU (no pivoting) of a {0}x{0} matrix: {elapsed:?}, residual {1:.3e}",
        n_tiles * nb,
        lu_residual(&a, &m)
    );

    // 1b. The same LU and a QR, this time on real worker threads via the
    // run facade and the generic workload entry.
    let est = TimingProfile::mirage_homogeneous();
    let lu = LuWorkload::new(&FullTiledMatrix::from_dense(&a, nb));
    let r = Run::new(&TaskGraph::lu(n_tiles))
        .scheduler(Dmdas::new())
        .profile(est.clone())
        .workers(4)
        .execute(&lu)
        .expect("stable by construction");
    let m2 = lu.into_matrix();
    println!(
        "threaded LU on 4 workers: {} wall, residual {:.3e}",
        r.makespan,
        lu_residual(&a, &m2)
    );
    let qr_workload = QrWorkload::new(&a, nb);
    let r = Run::new(&TaskGraph::qr(n_tiles))
        .scheduler(Dmdas::new())
        .profile(est.clone())
        .workers(4)
        .execute(&qr_workload)
        .expect("QR cannot fail numerically");
    let (tiles, taus) = qr_workload.into_parts();
    let qr = QrMatrix::from_parts(tiles, taus);
    println!(
        "threaded QR on 4 workers: {} wall, residual {:.3e}\n",
        r.makespan,
        qr.residual(&a)
    );

    // 2. Scheduling study on the simulated Mirage machine, LU vs QR.
    let platform = Platform::mirage().without_comm();
    let profile = TimingProfile::mirage();
    for algo in [Algorithm::Lu, Algorithm::Qr] {
        println!("== {} on simulated Mirage (GFLOP/s) ==", algo.label());
        println!(
            "{:>6} {:>9} {:>9} {:>9} {:>12} {:>12}",
            "tiles", "eager", "dmda", "dmdas", "mixed bound", "graph size"
        );
        for n in [4usize, 8, 16, 24, 32] {
            let graph = algo.graph(n);
            let run = |sched: &mut dyn Scheduler| {
                let r = simulate_with(
                    &graph,
                    &platform,
                    &profile,
                    sched,
                    &SimOptions::default(),
                    ObsSink::disabled(),
                );
                algo.gflops(n, profile.nb(), r.makespan)
            };
            let eager = run(&mut EagerScheduler::new());
            let dmda = run(&mut Dmda::new());
            let dmdas = run(&mut Dmdas::new());
            let bound = BoundSet::compute_algo(algo, n, &platform, &profile).mixed_gflops();
            println!(
                "{n:>6} {eager:>9.1} {dmda:>9.1} {dmdas:>9.1} {bound:>12.1} {:>9} tasks",
                graph.len()
            );
        }
        println!();
    }
    println!(
        "Note the QR ceiling: TSMQR's best rate is below GEMM's, and the serial\n\
         TSQRT chain stretches the critical path — the same bound/achievement\n\
         analysis the paper runs for Cholesky exposes both effects immediately."
    );
}
