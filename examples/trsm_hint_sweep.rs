//! Sweep the triangle-TRSM offset `k` (paper Figures 9–11): for each
//! matrix size, how does forcing TRSMs ≥ `k` tiles below the diagonal
//! onto CPUs affect performance, and which `k` wins?
//!
//! ```text
//! cargo run --release --example trsm_hint_sweep [n_tiles...]
//! ```

use hetchol::core::dag::TaskGraph;
use hetchol::core::platform::Platform;
use hetchol::core::profiles::TimingProfile;
use hetchol::core::scheduler::Scheduler;
use hetchol::sched::hints::render_forced_triangle;
use hetchol::sched::{Dmdas, TriangleTrsmOnCpu};
use hetchol::sim::{simulate_with, SimOptions};

fn main() {
    let sizes: Vec<usize> = {
        let args: Vec<usize> = std::env::args()
            .skip(1)
            .filter_map(|v| v.parse().ok())
            .collect();
        if args.is_empty() {
            vec![8, 12, 16, 24]
        } else {
            args
        }
    };
    let platform = Platform::mirage().without_comm();
    let profile = TimingProfile::mirage();

    for &n in &sizes {
        let graph = TaskGraph::cholesky(n);
        let run = |sched: &mut dyn Scheduler| -> f64 {
            simulate_with(
                &graph,
                &platform,
                &profile,
                sched,
                &SimOptions::default(),
                hetchol::core::obs::ObsSink::disabled(),
            )
            .gflops(n, profile.nb())
        };
        let dmdas = run(&mut Dmdas::new());
        println!("== n = {n} tiles (dmdas baseline: {dmdas:.1} GFLOP/s) ==");
        let mut best = (f64::MIN, 0u32);
        for k in 1..n as u32 {
            let g = run(&mut TriangleTrsmOnCpu(Dmdas::new(), k));
            let marker = if g > dmdas { '+' } else { ' ' };
            println!("  k = {k:>2}: {g:>8.1} GFLOP/s {marker}");
            if g > best.0 {
                best = (g, k);
            }
        }
        println!(
            "  best: k = {} with {:.1} GFLOP/s ({:+.1}% vs dmdas)\n",
            best.1,
            best.0,
            100.0 * (best.0 - dmdas) / dmdas
        );
    }

    println!("forced-TRSM map for n = 10, k = 3 (C = forced on CPU):");
    print!("{}", render_forced_triangle(10, 3));
}
