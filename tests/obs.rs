//! Observability acceptance tests: the Chrome-trace JSON schema is a CI
//! interface (golden-pinned here), and the per-worker phase accounting
//! must partition the makespan exactly on *both* engines.

use hetchol::core::obs::{parse_json, validate_chrome_trace, JsonValue, CHROME_EVENT_KEYS};
use hetchol::core::time::Time;
use hetchol::prelude::*;
use hetchol::sched::{Dmda, Dmdas};

fn sim_report(n: usize) -> ObsReport {
    Run::new(&TaskGraph::cholesky(n))
        .scheduler(Dmdas::new())
        .profile(TimingProfile::mirage())
        .obs(ObsSink::enabled())
        .simulate(&Platform::mirage(), &SimOptions::default())
        .obs
}

fn rt_report(n: usize, workers: usize) -> ObsReport {
    let workload = FnWorkload(|_: TaskCoords| Ok::<(), std::convert::Infallible>(()));
    Run::new(&TaskGraph::cholesky(n))
        .scheduler(Dmda::new())
        .profile(TimingProfile::mirage_homogeneous())
        .workers(workers)
        .obs(ObsSink::enabled())
        .execute(&workload)
        .expect("no-op tasks cannot fail")
        .obs
}

/// Golden schema: every event object in the exported Chrome trace carries
/// exactly the pinned key set, `ts`/`dur` are numbers, and the document
/// shape is `{"traceEvents": [...], "displayTimeUnit": "ms"}`.
#[test]
fn chrome_trace_schema_is_golden() {
    assert_eq!(
        CHROME_EVENT_KEYS,
        ["ph", "ts", "dur", "pid", "tid", "name", "args"]
    );
    for report in [sim_report(6), rt_report(4, 3)] {
        let text = report.to_chrome_trace();
        let n_events = validate_chrome_trace(&text).expect("schema-valid");
        assert!(n_events > 0);

        // Re-check the pinned shape independently of the validator.
        let doc = parse_json(&text).expect("well-formed JSON");
        assert_eq!(
            doc.get("displayTimeUnit"),
            Some(&JsonValue::Str("ms".to_string()))
        );
        let JsonValue::Arr(events) = doc.get("traceEvents").expect("traceEvents") else {
            panic!("traceEvents must be an array");
        };
        assert_eq!(events.len(), n_events);
        let mut exec_events = 0;
        for ev in events {
            let JsonValue::Obj(fields) = ev else {
                panic!("every event must be an object");
            };
            assert_eq!(fields.len(), CHROME_EVENT_KEYS.len());
            for key in CHROME_EVENT_KEYS {
                assert!(ev.get(key).is_some(), "event missing key {key}");
            }
            assert!(matches!(ev.get("ts"), Some(JsonValue::Num(_))));
            assert!(matches!(ev.get("dur"), Some(JsonValue::Num(_))));
            if ev.get("ph") == Some(&JsonValue::Str("X".to_string())) {
                exec_events += 1;
            }
        }
        assert!(exec_events > 0, "trace must carry duration events");
    }
}

/// Acceptance: per worker, `exec + transfer_wait + queue_wait + idle`
/// sums to the makespan exactly — on the simulator (with communication)
/// and on the threaded runtime (wall-clock).
#[test]
fn phase_accounting_partitions_makespan_on_both_engines() {
    for (label, report) in [("sim", sim_report(8)), ("rt", rt_report(5, 4))] {
        let makespan = report.makespan();
        assert!(makespan > Time::ZERO, "{label}");
        let phases = report.worker_phases();
        assert_eq!(phases.len(), report.n_workers, "{label}");
        for p in &phases {
            assert_eq!(
                p.total(),
                makespan,
                "{label}: worker {} phases {:?} do not partition the makespan {makespan}",
                p.worker,
                p
            );
        }
        // Every task contributed exactly one span with ordered phases.
        for s in &report.spans {
            assert!(s.queued <= s.start && s.start <= s.end, "{label}: {s:?}");
        }
    }
}

/// The summary JSON (consumed by `hetchol-analyze` tooling) parses and
/// carries the headline counters.
#[test]
fn summary_json_is_machine_readable() {
    let report = sim_report(6);
    let doc = parse_json(&report.summary_json()).expect("well-formed JSON");
    for key in [
        "n_workers",
        "n_spans",
        "makespan_ns",
        "workers",
        "transfers",
    ] {
        assert!(doc.get(key).is_some(), "summary missing {key}");
    }
    assert_eq!(
        doc.get("n_spans"),
        Some(&JsonValue::Num(report.spans.len() as f64))
    );
}
