//! Fault-injection integration tests spanning both engines: the PR's
//! acceptance scenario (a worker killed mid-schedule degrades but stays
//! numerically correct, with the same classification in sim and rt),
//! retry-exhaustion determinism, backoff-cap behavior, configuration
//! rejection, and a property sweep over every (worker, death point).

use hetchol::core::dag::TaskGraph;
use hetchol::core::fault::{
    ConfigError, FailureCause, FaultKind, FaultPlan, RetryPolicy, RunOutcome,
};
use hetchol::core::obs::ObsSink;
use hetchol::core::platform::Platform;
use hetchol::core::profiles::TimingProfile;
use hetchol::core::time::Time;
use hetchol::linalg::matrix::TiledMatrix;
use hetchol::linalg::{factorization_residual, random_spd, tiled_cholesky_in_place};
use hetchol::prelude::*;
use hetchol::rt::{execute_resilient, CholeskyWorkload};
use hetchol::sched::Dmdas;
use hetchol::sim::{simulate_resilient, SimOptions};
use proptest::prelude::*;

/// The acceptance scenario: one worker killed mid-schedule. The simulator
/// must degrade and still describe a correct factorization; the identical
/// plan on the real runtime must produce the same outcome classification
/// and a verified factor.
#[test]
fn killed_worker_degrades_identically_in_both_engines() {
    let n_tiles = 4;
    let nb = 8;
    let n_workers = 3;
    let graph = TaskGraph::cholesky(n_tiles);
    let profile = TimingProfile::mirage_homogeneous();
    let platform = Platform::homogeneous(n_workers).without_comm();
    let plan = FaultPlan::new().kill_worker(1, 6);
    let policy = RetryPolicy::default();

    let sim = simulate_resilient(
        &graph,
        &platform,
        &profile,
        &mut Dmdas::new(),
        &SimOptions::default(),
        ObsSink::disabled(),
        &plan,
        &policy,
    )
    .unwrap();
    let RunOutcome::Degraded { lost_workers, .. } = &sim.outcome else {
        panic!("sim outcome {:?}", sim.outcome);
    };
    assert_eq!(lost_workers, &[1]);
    // Every task still ran, and the simulated schedule replays to a
    // correct factorization on real data.
    assert_eq!(sim.trace.events.len(), graph.len());
    let a = random_spd(n_tiles * nb, 7);
    let locked = hetchol::rt::LockedTiledMatrix::from_tiled(&TiledMatrix::from_dense(&a, nb));
    let mut events = sim.trace.events.clone();
    events.sort_by_key(|e| (e.start, e.end));
    for e in &events {
        locked.apply_task(graph.task(e.task).coords).unwrap();
    }
    assert!(factorization_residual(&a, &locked.to_tiled()) < 1e-10);

    let workload = CholeskyWorkload::new(&TiledMatrix::from_dense(&a, nb));
    let rt = execute_resilient(
        &workload,
        &graph,
        &mut Dmdas::new(),
        &profile,
        n_workers,
        ObsSink::disabled(),
        &plan,
        &policy,
    )
    .unwrap();
    let RunOutcome::Degraded { lost_workers, .. } = &rt.outcome else {
        panic!("rt outcome {:?}", rt.outcome);
    };
    assert_eq!(lost_workers, &[1], "same classification as the simulator");
    assert!(factorization_residual(&a, &workload.into_matrix()) < 1e-10);
}

/// Retry exhaustion is deterministic and classified the same way by both
/// engines: the failing task, the attempt count, and the fault kind all
/// survive into the outcome.
#[test]
fn retry_exhaustion_fails_identically_in_both_engines() {
    let graph = TaskGraph::cholesky(4);
    let profile = TimingProfile::mirage_homogeneous();
    let entry = graph.entry_tasks()[0];
    let plan = FaultPlan::new().transient(entry, 99);
    let policy = RetryPolicy {
        max_attempts: 3,
        ..RetryPolicy::default()
    };

    let sim = simulate_resilient(
        &graph,
        &Platform::homogeneous(3).without_comm(),
        &profile,
        &mut Dmdas::new(),
        &SimOptions::default(),
        ObsSink::disabled(),
        &plan,
        &policy,
    )
    .unwrap();
    let expected = RunOutcome::Failed {
        cause: FailureCause::RetriesExhausted {
            task: entry,
            attempts: 3,
            kind: FaultKind::Transient,
        },
    };
    assert_eq!(sim.outcome, expected);

    let workload = FnWorkload(|_| Ok::<(), std::convert::Infallible>(()));
    let rt = execute_resilient(
        &workload,
        &graph,
        &mut Dmdas::new(),
        &profile,
        3,
        ObsSink::disabled(),
        &plan,
        &policy,
    )
    .unwrap();
    assert_eq!(rt.outcome, expected);
}

/// The backoff schedule doubles from the base and clamps at the cap —
/// the regression contract for the retry pacing both engines share.
#[test]
fn backoff_doubles_and_caps() {
    let policy = RetryPolicy {
        max_attempts: 10,
        backoff_base: Time::from_micros(100),
        backoff_cap: Time::from_millis(1),
        watchdog: None,
    };
    assert_eq!(policy.backoff(1), Time::from_micros(100));
    assert_eq!(policy.backoff(2), Time::from_micros(200));
    assert_eq!(policy.backoff(3), Time::from_micros(400));
    assert_eq!(policy.backoff(4), Time::from_micros(800));
    // Clamped from here on, no matter how many failures pile up.
    assert_eq!(policy.backoff(5), Time::from_millis(1));
    assert_eq!(policy.backoff(60), Time::from_millis(1));
}

/// Impossible configurations come back as typed errors from the facade
/// and both engines — not hangs, not panics.
#[test]
fn impossible_configurations_are_typed_errors() {
    let graph = TaskGraph::cholesky(3);
    let workload = FnWorkload(|_| Ok::<(), std::convert::Infallible>(()));

    let err = Run::new(&graph)
        .profile(TimingProfile::mirage_homogeneous())
        .workers(0)
        .try_execute(&workload)
        .unwrap_err();
    assert_eq!(err, ConfigError::ZeroWorkers);
    assert!(!err.to_string().is_empty());

    let kills_all = FaultPlan::new().kill_worker(0, 0).kill_worker(1, 3);
    let err = Run::new(&graph)
        .profile(TimingProfile::mirage_homogeneous())
        .workers(2)
        .faults(kills_all.clone())
        .try_execute(&workload)
        .unwrap_err();
    assert_eq!(err, ConfigError::PlanKillsAllWorkers { n_workers: 2 });

    let err = Run::new(&graph)
        .faults(kills_all)
        .try_simulate(
            &Platform::homogeneous(2).without_comm(),
            &SimOptions::default(),
        )
        .unwrap_err();
    assert_eq!(err, ConfigError::PlanKillsAllWorkers { n_workers: 2 });
}

/// The facade's legacy paths are unchanged by an empty fault plan: a
/// fault-free `try_simulate` is bit-identical to `simulate`.
#[test]
fn empty_plan_keeps_the_facade_on_the_fast_path() {
    let graph = TaskGraph::cholesky(5);
    let platform = Platform::mirage().without_comm();
    let a = Run::new(&graph)
        .profile(TimingProfile::mirage())
        .simulate(&platform, &SimOptions::default());
    let b = Run::new(&graph)
        .profile(TimingProfile::mirage())
        .faults(FaultPlan::none())
        .try_simulate(&platform, &SimOptions::default())
        .unwrap();
    assert_eq!(a.outcome, RunOutcome::Completed);
    assert_eq!(a.trace.events, b.trace.events);
    assert_eq!(a.makespan, b.makespan);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Killing any single worker at any global start index leaves the
    /// runtime degraded but bit-correct: the surviving workers produce
    /// exactly the factor the sequential algorithm produces (the DAG
    /// serialises every tile conflict, so the kernels see identical
    /// inputs in every legal order). The simulator classifies the same
    /// plan the same way.
    #[test]
    fn any_single_death_point_degrades_bit_correctly(
        worker in 0usize..3,
        threshold_pick in 0usize..1000,
        seed in 0u64..1000,
    ) {
        let n_tiles = 3;
        let nb = 4;
        let n_workers = 3;
        let graph = TaskGraph::cholesky(n_tiles);
        let threshold = (threshold_pick % graph.len()) as u32;
        let profile = TimingProfile::mirage_homogeneous();
        let plan = FaultPlan::new().kill_worker(worker, threshold);
        let policy = RetryPolicy::default();

        let a = random_spd(n_tiles * nb, seed);
        let workload = CholeskyWorkload::new(&TiledMatrix::from_dense(&a, nb));
        let rt = execute_resilient(
            &workload,
            &graph,
            &mut Dmdas::new(),
            &profile,
            n_workers,
            ObsSink::disabled(),
            &plan,
            &policy,
        )
        .unwrap();
        prop_assert!(
            matches!(&rt.outcome, RunOutcome::Degraded { lost_workers, .. }
                if lost_workers == &[worker]),
            "rt outcome {:?}", rt.outcome
        );

        // Bit-correct against the sequential reference factorization.
        let got = workload.into_matrix();
        let mut want = TiledMatrix::from_dense(&a, nb);
        tiled_cholesky_in_place(&mut want).unwrap();
        for i in 0..n_tiles {
            for j in 0..=i {
                prop_assert_eq!(got.tile(i, j), want.tile(i, j), "tile ({}, {})", i, j);
            }
        }

        let sim = simulate_resilient(
            &graph,
            &Platform::homogeneous(n_workers).without_comm(),
            &profile,
            &mut Dmdas::new(),
            &SimOptions::default(),
            ObsSink::disabled(),
            &plan,
            &policy,
        )
        .unwrap();
        prop_assert_eq!(sim.outcome.label(), rt.outcome.label());
        prop_assert!(
            matches!(&sim.outcome, RunOutcome::Degraded { lost_workers, .. }
                if lost_workers == &[worker]),
            "sim outcome {:?}", sim.outcome
        );
    }
}
