//! Arena-vs-reference engine equivalence (DESIGN.md §13).
//!
//! The data-oriented execution core (`hetchol-sim`'s arena engine: SoA
//! dependency tracker, ring-buffer worker queues, calendar event queue,
//! flat residency bitmasks) must be *bitwise indistinguishable* from the
//! frozen pre-refactor engine kept in `hetchol::sim::reference`. These
//! property tests drive both engines over random platforms × schedulers ×
//! seeds — with and without jitter, with and without communications, with
//! and without fault injection — and require identical traces, start
//! orders, observability reports and run-outcome classifications. Any
//! divergence is a bug in the refactor, never an acceptable drift.

use hetchol::core::dag::TaskGraph;
use hetchol::core::fault::{FaultPlan, RetryPolicy};
use hetchol::core::obs::ObsSink;
use hetchol::core::platform::Platform;
use hetchol::core::profiles::TimingProfile;
use hetchol::core::scheduler::Scheduler;
use hetchol::core::task::TaskId;
use hetchol::core::time::Time;
use hetchol::core::trace::Trace;
use hetchol::sched::{Dmda, Dmdas, RandomScheduler};
use hetchol::sim::reference::{simulate_reference, simulate_resilient_reference};
use hetchol::sim::{simulate_resilient, simulate_with, SimOptions, SimResult};
use proptest::prelude::*;

/// The platform grid the properties sample from.
fn platform_for(which: u8) -> Platform {
    match which {
        0 => Platform::mirage(),
        1 => Platform::mirage().without_comm(),
        2 => Platform::homogeneous(1),
        _ => Platform::homogeneous(3),
    }
}

/// A fresh scheduler of the sampled kind (schedulers are stateful, so
/// each engine leg gets its own instance).
fn scheduler_for(which: u8, seed: u64) -> Box<dyn Scheduler> {
    match which {
        0 => Box::new(Dmda::new()),
        1 => Box::new(Dmdas::new()),
        _ => Box::new(RandomScheduler::new(seed)),
    }
}

/// Task ids in start order, ties broken by task id — the ISSUE's "same
/// start order" check, stated independently of trace event ordering.
fn start_order(trace: &Trace) -> Vec<TaskId> {
    let mut events: Vec<_> = trace.events.iter().collect();
    events.sort_by_key(|e| (e.start, e.task));
    events.iter().map(|e| e.task).collect()
}

/// Assert every observable output of the two runs is identical.
fn assert_bitwise_equal(arena: &SimResult, reference: &SimResult) -> Result<(), String> {
    prop_assert_eq!(arena.makespan, reference.makespan, "makespan diverged");
    prop_assert_eq!(&arena.trace.events, &reference.trace.events, "task events");
    prop_assert_eq!(
        &arena.trace.transfers,
        &reference.trace.transfers,
        "transfers"
    );
    prop_assert_eq!(
        &arena.trace.queue_events,
        &reference.trace.queue_events,
        "queue events"
    );
    prop_assert_eq!(
        &arena.trace.fault_events,
        &reference.trace.fault_events,
        "fault events"
    );
    prop_assert_eq!(
        start_order(&arena.trace),
        start_order(&reference.trace),
        "start order"
    );
    prop_assert_eq!(&arena.outcome, &reference.outcome, "run outcome");
    prop_assert_eq!(&arena.obs, &reference.obs, "observability report");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fault-free runs: for random platforms × schedulers × seeds, with
    /// and without duration jitter, the arena engine reproduces the
    /// reference engine bit for bit — trace, start order, makespan and
    /// the structured observability report (whose per-worker phases must
    /// also partition the makespan in both engines).
    #[test]
    fn arena_engine_is_bitwise_identical_to_reference(
        n in 1usize..12,
        plat in 0u8..4,
        sched in 0u8..3,
        seed in 0u64..50,
        jittered in 0u8..2,
    ) {
        let graph = TaskGraph::cholesky(n);
        let platform = platform_for(plat);
        let profile = TimingProfile::mirage();
        let opts = if jittered == 1 {
            SimOptions::actual(seed)
        } else {
            SimOptions { seed, ..SimOptions::default() }
        };

        let mut s1 = scheduler_for(sched, seed);
        let arena = simulate_with(
            &graph, &platform, &profile, s1.as_mut(), &opts, ObsSink::enabled(),
        );
        let mut s2 = scheduler_for(sched, seed);
        let reference = simulate_reference(
            &graph, &platform, &profile, s2.as_mut(), &opts, ObsSink::enabled(),
        );
        assert_bitwise_equal(&arena, &reference)?;

        // The shared makespan partition invariant holds for both.
        for r in [&arena, &reference] {
            for p in r.obs.worker_phases() {
                prop_assert_eq!(
                    p.total(),
                    r.obs.makespan(),
                    "worker {} phases do not partition the makespan",
                    p.worker
                );
            }
        }
    }

    /// Chaos leg: under seeded fault plans the resilient entry points of
    /// both engines classify the run identically (Completed / Degraded /
    /// Failed with the same recovery details) and log identical fault
    /// events.
    #[test]
    fn resilient_outcome_classification_is_identical(
        n in 1usize..10,
        plat in 0u8..4,
        sched in 0u8..3,
        seed in 0u64..50,
    ) {
        let graph = TaskGraph::cholesky(n);
        let platform = platform_for(plat);
        let profile = TimingProfile::mirage();
        let opts = SimOptions { seed, ..SimOptions::default() };
        let plan = FaultPlan::seeded(seed, graph.len(), platform.n_workers());
        let policy = RetryPolicy::default();

        let mut s1 = scheduler_for(sched, seed);
        let arena = simulate_resilient(
            &graph, &platform, &profile, s1.as_mut(), &opts, ObsSink::enabled(),
            &plan, &policy,
        )
        .expect("valid configuration");
        let mut s2 = scheduler_for(sched, seed);
        let reference = simulate_resilient_reference(
            &graph, &platform, &profile, s2.as_mut(), &opts, ObsSink::enabled(),
            &plan, &policy,
        )
        .expect("valid configuration");

        assert_bitwise_equal(&arena, &reference)?;
    }
}

/// A long deterministic sweep pinning the headline configuration of the
/// committed benchmark: every paper size on the comm-free Mirage, both
/// dmda and dmdas, must agree on the makespan exactly.
#[test]
fn paper_sweep_makespans_agree_exactly() {
    let platform = Platform::mirage().without_comm();
    let profile = TimingProfile::mirage();
    for n in [4usize, 8, 12, 16, 20, 24, 28, 32] {
        let graph = TaskGraph::cholesky(n);
        for sched in 0u8..2 {
            let mut s1 = scheduler_for(sched, 0);
            let arena = simulate_with(
                &graph,
                &platform,
                &profile,
                s1.as_mut(),
                &SimOptions::default(),
                ObsSink::disabled(),
            );
            let mut s2 = scheduler_for(sched, 0);
            let reference = simulate_reference(
                &graph,
                &platform,
                &profile,
                s2.as_mut(),
                &SimOptions::default(),
                ObsSink::disabled(),
            );
            assert_eq!(
                arena.makespan, reference.makespan,
                "n={n} scheduler {sched}: makespan diverged"
            );
            assert!(arena.makespan > Time::ZERO);
        }
    }
}
