//! Cross-engine equivalence: the real runtime (`hetchol-rt`) and the
//! discrete-event simulator (`hetchol-sim`) are thin drivers over the same
//! execution core (`hetchol_core::exec`), so on a DAG whose scheduling
//! decisions are timing-independent they must produce the *same task-start
//! order* — the rt with profiled estimates and real (no-op) execution, the
//! sim with jitter off. The [`hetchol::Run`] facade is a pure
//! configuration layer over the same entry points, so facade runs must be
//! bit-identical to direct engine calls.

use hetchol::analyze::Linter;
use hetchol::core::dag::TaskGraph;
use hetchol::core::obs::ObsSink;
use hetchol::core::platform::Platform;
use hetchol::core::profiles::TimingProfile;
use hetchol::core::schedule::DurationCheck;
use hetchol::core::scheduler::Scheduler;
use hetchol::core::task::TaskId;
use hetchol::core::time::Time;
use hetchol::core::trace::Trace;
use hetchol::rt::{execute_workload, FnWorkload};
use hetchol::sched::{Dmda, Dmdas, ScheduleInjector};
use hetchol::sim::{simulate_with, SimOptions};
use hetchol::Run;

/// Task ids in start order (stable on equal timestamps, which preserves
/// the engines' completion-order event recording).
fn start_order(trace: &Trace) -> Vec<TaskId> {
    let mut events: Vec<_> = trace.events.iter().collect();
    events.sort_by_key(|e| e.start);
    events.iter().map(|e| e.task).collect()
}

/// Per-worker task sequences in start order.
fn per_worker_order(trace: &Trace, n_workers: usize) -> Vec<Vec<TaskId>> {
    let mut events: Vec<_> = trace.events.iter().collect();
    events.sort_by_key(|e| e.start);
    let mut seqs = vec![Vec::new(); n_workers];
    for e in events {
        seqs[e.worker].push(e.task);
    }
    seqs
}

/// On a single worker every scheduling decision — forced assignment, queue
/// position, pop order — is independent of real task durations, so the two
/// engines must start the tasks in exactly the same sequence, both with
/// FIFO (`dmda`) and sorted (`dmdas`) queues.
#[test]
fn single_worker_start_order_is_identical_across_engines() {
    let graph = TaskGraph::cholesky(4);
    let profile = TimingProfile::mirage_homogeneous();
    let platform = Platform::homogeneous(1);

    let schedulers: Vec<Box<dyn Scheduler + Send>> =
        vec![Box::new(Dmda::new()), Box::new(Dmdas::new())];
    for mut sched in schedulers {
        let sim = simulate_with(
            &graph,
            &platform,
            &profile,
            sched.as_mut(),
            &SimOptions::default(),
            ObsSink::disabled(),
        );
        let sim_order = start_order(&sim.trace);

        // Fresh scheduler instance for the rt leg: schedulers are stateful.
        let mut rt_sched: Box<dyn Scheduler + Send> = if sched.name() == "dmda" {
            Box::new(Dmda::new())
        } else {
            Box::new(Dmdas::new())
        };
        let workload = FnWorkload(|_| Ok::<(), ()>(()));
        let rt = execute_workload(
            &workload,
            &graph,
            rt_sched.as_mut(),
            &profile,
            1,
            ObsSink::disabled(),
        )
        .expect("no-op tasks cannot fail");
        let rt_order = start_order(&rt.trace);

        assert_eq!(sim_order.len(), graph.len(), "{}", sched.name());
        assert_eq!(
            sim_order,
            rt_order,
            "{}: single-worker start order diverged",
            sched.name()
        );
    }
}

/// Multi-worker determinism through the `may_start` gate: replaying an
/// explicit schedule with [`ScheduleInjector`] pins each worker to its
/// planned sequence, so both engines must start each worker's tasks in
/// exactly the planned order — regardless of real durations.
#[test]
fn injected_schedule_replays_same_per_worker_order_in_both_engines() {
    let n_workers = 3;
    let graph = TaskGraph::cholesky(5);
    let profile = TimingProfile::mirage_homogeneous();
    let platform = Platform::homogeneous(n_workers);

    // Plan: a deterministic simulated dmdas run on the same platform.
    let mut planner = Dmdas::new();
    let plan_run = simulate_with(
        &graph,
        &platform,
        &profile,
        &mut planner,
        &SimOptions::default(),
        ObsSink::disabled(),
    );
    let plan = plan_run.trace.to_schedule();
    let planned = per_worker_order(&plan_run.trace, n_workers);

    let mut sim_inject = ScheduleInjector::new(&plan);
    let sim = simulate_with(
        &graph,
        &platform,
        &profile,
        &mut sim_inject,
        &SimOptions::default(),
        ObsSink::disabled(),
    );
    assert_eq!(per_worker_order(&sim.trace, n_workers), planned);

    let mut rt_inject = ScheduleInjector::new(&plan);
    let workload = FnWorkload(|_| Ok::<(), ()>(()));
    let rt = execute_workload(
        &workload,
        &graph,
        &mut rt_inject,
        &profile,
        n_workers,
        ObsSink::disabled(),
    )
    .expect("no-op tasks cannot fail");
    assert_eq!(
        per_worker_order(&rt.trace, n_workers),
        planned,
        "rt replay diverged from the injected plan"
    );

    // Both legs must also pass the linter's replay-divergence rule against
    // the injected plan — the structured form of the assertions above.
    let sim_report = Linter::new(&graph, &platform, &profile)
        .with_prescribed(&plan)
        .lint_trace(&sim.trace);
    assert!(sim_report.is_clean(), "sim: {}", sim_report.to_json());
    let rt_report = Linter::new(&graph, &platform, &profile)
        .duration_check(DurationCheck::Loose)
        .idle_gap_threshold(Time::from_millis(50))
        .with_prescribed(&plan)
        .lint_trace(&rt.trace);
    assert_eq!(rt_report.n_errors(), 0, "rt: {}", rt_report.to_json());
}

/// The facade adds no behaviour: a `Run::simulate` is bit-identical to
/// the direct `simulate_with` call it wraps — same events, transfers,
/// queue events, makespan, and observability spans.
#[test]
fn facade_simulate_is_identical_to_direct_call() {
    let graph = TaskGraph::cholesky(6);
    let platform = Platform::mirage();
    let profile = TimingProfile::mirage();
    let opts = SimOptions::default();

    let mut direct_sched = Dmdas::new();
    let direct = simulate_with(
        &graph,
        &platform,
        &profile,
        &mut direct_sched,
        &opts,
        ObsSink::enabled(),
    );
    let facade = Run::new(&graph)
        .scheduler(Dmdas::new())
        .profile(profile.clone())
        .obs(ObsSink::enabled())
        .simulate(&platform, &opts);

    assert_eq!(facade.makespan, direct.makespan);
    assert_eq!(facade.trace.events, direct.trace.events);
    assert_eq!(facade.trace.transfers, direct.trace.transfers);
    assert_eq!(facade.trace.queue_events, direct.trace.queue_events);
    assert_eq!(facade.obs.spans, direct.obs.spans);
}

/// `Run::execute` wraps `execute_workload`: wall-clock timestamps differ
/// between runs, but on a single worker the start order is fully
/// determined, so facade and direct runs must agree on it.
#[test]
fn facade_execute_matches_direct_call_start_order() {
    let graph = TaskGraph::cholesky(4);
    let profile = TimingProfile::mirage_homogeneous();
    let workload = FnWorkload(|_| Ok::<(), ()>(()));

    let mut direct_sched = Dmdas::new();
    let direct = execute_workload(
        &workload,
        &graph,
        &mut direct_sched,
        &profile,
        1,
        ObsSink::disabled(),
    )
    .expect("no-op tasks cannot fail");
    let facade = Run::new(&graph)
        .scheduler(Dmdas::new())
        .profile(profile.clone())
        .workers(1)
        .obs(ObsSink::enabled())
        .execute(&workload)
        .expect("no-op tasks cannot fail");

    assert_eq!(start_order(&facade.trace), start_order(&direct.trace));
    assert_eq!(facade.obs.spans.len(), graph.len());
    assert!(
        direct.obs.spans.is_empty(),
        "disabled sink must record nothing"
    );
}
