//! Property-based tests spanning the workspace: DAG invariants, bound
//! dominance, simulator validity, numerical correctness — each for
//! arbitrary problem sizes and seeds.

use hetchol::bounds::BoundSet;
use hetchol::core::dag::TaskGraph;
use hetchol::core::platform::Platform;
use hetchol::core::profiles::TimingProfile;
use hetchol::core::schedule::DurationCheck;
use hetchol::core::task::TaskCoords;
use hetchol::core::time::Time;
use hetchol::linalg::matrix::TiledMatrix;
use hetchol::linalg::{factorization_residual, random_spd, tiled_cholesky_in_place};
use hetchol::sched::{Dmda, Dmdas, RandomScheduler, TriangleTrsmOnCpu};
use hetchol::sim::{simulate_with, SimOptions, SimResult};
use proptest::prelude::*;

/// Uninstrumented simulation (the observability sink stays disabled).
fn simulate(
    graph: &TaskGraph,
    platform: &Platform,
    profile: &TimingProfile,
    sched: &mut dyn hetchol::core::scheduler::Scheduler,
    opts: &SimOptions,
) -> SimResult {
    simulate_with(
        graph,
        platform,
        profile,
        sched,
        opts,
        hetchol::core::obs::ObsSink::disabled(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The Cholesky DAG has exactly the closed-form task counts, a single
    /// entry/exit, and consistent adjacency for every size.
    #[test]
    fn dag_structure_invariants(n in 1usize..14) {
        let g = TaskGraph::cholesky(n);
        prop_assert_eq!(g.len(), hetchol::core::kernel::Kernel::total_cholesky_tasks(n));
        prop_assert_eq!(g.entry_tasks().len(), 1);
        prop_assert_eq!(g.exit_tasks().len(), 1);
        // succ/pred symmetry
        for (from, to) in g.edges() {
            prop_assert!(g.predecessors(to).contains(&from));
        }
        // topological order covers everything exactly once
        let order = g.topo_order();
        prop_assert_eq!(order.len(), g.len());
    }

    /// Simulated makespans always dominate every lower bound, for any
    /// scheduler and any seed.
    #[test]
    fn makespan_dominates_bounds(n in 1usize..10, seed in 0u64..50, which in 0u8..4) {
        let platform = Platform::mirage().without_comm();
        let profile = TimingProfile::mirage();
        let graph = TaskGraph::cholesky(n);
        let mut sched: Box<dyn hetchol::core::scheduler::Scheduler> = match which {
            0 => Box::new(RandomScheduler::new(seed)),
            1 => Box::new(Dmda::new()),
            2 => Box::new(Dmdas::new()),
            _ => Box::new(TriangleTrsmOnCpu(Dmdas::new(), (seed % 8) as u32 + 1)),
        };
        let r = simulate(&graph, &platform, &profile, sched.as_mut(), &SimOptions::default());
        let bounds = BoundSet::compute(n, &platform, &profile);
        prop_assert!(r.makespan >= bounds.best(),
            "n={}, sched {}: {} < {}", n, which, r.makespan, bounds.best());
        // And the trace is a valid schedule.
        r.trace.to_schedule()
            .validate(&graph, &platform, &profile, DurationCheck::Exact)
            .unwrap();
    }

    /// The triangle hint always sends exactly the rule-matched TRSMs to
    /// CPU workers, whatever the offset.
    #[test]
    fn triangle_hint_respected_in_full_runs(n in 2usize..10, k in 1u32..8) {
        let platform = Platform::mirage().without_comm();
        let profile = TimingProfile::mirage();
        let graph = TaskGraph::cholesky(n);
        let mut sched = TriangleTrsmOnCpu(Dmdas::new(), k);
        let r = simulate(&graph, &platform, &profile, &mut sched, &SimOptions::default());
        for e in &r.trace.events {
            if let TaskCoords::Trsm { k: step, i } = graph.task(e.task).coords {
                if i - step >= k {
                    prop_assert!(e.worker < 9,
                        "TRSM_{i}_{step} (offset {}) ran on worker {}", i - step, e.worker);
                }
            }
        }
    }

    /// Real numerics: tiled Cholesky factors arbitrary random SPD
    /// matrices to near machine precision.
    #[test]
    fn tiled_cholesky_factors_random_spd(n_tiles in 1usize..5, nb in 2usize..12, seed in 0u64..1000) {
        let a = random_spd(n_tiles * nb, seed);
        let mut m = TiledMatrix::from_dense(&a, nb);
        tiled_cholesky_in_place(&mut m).unwrap();
        let res = factorization_residual(&a, &m);
        prop_assert!(res < 1e-10, "residual {res}");
    }

    /// Jittered (actual-mode) simulations stay within the ±3σ envelope of
    /// the deterministic makespan plus overhead.
    #[test]
    fn actual_mode_stays_enveloped(n in 2usize..8, seed in 0u64..30) {
        let platform = Platform::mirage().without_comm();
        let profile = TimingProfile::mirage();
        let graph = TaskGraph::cholesky(n);
        let mut a = Dmda::new();
        let det = simulate(&graph, &platform, &profile, &mut a, &SimOptions::default());
        let mut b = Dmda::new();
        let act = simulate(&graph, &platform, &profile, &mut b, &SimOptions::actual(seed));
        let ratio = act.makespan.as_secs_f64() / det.makespan.as_secs_f64();
        prop_assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
    }

    /// Bound dominance holds on arbitrary two-class platforms with random
    /// worker counts.
    #[test]
    fn mixed_dominates_area_on_random_platforms(n in 1usize..8, cpus in 1usize..12, gpus in 0usize..5) {
        use hetchol::core::platform::{ResourceClass, ResourceKind};
        let mut classes = vec![ResourceClass { name: "CPU".into(), kind: ResourceKind::Cpu, count: cpus }];
        if gpus > 0 {
            classes.push(ResourceClass { name: "GPU".into(), kind: ResourceKind::Gpu, count: gpus });
        }
        let platform = Platform::new(classes, None);
        let profile = if gpus > 0 { TimingProfile::mirage() } else { TimingProfile::mirage_homogeneous() };
        let area = hetchol::bounds::area_bound(n, &platform, &profile);
        let mixed = hetchol::bounds::mixed_bound(n, &platform, &profile);
        // Both solved to a 0.01% gap independently.
        prop_assert!(mixed.as_secs_f64() >= area.as_secs_f64() * 0.999,
            "mixed {mixed} < area {area}");
        prop_assert!(area > Time::ZERO);
    }

    /// LU and QR DAGs share the structural invariants: closed-form task
    /// counts, acyclicity, adjacency symmetry — for any size.
    #[test]
    fn lu_qr_dag_invariants(n in 1usize..10) {
        use hetchol::core::algorithm::Algorithm;
        for algo in [Algorithm::Lu, Algorithm::Qr] {
            let g = algo.graph(n);
            prop_assert_eq!(g.len(), algo.total_tasks(n), "{} n={}", algo, n);
            prop_assert_eq!(g.topo_order().len(), g.len());
            for (from, to) in g.edges() {
                prop_assert!(g.predecessors(to).contains(&from));
            }
            prop_assert_eq!(g.entry_tasks().len(), 1);
        }
    }

    /// Real numerics for the extensions: LU-nopiv on diagonally dominant
    /// matrices and Householder QR on arbitrary matrices, to near machine
    /// precision for any tiling.
    #[test]
    fn lu_and_qr_numerics(n_tiles in 1usize..4, nb in 2usize..10, seed in 0u64..500) {
        use hetchol::linalg::full::FullTiledMatrix;
        use hetchol::linalg::qr::QrMatrix;
        use hetchol::linalg::{lu_residual, random_diagonally_dominant, tiled_lu_in_place};
        let n = n_tiles * nb;

        let a = random_diagonally_dominant(n, seed);
        let mut m = FullTiledMatrix::from_dense(&a, nb);
        tiled_lu_in_place(&mut m).unwrap();
        prop_assert!(lu_residual(&a, &m) < 1e-10);

        // QR of a generic (possibly singular-ish) matrix still succeeds.
        let b = {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            hetchol::linalg::matrix::Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0))
        };
        let mut qr = QrMatrix::from_dense(&b, nb);
        qr.factorize().unwrap();
        prop_assert!(qr.residual(&b) < 1e-10);
    }

    /// The schedule validator rejects tampered schedules: shifting any
    /// single task earlier by one nanosecond must break *something* when
    /// the task has a predecessor or a queue neighbour.
    #[test]
    fn validator_catches_tampering(n in 2usize..7, victim_seed in 0u64..100) {
        let platform = Platform::mirage().without_comm();
        let profile = TimingProfile::mirage();
        let graph = TaskGraph::cholesky(n);
        let mut sched = Dmdas::new();
        let r = simulate(&graph, &platform, &profile, &mut sched, &SimOptions::default());
        let schedule = r.trace.to_schedule();
        // Pick a victim task that does not start at time zero.
        let victims: Vec<_> = schedule.entries().iter()
            .filter(|e| e.start > Time::ZERO)
            .collect();
        prop_assume!(!victims.is_empty());
        let victim = victims[(victim_seed as usize) % victims.len()].task;
        let mut entries = schedule.entries().to_vec();
        let e = entries.iter_mut().find(|e| e.task == victim).unwrap();
        // Stretch the duration backwards: keeps end, breaks duration check.
        e.start -= Time::from_nanos(1);
        let tampered = hetchol::core::schedule::Schedule::from_entries(entries);
        prop_assert!(tampered
            .validate(&graph, &platform, &profile, DurationCheck::Exact)
            .is_err());
    }
}
