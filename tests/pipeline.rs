//! End-to-end pipeline tests: simulate every scheduler on the Mirage
//! platform, validate every produced schedule with the common referee, and
//! check the paper's headline orderings (random ≪ dmda/dmdas ≤ bounds).

use hetchol::bounds::BoundSet;
use hetchol::core::dag::TaskGraph;
use hetchol::core::platform::Platform;
use hetchol::core::profiles::TimingProfile;
use hetchol::core::schedule::DurationCheck;
use hetchol::core::scheduler::Scheduler;
use hetchol::sched::{Dmda, Dmdas, GemmSyrkOnGpu, RandomScheduler, TriangleTrsmOnCpu};
use hetchol::sim::{simulate_with, SimOptions, SimResult};

/// Uninstrumented simulation (the observability sink stays disabled).
fn simulate(
    graph: &TaskGraph,
    platform: &Platform,
    profile: &TimingProfile,
    sched: &mut dyn Scheduler,
    opts: &SimOptions,
) -> SimResult {
    simulate_with(
        graph,
        platform,
        profile,
        sched,
        opts,
        hetchol::core::obs::ObsSink::disabled(),
    )
}

fn run(n: usize, platform: &Platform, sched: &mut dyn Scheduler) -> SimResult {
    let graph = TaskGraph::cholesky(n);
    let profile = TimingProfile::mirage();
    simulate(&graph, platform, &profile, sched, &SimOptions::default())
}

#[test]
fn every_scheduler_produces_a_valid_schedule() {
    let n = 12;
    let graph = TaskGraph::cholesky(n);
    let profile = TimingProfile::mirage();
    for platform in [Platform::mirage(), Platform::mirage().without_comm()] {
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(RandomScheduler::new(1)),
            Box::new(Dmda::new()),
            Box::new(Dmdas::new()),
            Box::new(GemmSyrkOnGpu(Dmdas::new())),
            Box::new(TriangleTrsmOnCpu(Dmdas::new(), 6)),
            Box::new(TriangleTrsmOnCpu(Dmda::new(), 2)),
        ];
        for sched in schedulers.iter_mut() {
            let r = run(n, &platform, sched.as_mut());
            r.trace
                .to_schedule()
                .validate(&graph, &platform, &profile, DurationCheck::Exact)
                .unwrap_or_else(|e| panic!("{}: {e}", sched.name()));
            assert_eq!(r.trace.events.len(), graph.len(), "{}", sched.name());
        }
    }
}

#[test]
fn no_simulation_beats_the_bounds() {
    // The central sanity property tying the whole reproduction together:
    // every simulated makespan respects every makespan lower bound.
    let profile = TimingProfile::mirage();
    let platform = Platform::mirage().without_comm();
    for n in [2usize, 4, 8, 12, 16] {
        let bounds = BoundSet::compute(n, &platform, &profile);
        let best_lower = bounds.best();
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(RandomScheduler::new(7)),
            Box::new(Dmda::new()),
            Box::new(Dmdas::new()),
            Box::new(TriangleTrsmOnCpu(Dmdas::new(), 6)),
        ];
        for sched in schedulers.iter_mut() {
            let r = run(n, &platform, sched.as_mut());
            assert!(
                r.makespan >= best_lower,
                "n={n}, {}: makespan {} < bound {best_lower}",
                sched.name(),
                r.makespan
            );
        }
    }
}

#[test]
fn informed_schedulers_dominate_random() {
    let platform = Platform::mirage().without_comm();
    for n in [8usize, 16] {
        let random_mean: f64 = (0..5)
            .map(|s| {
                run(n, &platform, &mut RandomScheduler::new(s))
                    .makespan
                    .as_secs_f64()
            })
            .sum::<f64>()
            / 5.0;
        let dmda = run(n, &platform, &mut Dmda::new()).makespan.as_secs_f64();
        let dmdas = run(n, &platform, &mut Dmdas::new()).makespan.as_secs_f64();
        assert!(
            dmda < 0.6 * random_mean,
            "n={n}: dmda {dmda} vs random {random_mean}"
        );
        assert!(dmdas < 0.6 * random_mean, "n={n}");
    }
}

#[test]
fn the_gap_closes_with_matrix_size() {
    // Paper: the dmdas-vs-mixed-bound gap is large for small/medium sizes
    // and shrinks for large ones.
    let platform = Platform::mirage().without_comm();
    let profile = TimingProfile::mirage();
    let gap_at = |n: usize| -> f64 {
        let r = run(n, &platform, &mut Dmdas::new());
        let bound = BoundSet::compute(n, &platform, &profile).mixed_gflops();
        r.gflops(n, profile.nb()) / bound
    };
    let small = gap_at(12);
    let large = gap_at(32);
    assert!(
        small < 0.85,
        "expected a significant gap at n=12, got {small:.2} of the bound"
    );
    assert!(
        large > 0.90,
        "expected dmdas near the bound at n=32, got {large:.2}"
    );
    assert!(large > small);
}

#[test]
fn triangle_hint_beats_dmdas_on_medium_sizes() {
    // The paper's main static-knowledge result, checked on the size range
    // where it matters (best k swept like Figure 10).
    let platform = Platform::mirage().without_comm();
    let profile = TimingProfile::mirage();
    for n in [16usize, 20] {
        let dmdas = run(n, &platform, &mut Dmdas::new()).makespan;
        let best_triangle = (1..n as u32)
            .map(|k| run(n, &platform, &mut TriangleTrsmOnCpu(Dmdas::new(), k)).makespan)
            .min()
            .unwrap();
        assert!(
            best_triangle < dmdas,
            "n={n}: triangle {best_triangle} vs dmdas {dmdas}"
        );
        let _ = profile; // keep the profile alive for clarity
    }
}

#[test]
fn communications_cost_but_do_not_dominate() {
    // With the paper's PCI parameters, dense Cholesky at medium size loses
    // only a modest fraction to transfers (they mostly overlap).
    let n = 16;
    let with_comm = run(n, &Platform::mirage(), &mut Dmda::new()).makespan;
    let comm_free = run(n, &Platform::mirage().without_comm(), &mut Dmda::new()).makespan;
    assert!(with_comm >= comm_free);
    let ratio = with_comm.as_secs_f64() / comm_free.as_secs_f64();
    assert!(
        ratio < 1.35,
        "PCI model cost {ratio:.2}x; transfers should mostly overlap"
    );
}

#[test]
fn related_platform_is_easier_than_unrelated() {
    // Paper Figures 7 vs 8: "unrelated speed-ups make the problem harder" —
    // the fraction of the mixed bound achieved by dmdas is higher on the
    // related platform.
    // For tiny matrices the chain constraint dominates both bounds and the
    // comparison is uninformative; the paper's effect shows from medium
    // sizes on, where the unrelated gap is much larger.
    let platform = Platform::mirage().without_comm();
    for n in [12usize, 16, 20] {
        let graph = TaskGraph::cholesky(n);
        let unrelated_profile = TimingProfile::mirage();
        let related_profile = TimingProfile::mirage_related(n);
        let frac = |profile: &TimingProfile| -> f64 {
            let mut d = Dmdas::new();
            let r = simulate(&graph, &platform, profile, &mut d, &SimOptions::default());
            let bound = BoundSet::compute(n, &platform, profile).mixed_gflops();
            r.gflops(n, profile.nb()) / bound
        };
        let related = frac(&related_profile);
        let unrelated = frac(&unrelated_profile);
        assert!(
            related > unrelated,
            "n={n}: related {related:.2} vs unrelated {unrelated:.2}"
        );
    }
}
