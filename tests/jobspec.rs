//! JobSpec ⇔ Run equivalence: a spec built in code, serialized to the
//! wire format, parsed back, and executed must be **bit-identical** to
//! the direct [`Run`] call it mirrors — same trace events, same queue
//! events, same transfers, same makespan, same outcome. Both paths funnel
//! through `hetchol::job::dispatch_simulate`, and these tests pin that
//! guarantee across the simulate, bounds and chaos legs.

use hetchol::core::fault::{FaultPlan, RetryPolicy, RunOutcome};
use hetchol::core::platform::Platform;
use hetchol::core::profiles::TimingProfile;
use hetchol::core::time::Time;
use hetchol::job::{JobAction, JobSpec, PlatformSpec, ProfileSpec};
use hetchol::prelude::*;
use hetchol_bounds::BoundSet;
use hetchol_sched::registry;
use hetchol_sim::{SimOptions, SimResult};

/// Assert two simulation results are bitwise-identical.
fn assert_bit_identical(direct: &SimResult, via_spec: &SimResult, what: &str) {
    assert_eq!(direct.makespan, via_spec.makespan, "{what}: makespan");
    assert_eq!(direct.outcome, via_spec.outcome, "{what}: outcome");
    assert_eq!(
        direct.trace.events, via_spec.trace.events,
        "{what}: task events"
    );
    assert_eq!(
        direct.trace.transfers, via_spec.trace.transfers,
        "{what}: transfers"
    );
    assert_eq!(
        direct.trace.queue_events, via_spec.trace.queue_events,
        "{what}: queue events"
    );
    assert_eq!(
        direct.trace.fault_events, via_spec.trace.fault_events,
        "{what}: fault events"
    );
}

/// Round-trip a spec through its wire format before running it, so the
/// equivalence also covers the JSON emit + parse path.
fn run_roundtripped(spec: &JobSpec) -> SimResult {
    let wire = spec.to_json();
    let parsed = JobSpec::from_json(&wire).expect("wire round-trip");
    assert_eq!(*spec, parsed, "round-trip must preserve the spec");
    parsed
        .run()
        .expect("valid spec")
        .sim
        .expect("simulate-family action")
}

#[test]
fn simulate_leg_matches_run_over_the_paper_grid() {
    for &(workload, n) in &[("cholesky", 4), ("cholesky", 8), ("lu", 6), ("qr", 6)] {
        for sched in ["dmda", "dmdas", "eager", "random", "triangle:2"] {
            let seed = 7;
            let mut spec = JobSpec::new(workload, n).unwrap().scheduler(sched);
            spec.seed = seed;
            let via_spec = run_roundtripped(&spec);

            let graph = spec.workload.graph(n);
            let direct = Run::new(&graph)
                .scheduler_boxed(registry::build(sched, seed).unwrap())
                .try_simulate(
                    &Platform::mirage(),
                    &SimOptions {
                        seed,
                        ..SimOptions::default()
                    },
                )
                .unwrap();
            assert_bit_identical(&direct, &via_spec, &format!("{workload} n={n} {sched}"));
        }
    }
}

#[test]
fn simulate_leg_matches_run_in_actual_mode() {
    // Jittered "actual execution" mode: same seed → same jitter stream.
    let mut spec = JobSpec::new("cholesky", 8).unwrap().scheduler("dmdas");
    spec.seed = 3;
    spec.jitter = true;
    spec.obs = true;
    let via_spec = run_roundtripped(&spec);

    let graph = TaskGraph::cholesky(8);
    let direct = Run::new(&graph)
        .scheduler_boxed(registry::build("dmdas", 3).unwrap())
        .obs(ObsSink::enabled())
        .try_simulate(&Platform::mirage(), &SimOptions::actual(3))
        .unwrap();
    assert_bit_identical(&direct, &via_spec, "actual mode");
    assert_eq!(
        direct.obs.spans.len(),
        via_spec.obs.spans.len(),
        "obs spans recorded on both paths"
    );
}

#[test]
fn bounds_leg_matches_direct_computation_bitwise() {
    for &(workload, n) in &[("cholesky", 4), ("cholesky", 8), ("lu", 6), ("qr", 6)] {
        let mut spec = JobSpec::new(workload, n).unwrap();
        spec.action = JobAction::Bounds;
        let wire = spec.to_json();
        let run = JobSpec::from_json(&wire).unwrap().run().unwrap();
        let got = run.bounds.expect("bounds action");

        let direct = BoundSet::compute_algo(
            spec.workload,
            n,
            &Platform::mirage(),
            &TimingProfile::mirage(),
        );
        assert_eq!(direct.critical_path, got.critical_path, "{workload} n={n}");
        assert_eq!(direct.area, got.area, "{workload} n={n}");
        assert_eq!(direct.mixed, got.mixed, "{workload} n={n}");
        assert_eq!(
            direct.gemm_peak.to_bits(),
            got.gemm_peak.to_bits(),
            "{workload} n={n}: gemm peak bit pattern"
        );
        assert_eq!(direct.best(), got.best(), "{workload} n={n}");
        // And the precomputed-bounds splice path is result-identical.
        let spliced = spec.run_with_bounds(Some(direct.clone())).unwrap();
        assert_eq!(
            spliced.outcome.bounds, run.outcome.bounds,
            "{workload} n={n}: precomputed splice"
        );
    }
}

#[test]
fn chaos_leg_matches_run_with_faults_and_retries() {
    let plan = FaultPlan::new()
        .kill_worker(1, 6)
        .transient(TaskId(3), 1)
        .straggler(2, 2.0);
    let retry = RetryPolicy {
        max_attempts: 5,
        ..RetryPolicy::default()
    };

    let mut spec = JobSpec::new("cholesky", 6).unwrap().scheduler("dmdas");
    spec.platform = PlatformSpec::Homogeneous(4);
    spec.profile = ProfileSpec::MirageHomogeneous;
    spec.seed = 11;
    spec.faults = plan.clone();
    spec.retry = retry;
    let via_spec = run_roundtripped(&spec);

    let graph = TaskGraph::cholesky(6);
    let direct = Run::new(&graph)
        .scheduler_boxed(registry::build("dmdas", 11).unwrap())
        .profile(TimingProfile::mirage_homogeneous())
        .faults(plan)
        .retry(retry)
        .try_simulate(
            &Platform::homogeneous(4),
            &SimOptions {
                seed: 11,
                ..SimOptions::default()
            },
        )
        .unwrap();
    assert_bit_identical(&direct, &via_spec, "chaos");
    assert!(
        matches!(direct.outcome, RunOutcome::Degraded { .. }),
        "the plan should degrade the run: {:?}",
        direct.outcome
    );
}

#[test]
fn job_outcome_summary_agrees_with_the_sim_it_summarizes() {
    let mut spec = JobSpec::new("cholesky", 8).unwrap();
    spec.action = JobAction::Lint;
    spec.obs = true;
    let run = spec.run().unwrap();
    let sim = run.sim.as_ref().unwrap();
    assert_eq!(run.outcome.makespan, Some(sim.makespan));
    assert!(run.outcome.gflops.unwrap() > 0.0);
    assert_eq!(run.outcome.lint.unwrap().errors, 0);
    assert!(run.outcome.makespan.unwrap() >= run.outcome.bounds.unwrap().best);
    assert!(run.outcome.makespan.unwrap() > Time::ZERO);
}
