//! Extension integration tests: the paper's methodology applied to LU and
//! QR — DAGs, numerics (LU), simulation, bounds — end to end.

use hetchol::bounds::BoundSet;
use hetchol::core::algorithm::Algorithm;
use hetchol::core::dag::TaskGraph;
use hetchol::core::platform::Platform;
use hetchol::core::profiles::TimingProfile;
use hetchol::core::schedule::DurationCheck;
use hetchol::core::scheduler::Scheduler;
use hetchol::linalg::full::FullTiledMatrix;
use hetchol::linalg::{lu_residual, random_diagonally_dominant, tiled_lu_in_place};
use hetchol::sched::{Dmda, Dmdas, EagerScheduler, RandomScheduler};
use hetchol::sim::{simulate_with, SimOptions, SimResult};

/// Uninstrumented simulation (the observability sink stays disabled).
fn simulate(
    graph: &TaskGraph,
    platform: &Platform,
    profile: &TimingProfile,
    sched: &mut dyn Scheduler,
    opts: &SimOptions,
) -> SimResult {
    simulate_with(
        graph,
        platform,
        profile,
        sched,
        opts,
        hetchol::core::obs::ObsSink::disabled(),
    )
}

#[test]
fn lu_and_qr_simulations_validate_and_respect_bounds() {
    let platform = Platform::mirage().without_comm();
    let profile = TimingProfile::mirage();
    for algo in [Algorithm::Lu, Algorithm::Qr] {
        for n in [2usize, 6, 10] {
            let graph = algo.graph(n);
            let bounds = BoundSet::compute_algo(algo, n, &platform, &profile);
            let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
                Box::new(RandomScheduler::new(3)),
                Box::new(EagerScheduler::new()),
                Box::new(Dmda::new()),
                Box::new(Dmdas::new()),
            ];
            for sched in schedulers.iter_mut() {
                let r = simulate(
                    &graph,
                    &platform,
                    &profile,
                    sched.as_mut(),
                    &SimOptions::default(),
                );
                r.trace
                    .to_schedule()
                    .validate(&graph, &platform, &profile, DurationCheck::Exact)
                    .unwrap_or_else(|e| panic!("{algo} n={n} {}: {e}", sched.name()));
                assert!(
                    r.makespan >= bounds.best(),
                    "{algo} n={n} {}: {} < {}",
                    sched.name(),
                    r.makespan,
                    bounds.best()
                );
            }
        }
    }
}

#[test]
fn informed_schedulers_beat_baselines_on_lu_and_qr() {
    let platform = Platform::mirage().without_comm();
    let profile = TimingProfile::mirage();
    for algo in [Algorithm::Lu, Algorithm::Qr] {
        let n = 12;
        let graph = algo.graph(n);
        let mk = |sched: &mut dyn Scheduler| {
            simulate(&graph, &platform, &profile, sched, &SimOptions::default())
                .makespan
                .as_secs_f64()
        };
        let random: f64 = (0..5)
            .map(|s| mk(&mut RandomScheduler::new(s)))
            .sum::<f64>()
            / 5.0;
        let eager = mk(&mut EagerScheduler::new());
        let dmda = mk(&mut Dmda::new());
        assert!(dmda < eager, "{algo}: dmda {dmda} vs eager {eager}");
        assert!(
            dmda < 0.5 * random,
            "{algo}: dmda {dmda} vs random {random}"
        );
    }
}

#[test]
fn lu_numeric_factorization_through_the_dag() {
    // Full numeric LU driven by the DAG in an arbitrary topological order.
    let nb = 8;
    let n_tiles = 4;
    let a = random_diagonally_dominant(n_tiles * nb, 77);
    let graph = Algorithm::Lu.graph(n_tiles);
    let mut m = FullTiledMatrix::from_dense(&a, nb);
    for id in graph.topo_order() {
        hetchol::linalg::lu::apply_lu_task(&mut m, graph.task(id).coords).unwrap();
    }
    let res = lu_residual(&a, &m);
    assert!(res < 1e-12, "residual {res}");

    // Cross-check against the plain sequential loop.
    let mut m2 = FullTiledMatrix::from_dense(&a, nb);
    tiled_lu_in_place(&mut m2).unwrap();
    assert!((lu_residual(&a, &m2) - res).abs() < 1e-14);
}

#[test]
fn qr_costs_more_flops_but_lower_rate() {
    // Sanity on the extension metrics: for the same n, QR moves 4x the
    // Cholesky flops but achieves a lower fraction of its (lower) peak —
    // the serial TSQRT chain is the bottleneck.
    let platform = Platform::mirage().without_comm();
    let profile = TimingProfile::mirage();
    let n = 16;
    let chol = BoundSet::compute_algo(Algorithm::Cholesky, n, &platform, &profile);
    let qr = BoundSet::compute_algo(Algorithm::Qr, n, &platform, &profile);
    assert!(qr.gemm_peak < chol.gemm_peak);
    assert!(Algorithm::Qr.flops(n * 960) > 3.9 * Algorithm::Cholesky.flops(n * 960));
}
