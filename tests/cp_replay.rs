//! The constraint-programming experiments of Sections V-C3 and VI-B:
//! replaying CP solutions through the dynamic runtime (full injection vs
//! mapping-only injection).

use hetchol::core::dag::TaskGraph;
use hetchol::core::platform::Platform;
use hetchol::core::profiles::TimingProfile;
use hetchol::core::schedule::DurationCheck;
use hetchol::core::scheduler::SchedContext;
use hetchol::core::scheduler::Scheduler;
use hetchol::cp::{optimize_from, optimize_schedule, CpOptions};
use hetchol::sched::{Dmda, Dmdas, MappingInjector, ScheduleInjector};
use hetchol::sim::{simulate_with, SimOptions, SimResult};

/// Uninstrumented simulation (the observability sink stays disabled).
fn simulate(
    graph: &TaskGraph,
    platform: &Platform,
    profile: &TimingProfile,
    sched: &mut dyn Scheduler,
    opts: &SimOptions,
) -> SimResult {
    simulate_with(
        graph,
        platform,
        profile,
        sched,
        opts,
        hetchol::core::obs::ObsSink::disabled(),
    )
}

fn fixture(n: usize) -> (TaskGraph, Platform, TimingProfile) {
    (
        TaskGraph::cholesky(n),
        Platform::mirage().without_comm(),
        TimingProfile::mirage(),
    )
}

#[test]
fn cp_solution_replays_within_one_percent() {
    // Paper: "we injected the exact schedule obtained from CP solution in
    // the simulation and obtained almost equal (difference is less than 1%)
    // performance".
    for n in [4usize, 8] {
        let (graph, platform, profile) = fixture(n);
        let sol = optimize_schedule(&graph, &platform, &profile, &CpOptions::quick(1));
        sol.schedule
            .validate(&graph, &platform, &profile, DurationCheck::Exact)
            .unwrap();
        let mut inj = ScheduleInjector::new(&sol.schedule);
        let replay = simulate(
            &graph,
            &platform,
            &profile,
            &mut inj,
            &SimOptions::default(),
        );
        let ratio = replay.makespan.as_secs_f64() / sol.makespan.as_secs_f64();
        // The dynamic replay may compact idle gaps (<= 1.0) but must never
        // be more than 1% slower.
        assert!(
            ratio < 1.01,
            "n={n}: replay {} vs CP {} (ratio {ratio:.4})",
            replay.makespan,
            sol.makespan
        );
    }
}

#[test]
fn cp_with_seeds_dominates_dynamic_schedulers() {
    let n = 8;
    let (graph, platform, profile) = fixture(n);
    let mut dmdas = Dmdas::new();
    let dmdas_run = simulate(
        &graph,
        &platform,
        &profile,
        &mut dmdas,
        &SimOptions::default(),
    );
    let seed_schedule = dmdas_run.trace.to_schedule();
    let sol = optimize_from(
        &graph,
        &platform,
        &profile,
        &[&seed_schedule],
        &CpOptions::quick(3),
    );
    assert!(
        sol.makespan <= dmdas_run.makespan,
        "CP {} must not lose to its own seed {}",
        sol.makespan,
        dmdas_run.makespan
    );
}

#[test]
fn mapping_only_injection_does_not_help() {
    // Paper Section VI-B: injecting only the CP mapping (not the order)
    // performs like the plain dynamic schedulers — the value is in the
    // precise ordering.
    let n = 8;
    let (graph, platform, profile) = fixture(n);
    let sol = optimize_schedule(&graph, &platform, &profile, &CpOptions::quick(2));
    let ctx = SchedContext {
        graph: &graph,
        platform: &platform,
        profile: &profile,
    };
    let mut mapping = MappingInjector::new(&sol.schedule, &ctx);
    let mapped = simulate(
        &graph,
        &platform,
        &profile,
        &mut mapping,
        &SimOptions::default(),
    );
    let mut dmda = Dmda::new();
    let dynamic = simulate(
        &graph,
        &platform,
        &profile,
        &mut dmda,
        &SimOptions::default(),
    );
    // "did not improve the performance of the system compared to ... dmda
    // and dmdas": allow it to be comparable, not dramatically better.
    assert!(
        mapped.makespan.as_secs_f64() > 0.95 * dynamic.makespan.as_secs_f64(),
        "mapping-only {} vs dmda {} — mapping alone should not win big",
        mapped.makespan,
        dynamic.makespan
    );
    // And the run is still a valid execution.
    mapped
        .trace
        .to_schedule()
        .validate(&graph, &platform, &profile, DurationCheck::Exact)
        .unwrap();
}

#[test]
fn full_injection_respects_mapping_exactly() {
    let n = 6;
    let (graph, platform, profile) = fixture(n);
    let sol = optimize_schedule(&graph, &platform, &profile, &CpOptions::quick(4));
    let mut inj = ScheduleInjector::new(&sol.schedule);
    let replay = simulate(
        &graph,
        &platform,
        &profile,
        &mut inj,
        &SimOptions::default(),
    );
    let replayed = replay.trace.to_schedule();
    for e in sol.schedule.entries() {
        assert_eq!(
            replayed.entry(e.task).unwrap().worker,
            e.worker,
            "task {} moved workers during replay",
            e.task
        );
    }
}
