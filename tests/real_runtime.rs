//! Real-execution integration tests: the actual multithreaded runtime
//! (hetchol-rt) factorizing real matrices under every scheduler, verified
//! numerically — the homogeneous "actual execution" leg of the paper.

use hetchol::core::dag::TaskGraph;
use hetchol::core::obs::ObsSink;
use hetchol::core::platform::Platform;
use hetchol::core::profiles::TimingProfile;
use hetchol::core::schedule::DurationCheck;
use hetchol::core::scheduler::Scheduler;
use hetchol::linalg::matrix::TiledMatrix;
use hetchol::linalg::{factorization_residual, random_spd};
use hetchol::rt::{calibrate_profile, execute_workload, CholeskyWorkload};
use hetchol::sched::{Dmda, Dmdas, RandomScheduler, TriangleTrsmOnCpu};

fn factorize_with(
    sched: &mut (dyn Scheduler + Send),
    n_tiles: usize,
    nb: usize,
    workers: usize,
) -> f64 {
    let a = random_spd(n_tiles * nb, 99);
    let workload = CholeskyWorkload::new(&TiledMatrix::from_dense(&a, nb));
    let graph = TaskGraph::cholesky(n_tiles);
    let profile = TimingProfile::mirage_homogeneous();
    let r = execute_workload(
        &workload,
        &graph,
        sched,
        &profile,
        workers,
        ObsSink::disabled(),
    )
    .unwrap();
    assert_eq!(r.trace.events.len(), graph.len());
    factorization_residual(&a, &workload.into_matrix())
}

#[test]
fn all_schedulers_factorize_correctly_on_real_threads() {
    let mut schedulers: Vec<Box<dyn Scheduler + Send>> = vec![
        Box::new(RandomScheduler::new(11)),
        Box::new(Dmda::new()),
        Box::new(Dmdas::new()),
        // The triangle hint degenerates gracefully on a CPU-only platform:
        // class 0 is the only class.
        Box::new(TriangleTrsmOnCpu(Dmdas::new(), 2)),
    ];
    for sched in schedulers.iter_mut() {
        let res = factorize_with(sched.as_mut(), 6, 16, 4);
        assert!(res < 1e-11, "{}: residual {res}", sched.name());
    }
}

#[test]
fn real_trace_validates_and_accounts_time() {
    let n_tiles = 6;
    let nb = 24;
    let workers = 3;
    let a = random_spd(n_tiles * nb, 5);
    let workload = CholeskyWorkload::new(&TiledMatrix::from_dense(&a, nb));
    let graph = TaskGraph::cholesky(n_tiles);
    let profile = TimingProfile::mirage_homogeneous();
    let mut sched = Dmdas::new();
    let r = execute_workload(
        &workload,
        &graph,
        &mut sched,
        &profile,
        workers,
        ObsSink::enabled(),
    )
    .unwrap();
    let platform = Platform::homogeneous(workers);
    r.trace
        .to_schedule()
        .validate(&graph, &platform, &profile, DurationCheck::Loose)
        .unwrap();
    for w in 0..workers {
        assert_eq!(
            r.trace.busy_time(w) + r.trace.idle_time(w),
            r.makespan,
            "worker {w} time accounting"
        );
    }
    // The obs layer's finer partition agrees with the coarse one above:
    // exec + (transfer_wait + queue_wait + idle) == makespan per worker.
    for p in r.obs.worker_phases() {
        assert_eq!(
            p.total(),
            r.makespan,
            "worker {} phase accounting",
            p.worker
        );
        assert_eq!(p.exec, r.trace.busy_time(p.worker), "worker {}", p.worker);
    }
}

#[test]
fn calibrated_profile_drives_the_runtime() {
    // Calibrate on the host, then use the calibrated profile for
    // scheduling estimates — the full StarPU-style loop.
    let nb = 32;
    let profile = calibrate_profile(nb, 3).unwrap();
    let n_tiles = 5;
    let a = random_spd(n_tiles * nb, 21);
    let workload = CholeskyWorkload::new(&TiledMatrix::from_dense(&a, nb));
    let graph = TaskGraph::cholesky(n_tiles);
    let mut sched = Dmdas::new();
    let r = execute_workload(
        &workload,
        &graph,
        &mut sched,
        &profile,
        4,
        ObsSink::disabled(),
    )
    .unwrap();
    assert!(factorization_residual(&a, &workload.into_matrix()) < 1e-11);
    assert!(r.makespan > hetchol::core::time::Time::ZERO);
}

#[test]
fn repeated_runs_stay_numerically_identical_per_schedule_shape() {
    // Different schedulers must produce the same factor (bitwise): the
    // kernels are deterministic and the DAG serialises all conflicts.
    let n_tiles = 5;
    let nb = 16;
    let a = random_spd(n_tiles * nb, 1234);
    let graph = TaskGraph::cholesky(n_tiles);
    let profile = TimingProfile::mirage_homogeneous();

    let mut factors = Vec::new();
    for _ in 0..2 {
        let workload = CholeskyWorkload::new(&TiledMatrix::from_dense(&a, nb));
        let mut sched = Dmda::new();
        execute_workload(
            &workload,
            &graph,
            &mut sched,
            &profile,
            4,
            ObsSink::disabled(),
        )
        .unwrap();
        factors.push(workload.into_matrix());
    }
    let mut m_seq = TiledMatrix::from_dense(&a, nb);
    hetchol::linalg::tiled_cholesky_in_place(&mut m_seq).unwrap();
    for m in &factors {
        for i in 0..n_tiles {
            for j in 0..=i {
                assert_eq!(m.tile(i, j), m_seq.tile(i, j), "tile ({i},{j})");
            }
        }
    }
}
