//! # hetchol — umbrella crate
//!
//! Reproduction of *"Bridging the Gap between Performance and Bounds of
//! Cholesky Factorization on Heterogeneous Platforms"* (Agullo, Beaumont,
//! Eyraud-Dubois, Herrmann, Kumar, Marchal, Thibault — HCW/IPDPS 2015).
//!
//! This crate re-exports the whole workspace behind a single dependency and
//! hosts the runnable examples (`examples/`) and cross-crate integration
//! tests (`tests/`). See the individual crates for the implementation:
//!
//! * [`hetchol_core`] (re-exported as [`core`]) — task graphs, platforms,
//!   timing profiles, schedules, traces, metrics.
//! * [`hetchol_linalg`] (as [`linalg`]) — real f64 tile kernels and the
//!   numeric tiled Cholesky.
//! * [`hetchol_rt`] (as [`rt`]) — a real multithreaded task runtime (actual
//!   execution on host CPU cores).
//! * [`hetchol_sim`] (as [`sim`]) — the discrete-event StarPU-like runtime
//!   simulator with data-transfer modelling.
//! * [`hetchol_sched`] (as [`sched`]) — dynamic schedulers (`random`,
//!   `dmda`, `dmdas`) and static-hint hybrids.
//! * [`hetchol_bounds`] (as [`bounds`]) — area / mixed / critical-path
//!   bounds and the GEMM peak, on an in-repo simplex.
//! * [`hetchol_cp`] (as [`cp`]) — CP-style branch-and-bound and
//!   local-search schedule optimization.
//! * [`hetchol_analyze`] (as [`analyze`]) — the schedule/trace linter and
//!   the interleaving-exploring race checker (DESIGN.md §4).

//!
//! The crate itself hosts the [`Run`] builder facade (`src/run.rs`) — one
//! configuration path into either engine, with observability attached at
//! construction — and its serializable twin, the [`job::JobSpec`] /
//! [`job::JobOutcome`] pair (`src/job.rs`) that the `hetchol-serve` HTTP
//! API and the `repro` CLI submit over the wire. Both funnel simulations
//! through [`job::dispatch_simulate`], so a wire job is bit-identical to
//! a direct builder call.

pub use hetchol_analyze as analyze;
pub use hetchol_bounds as bounds;
pub use hetchol_core as core;
pub use hetchol_cp as cp;
pub use hetchol_linalg as linalg;
pub use hetchol_rt as rt;
pub use hetchol_sched as sched;
pub use hetchol_sim as sim;

pub mod job;
pub mod run;

pub use job::{JobAction, JobError, JobOutcome, JobRun, JobSpec};
pub use run::Run;

/// Convenient glob import for examples and downstream users: core
/// vocabulary types, the [`Run`] facade with both engines' option/result
/// types, the [`Workload`](hetchol_rt::Workload) family, and the
/// observability layer.
///
/// Every item here appears in at least one doctest — see [`Run`],
/// [`crate::core::obs`], and the per-type docs.
pub mod prelude {
    pub use crate::job::{JobAction, JobError, JobOutcome, JobSpec};
    pub use crate::run::Run;
    pub use hetchol_core::fault::{
        ConfigError, FailureCause, FaultKind, FaultPlan, RetryPolicy, RunOutcome,
    };
    pub use hetchol_core::obs::{ObsReport, ObsSink, TaskSpan, WorkerPhases};
    pub use hetchol_core::{
        dag::TaskGraph,
        kernel::Kernel,
        metrics::{gflops, Figure, Series},
        platform::{CommModel, Platform, ResourceClass, ResourceKind},
        profiles::TimingProfile,
        schedule::{DurationCheck, Schedule},
        scheduler::{SchedContext, Scheduler},
        task::{TaskCoords, TaskId, Tile},
        time::Time,
        trace::Trace,
    };
    pub use hetchol_rt::{
        CholeskyWorkload, FnWorkload, LuWorkload, QrWorkload, RtResult, Workload,
    };
    pub use hetchol_sim::{SimOptions, SimResult};
}
