//! Serializable job specifications — the wire-format twin of [`Run`](crate::Run).
//!
//! [`Run`](crate::Run) is the ergonomic in-process facade: it borrows a
//! graph and owns an `impl Scheduler`, neither of which can travel over a
//! wire. A [`JobSpec`] is the same configuration as plain data — the
//! workload and size *by name*, the platform and profile *by name*, the
//! scheduler resolved through [`hetchol_sched::registry`] — plus the
//! fault plan and retry policy, all of it (de)serializable through
//! [`hetchol_core::json`] and content-hashable for the `hetchol-serve`
//! result cache.
//!
//! Both paths funnel into one dispatch function, so a job parsed from
//! JSON runs *bit-identically* to the equivalent direct [`Run`](crate::Run) call
//! (proven in `tests/jobspec.rs`):
//!
//! ```text
//! Run::try_simulate ──┐
//!                     ├──> dispatch_simulate ──> hetchol-sim
//! JobSpec::run ───────┘
//! ```
//!
//! ```
//! use hetchol::job::{JobAction, JobSpec};
//!
//! let spec = JobSpec::new("cholesky", 8).unwrap().scheduler("dmdas");
//! let wire = spec.to_json();
//! let back = JobSpec::from_json(&wire).unwrap();
//! assert_eq!(spec, back);
//! let run = back.run().unwrap();
//! assert!(run.outcome.makespan.unwrap() > hetchol::core::time::Time::ZERO);
//! # let _ = JobAction::Simulate;
//! ```

use hetchol_analyze::{Linter, QueueDiscipline, Report};
use hetchol_bounds::BoundSet;
use hetchol_core::algorithm::Algorithm;
use hetchol_core::dag::TaskGraph;
use hetchol_core::fault::{ConfigError, FailureCause, FaultPlan, RetryPolicy, RunOutcome};
use hetchol_core::hash::{hash_hex, ContentHasher};
use hetchol_core::json::{parse_json, JsonValue};
use hetchol_core::obs::ObsSink;
use hetchol_core::platform::Platform;
use hetchol_core::profiles::TimingProfile;
use hetchol_core::schedule::DurationCheck;
use hetchol_core::scheduler::Scheduler;
use hetchol_core::task::TaskId;
use hetchol_core::time::Time;
use hetchol_sched::registry;
use hetchol_sim::{SimOptions, SimResult};
use std::fmt;

/// The platform, by name. The wire strings are `"mirage"`,
/// `"mirage-nocomm"` and `"homogeneous:<n>"`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PlatformSpec {
    /// [`Platform::mirage`] with its PCI model.
    Mirage,
    /// [`Platform::mirage`] with communications removed (Section V-C2).
    MirageNoComm,
    /// [`Platform::homogeneous`] with `n` CPU cores.
    Homogeneous(usize),
}

impl PlatformSpec {
    /// Materialize the platform.
    pub fn build(&self) -> Platform {
        match *self {
            PlatformSpec::Mirage => Platform::mirage(),
            PlatformSpec::MirageNoComm => Platform::mirage().without_comm(),
            PlatformSpec::Homogeneous(n) => Platform::homogeneous(n),
        }
    }

    /// The wire name.
    pub fn name(&self) -> String {
        match *self {
            PlatformSpec::Mirage => "mirage".into(),
            PlatformSpec::MirageNoComm => "mirage-nocomm".into(),
            PlatformSpec::Homogeneous(n) => format!("homogeneous:{n}"),
        }
    }

    /// Parse a wire name.
    pub fn parse(name: &str) -> Result<PlatformSpec, JobError> {
        match name {
            "mirage" => Ok(PlatformSpec::Mirage),
            "mirage-nocomm" => Ok(PlatformSpec::MirageNoComm),
            _ => name
                .strip_prefix("homogeneous:")
                .and_then(|n| n.parse::<usize>().ok())
                .map(PlatformSpec::Homogeneous)
                .ok_or_else(|| {
                    JobError::spec(format!(
                        "unknown platform {name:?}; known: mirage, mirage-nocomm, homogeneous:<n>"
                    ))
                }),
        }
    }
}

/// The timing profile, by name. The wire strings are `"mirage"`,
/// `"mirage-homogeneous"` and `"related:<n>"`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ProfileSpec {
    /// [`TimingProfile::mirage`] (the paper's Table I, unrelated case).
    Mirage,
    /// [`TimingProfile::mirage_homogeneous`] (CPU column only).
    MirageHomogeneous,
    /// [`TimingProfile::mirage_related`] — the related-speeds construction
    /// of Section V-C2 for an `n × n`-tile factorization.
    Related(usize),
}

impl ProfileSpec {
    /// Materialize the profile.
    pub fn build(&self) -> TimingProfile {
        match *self {
            ProfileSpec::Mirage => TimingProfile::mirage(),
            ProfileSpec::MirageHomogeneous => TimingProfile::mirage_homogeneous(),
            ProfileSpec::Related(n) => TimingProfile::mirage_related(n),
        }
    }

    /// The wire name.
    pub fn name(&self) -> String {
        match *self {
            ProfileSpec::Mirage => "mirage".into(),
            ProfileSpec::MirageHomogeneous => "mirage-homogeneous".into(),
            ProfileSpec::Related(n) => format!("related:{n}"),
        }
    }

    /// Parse a wire name.
    pub fn parse(name: &str) -> Result<ProfileSpec, JobError> {
        match name {
            "mirage" => Ok(ProfileSpec::Mirage),
            "mirage-homogeneous" => Ok(ProfileSpec::MirageHomogeneous),
            _ => name
                .strip_prefix("related:")
                .and_then(|n| n.parse::<usize>().ok())
                .map(ProfileSpec::Related)
                .ok_or_else(|| {
                    JobError::spec(format!(
                        "unknown profile {name:?}; known: mirage, mirage-homogeneous, related:<n>"
                    ))
                }),
        }
    }
}

/// What the job computes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum JobAction {
    /// Run the discrete-event simulator; report makespan/GFLOP/s/outcome.
    Simulate,
    /// Compute the paper's bound set only (no simulation).
    Bounds,
    /// Compute the bounds and certify them in exact arithmetic.
    Certify,
    /// Simulate, then lint the trace against the bounds and the structural
    /// rules; report the finding counts alongside the run summary.
    Lint,
}

impl JobAction {
    /// Stable wire label.
    pub fn label(&self) -> &'static str {
        match self {
            JobAction::Simulate => "simulate",
            JobAction::Bounds => "bounds",
            JobAction::Certify => "certify",
            JobAction::Lint => "lint",
        }
    }

    /// Parse a wire label.
    pub fn parse(label: &str) -> Result<JobAction, JobError> {
        match label {
            "simulate" => Ok(JobAction::Simulate),
            "bounds" => Ok(JobAction::Bounds),
            "certify" => Ok(JobAction::Certify),
            "lint" => Ok(JobAction::Lint),
            _ => Err(JobError::spec(format!(
                "unknown action {label:?}; known: simulate, bounds, certify, lint"
            ))),
        }
    }
}

/// Why a job was rejected. Every variant carries a stable machine-readable
/// [`code`](JobError::code) — the job API's error vocabulary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobError {
    /// The spec itself is malformed (bad JSON, unknown workload/platform/
    /// profile/action, incompatible profile). Code `bad-spec`.
    Spec {
        /// Human-readable description of the problem.
        detail: String,
    },
    /// The scheduler name is not in [`registry::NAMES`]. Code
    /// `unknown-scheduler`.
    UnknownScheduler(registry::UnknownScheduler),
    /// The run configuration is impossible ([`ConfigError`]). Codes
    /// `zero-workers` and `plan-kills-all-workers`.
    Config(ConfigError),
}

impl JobError {
    fn spec(detail: impl Into<String>) -> JobError {
        JobError::Spec {
            detail: detail.into(),
        }
    }

    /// Stable machine-readable error code, used verbatim in API bodies.
    pub fn code(&self) -> &'static str {
        match self {
            JobError::Spec { .. } => "bad-spec",
            JobError::UnknownScheduler(_) => "unknown-scheduler",
            JobError::Config(ConfigError::ZeroWorkers) => "zero-workers",
            JobError::Config(ConfigError::PlanKillsAllWorkers { .. }) => "plan-kills-all-workers",
        }
    }

    /// The error as the job API's JSON error body:
    /// `{"status":"error","code":...,"detail":...}`.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("status".into(), JsonValue::str("error")),
            ("code".into(), JsonValue::str(self.code())),
            ("detail".into(), JsonValue::str(self.to_string())),
        ])
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Spec { detail } => f.write_str(detail),
            JobError::UnknownScheduler(e) => e.fmt(f),
            JobError::Config(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for JobError {}

impl From<ConfigError> for JobError {
    fn from(e: ConfigError) -> JobError {
        JobError::Config(e)
    }
}

impl From<registry::UnknownScheduler> for JobError {
    fn from(e: registry::UnknownScheduler) -> JobError {
        JobError::UnknownScheduler(e)
    }
}

/// A complete, serializable run configuration. See the
/// [module docs](self) for the wire format.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// The factorization to run.
    pub workload: Algorithm,
    /// Matrix size in tiles.
    pub n: usize,
    /// The platform, by name.
    pub platform: PlatformSpec,
    /// The timing profile, by name.
    pub profile: ProfileSpec,
    /// The scheduling policy, by [`registry`] name.
    pub scheduler: String,
    /// What to compute.
    pub action: JobAction,
    /// RNG seed (stochastic schedulers, jittered durations, fault plans).
    pub seed: u64,
    /// `true` runs in the paper's "actual execution" mode
    /// ([`SimOptions::actual`]): duration jitter + per-task overhead.
    pub jitter: bool,
    /// Record structured observability (spans, counters) into the result.
    pub obs: bool,
    /// Faults to inject; the empty plan keeps the fault-free fast path.
    pub faults: FaultPlan,
    /// Recovery policy, consulted when `faults` is non-empty.
    pub retry: RetryPolicy,
    /// Serving-layer deadline in milliseconds. **Not** part of the content
    /// hash: it shapes scheduling of the job, never its result.
    pub budget_ms: Option<u64>,
}

impl JobSpec {
    /// A spec with the same defaults as [`Run::new`](crate::Run::new):
    /// `dmdas` on the Mirage platform and profile, deterministic
    /// simulation, no faults. Errors on an unknown workload name.
    pub fn new(workload: &str, n: usize) -> Result<JobSpec, JobError> {
        Ok(JobSpec {
            workload: parse_workload(workload)?,
            n,
            platform: PlatformSpec::Mirage,
            profile: ProfileSpec::Mirage,
            scheduler: "dmdas".into(),
            action: JobAction::Simulate,
            seed: 0,
            jitter: false,
            obs: false,
            faults: FaultPlan::none(),
            retry: RetryPolicy::default(),
            budget_ms: None,
        })
    }

    /// Use the named scheduling policy (validated at [`JobSpec::run`]).
    pub fn scheduler(mut self, name: impl Into<String>) -> JobSpec {
        self.scheduler = name.into();
        self
    }

    /// Use the named action.
    pub fn action(mut self, action: JobAction) -> JobSpec {
        self.action = action;
        self
    }

    /// Attach a fault plan.
    pub fn faults(mut self, plan: FaultPlan) -> JobSpec {
        self.faults = plan;
        self
    }

    /// Deterministic FNV-1a content hash over everything that determines
    /// the job's *result* — the `hetchol-serve` cache key. `budget_ms` is
    /// deliberately excluded.
    pub fn content_hash(&self) -> u64 {
        let mut h = ContentHasher::new();
        h.write_str(self.workload.label());
        h.write_usize(self.n);
        h.write_str(&self.platform.name());
        h.write_str(&self.profile.name());
        h.write_str(&self.scheduler);
        h.write_str(self.action.label());
        h.write_u64(self.seed);
        h.write_u64(self.jitter as u64);
        h.write_u64(self.obs as u64);
        h.write_usize(self.faults.faults().len());
        for f in self.faults.faults() {
            match *f {
                hetchol_core::fault::Fault::WorkerDeath {
                    worker,
                    after_starts,
                } => {
                    h.write_u64(1);
                    h.write_usize(worker);
                    h.write_u64(after_starts as u64);
                }
                hetchol_core::fault::Fault::Transient {
                    task,
                    failures,
                    kind,
                } => {
                    h.write_u64(2);
                    h.write_u64(task.index() as u64);
                    h.write_u64(failures as u64);
                    h.write_str(kind.label());
                }
                hetchol_core::fault::Fault::Straggler { worker, factor } => {
                    h.write_u64(3);
                    h.write_usize(worker);
                    h.write_f64(factor);
                }
            }
        }
        h.write_u64(self.retry.max_attempts as u64);
        h.write_u64(self.retry.backoff_base.as_nanos());
        h.write_u64(self.retry.backoff_cap.as_nanos());
        match self.retry.watchdog {
            None => h.write_u64(0),
            Some(t) => {
                h.write_u64(1);
                h.write_u64(t.as_nanos());
            }
        }
        h.finish()
    }

    /// The content hash as the 16-hex-digit wire string.
    pub fn hash_hex(&self) -> String {
        hash_hex(self.content_hash())
    }

    /// Serialize to the versioned wire object.
    pub fn to_json_value(&self) -> JsonValue {
        let mut members = vec![
            ("v".into(), JsonValue::uint(1)),
            ("workload".into(), JsonValue::str(self.workload.label())),
            ("n".into(), JsonValue::uint(self.n as u64)),
            ("platform".into(), JsonValue::str(self.platform.name())),
            ("profile".into(), JsonValue::str(self.profile.name())),
            ("scheduler".into(), JsonValue::str(&*self.scheduler)),
            ("action".into(), JsonValue::str(self.action.label())),
            ("seed".into(), JsonValue::uint(self.seed)),
            ("jitter".into(), JsonValue::Bool(self.jitter)),
            ("obs".into(), JsonValue::Bool(self.obs)),
            ("faults".into(), self.faults.to_json_value()),
            ("retry".into(), retry_to_json(&self.retry)),
        ];
        if let Some(ms) = self.budget_ms {
            members.push(("budget_ms".into(), JsonValue::uint(ms)));
        }
        JsonValue::Obj(members)
    }

    /// Compact JSON rendering of [`JobSpec::to_json_value`].
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// Parse the wire object. Optional members (`seed`, `jitter`, `obs`,
    /// `faults`, `retry`, `budget_ms`) fall back to the defaults of
    /// [`JobSpec::new`]; the scheduler name is validated eagerly so wire
    /// errors surface at submission, not execution.
    pub fn from_json_value(v: &JsonValue) -> Result<JobSpec, JobError> {
        let version = match v.get("v") {
            None => 1,
            Some(ver) => ver.as_u64().map_err(JobError::spec)?,
        };
        if version != 1 {
            return Err(JobError::spec(format!(
                "unsupported spec version {version}"
            )));
        }
        let workload = parse_workload(
            v.field("workload")
                .map_err(JobError::spec)?
                .as_str()
                .map_err(JobError::spec)?,
        )?;
        let n = v
            .field("n")
            .map_err(JobError::spec)?
            .as_u64()
            .map_err(JobError::spec)? as usize;
        let mut spec = JobSpec::new(workload.label(), n)?;
        if let Some(p) = v.get("platform") {
            spec.platform = PlatformSpec::parse(p.as_str().map_err(JobError::spec)?)?;
        }
        if let Some(p) = v.get("profile") {
            spec.profile = ProfileSpec::parse(p.as_str().map_err(JobError::spec)?)?;
        }
        if let Some(s) = v.get("scheduler") {
            spec.scheduler = s.as_str().map_err(JobError::spec)?.to_string();
        }
        registry::build(&spec.scheduler, 0)?;
        if let Some(a) = v.get("action") {
            spec.action = JobAction::parse(a.as_str().map_err(JobError::spec)?)?;
        }
        if let Some(s) = v.get("seed") {
            spec.seed = s.as_u64().map_err(JobError::spec)?;
        }
        if let Some(j) = v.get("jitter") {
            spec.jitter = j.as_bool().map_err(JobError::spec)?;
        }
        if let Some(o) = v.get("obs") {
            spec.obs = o.as_bool().map_err(JobError::spec)?;
        }
        if let Some(f) = v.get("faults") {
            spec.faults = FaultPlan::from_json_value(f).map_err(JobError::spec)?;
        }
        if let Some(r) = v.get("retry") {
            spec.retry = retry_from_json(r).map_err(JobError::spec)?;
        }
        spec.budget_ms = match v.get("budget_ms") {
            None | Some(JsonValue::Null) => None,
            Some(ms) => Some(ms.as_u64().map_err(JobError::spec)?),
        };
        Ok(spec)
    }

    /// Parse from JSON text.
    pub fn from_json(text: &str) -> Result<JobSpec, JobError> {
        JobSpec::from_json_value(&parse_json(text).map_err(JobError::spec)?)
    }

    /// Execute the job. Exactly the work a direct [`Run`](crate::Run)
    /// would do — same engine entry points, same scheduler instantiation —
    /// plus the action-specific analyses.
    pub fn run(&self) -> Result<JobRun, JobError> {
        self.run_with_bounds(None)
    }

    /// Like [`JobSpec::run`], but a matching precomputed [`BoundSet`]
    /// (same algorithm, size and tile size) substitutes for the bound
    /// computation — how the `hetchol-serve` shards splice their batched
    /// [`BoundSet::compute_batch`] results into individual jobs. A
    /// non-matching set is ignored and recomputed; bounds are pure
    /// functions of the spec, so the result is identical either way.
    pub fn run_with_bounds(&self, precomputed: Option<BoundSet>) -> Result<JobRun, JobError> {
        let mut scheduler = registry::build(&self.scheduler, self.seed)?;
        let platform = self.platform.build();
        let profile = self.profile.build();
        if profile.n_classes() < platform.n_classes() {
            return Err(JobError::spec(format!(
                "profile {} has {} resource classes but platform {} needs {}",
                self.profile.name(),
                profile.n_classes(),
                self.platform.name(),
                platform.n_classes()
            )));
        }
        let graph = self.workload.graph(self.n);
        let spec_hash = self.content_hash();

        let mut bounds = None;
        let mut certified = None;
        if matches!(
            self.action,
            JobAction::Bounds | JobAction::Certify | JobAction::Lint
        ) {
            let set = precomputed
                .filter(|s| s.algo == self.workload && s.n_tiles == self.n && s.nb == profile.nb())
                .unwrap_or_else(|| {
                    BoundSet::compute_algo(self.workload, self.n, &platform, &profile)
                });
            if self.action == JobAction::Certify {
                certified = Some(match set.certify(&platform, &profile) {
                    Ok(cert) => cert.verify(&platform, &profile).is_ok(),
                    Err(_) => false,
                });
            }
            bounds = Some(set);
        }

        let mut sim = None;
        let mut lint = None;
        if matches!(self.action, JobAction::Simulate | JobAction::Lint) {
            let opts = if self.jitter {
                SimOptions::actual(self.seed)
            } else {
                SimOptions {
                    seed: self.seed,
                    ..SimOptions::default()
                }
            };
            let obs = if self.obs {
                ObsSink::enabled()
            } else {
                ObsSink::disabled()
            };
            let result = dispatch_simulate(
                &graph,
                &platform,
                &profile,
                scheduler.as_mut(),
                &opts,
                obs,
                &self.faults,
                &self.retry,
            )?;
            if self.action == JobAction::Lint {
                lint = Some(lint_result(
                    &graph,
                    &platform,
                    &profile,
                    &*scheduler,
                    self,
                    &bounds,
                    &result,
                ));
            }
            sim = Some(result);
        }

        let outcome = JobOutcome {
            spec_hash,
            workload: self.workload,
            n: self.n,
            scheduler: self.scheduler.clone(),
            action: self.action,
            outcome: sim
                .as_ref()
                .map(|r| r.outcome.clone())
                .unwrap_or(RunOutcome::Completed),
            makespan: sim.as_ref().map(|r| r.makespan),
            gflops: sim
                .as_ref()
                .map(|r| self.workload.gflops(self.n, profile.nb(), r.makespan)),
            bounds: bounds.as_ref().map(BoundsSummary::from_set),
            certified,
            lint: lint.as_ref().map(|r: &Report| LintSummary {
                errors: r.n_errors(),
                warnings: r.n_warnings(),
            }),
        };
        Ok(JobRun {
            spec_hash,
            sim,
            bounds,
            certified,
            lint,
            outcome,
        })
    }
}

impl JobSpec {
    /// Lint a stored result of this spec on demand (the serving layer's
    /// `GET /jobs/<id>/lint`): the exact linter configuration
    /// [`JobAction::Lint`] would have used, applied after the fact to a
    /// result produced under any action.
    pub fn lint_sim(&self, result: &SimResult) -> Result<Report, JobError> {
        let scheduler = registry::build(&self.scheduler, self.seed)?;
        let platform = self.platform.build();
        let profile = self.profile.build();
        let graph = self.workload.graph(self.n);
        let bounds = Some(BoundSet::compute_algo(
            self.workload,
            self.n,
            &platform,
            &profile,
        ));
        Ok(lint_result(
            &graph,
            &platform,
            &profile,
            &*scheduler,
            self,
            &bounds,
            result,
        ))
    }
}

fn parse_workload(name: &str) -> Result<Algorithm, JobError> {
    Algorithm::ALL
        .into_iter()
        .find(|a| a.label() == name)
        .ok_or_else(|| {
            JobError::spec(format!(
                "unknown workload {name:?}; known: cholesky, lu, qr"
            ))
        })
}

fn retry_to_json(r: &RetryPolicy) -> JsonValue {
    JsonValue::Obj(vec![
        (
            "max_attempts".into(),
            JsonValue::uint(r.max_attempts as u64),
        ),
        (
            "backoff_base_ns".into(),
            JsonValue::uint(r.backoff_base.as_nanos()),
        ),
        (
            "backoff_cap_ns".into(),
            JsonValue::uint(r.backoff_cap.as_nanos()),
        ),
        (
            "watchdog_ns".into(),
            match r.watchdog {
                None => JsonValue::Null,
                Some(t) => JsonValue::uint(t.as_nanos()),
            },
        ),
    ])
}

fn retry_from_json(v: &JsonValue) -> Result<RetryPolicy, String> {
    let mut r = RetryPolicy::default();
    if let Some(m) = v.get("max_attempts") {
        r.max_attempts = m.as_u64()? as u32;
    }
    if let Some(b) = v.get("backoff_base_ns") {
        r.backoff_base = Time::from_nanos(b.as_u64()?);
    }
    if let Some(c) = v.get("backoff_cap_ns") {
        r.backoff_cap = Time::from_nanos(c.as_u64()?);
    }
    r.watchdog = match v.get("watchdog_ns") {
        None | Some(JsonValue::Null) => None,
        Some(w) => Some(Time::from_nanos(w.as_u64()?)),
    };
    Ok(r)
}

/// Lint the finished trace with everything the spec implies: exact
/// durations for deterministic runs (loose for jittered ones), the
/// scheduler's queue discipline, the bound set, and the obs report when
/// one was recorded.
fn lint_result(
    graph: &TaskGraph,
    platform: &Platform,
    profile: &TimingProfile,
    scheduler: &dyn Scheduler,
    spec: &JobSpec,
    bounds: &Option<BoundSet>,
    result: &SimResult,
) -> Report {
    let mut linter =
        Linter::new(graph, platform, profile).with_queue_discipline(if scheduler.sorted_queues() {
            QueueDiscipline::Sorted
        } else {
            QueueDiscipline::Fifo
        });
    if spec.jitter || !spec.faults.is_empty() {
        linter = linter.duration_check(DurationCheck::Loose);
    }
    if let Some(set) = bounds {
        linter = linter.with_bounds(set.clone());
    }
    if spec.obs {
        linter = linter.with_obs(&result.obs);
    }
    linter.lint_trace(&result.trace)
}

/// The one entry point both [`Run`](crate::Run) and [`JobSpec`] dispatch
/// simulations through: fault-free configurations take the engine's fast
/// path (bit-identical to [`hetchol_sim::simulate_with`]), plans take the
/// resilient path, and impossible configurations come back as typed
/// [`ConfigError`]s.
#[allow(clippy::too_many_arguments)]
pub fn dispatch_simulate(
    graph: &TaskGraph,
    platform: &Platform,
    profile: &TimingProfile,
    scheduler: &mut dyn Scheduler,
    opts: &SimOptions,
    obs: ObsSink,
    faults: &FaultPlan,
    retry: &RetryPolicy,
) -> Result<SimResult, ConfigError> {
    if faults.is_empty() {
        if platform.n_workers() == 0 {
            return Err(ConfigError::ZeroWorkers);
        }
        return Ok(hetchol_sim::simulate_with(
            graph, platform, profile, scheduler, opts, obs,
        ));
    }
    hetchol_sim::simulate_resilient(
        graph, platform, profile, scheduler, opts, obs, faults, retry,
    )
}

/// The paper's bound set, summarized for the wire.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct BoundsSummary {
    /// Critical-path makespan lower bound.
    pub critical_path: Time,
    /// Area-bound makespan lower bound.
    pub area: Time,
    /// Mixed-bound makespan lower bound.
    pub mixed: Time,
    /// Best-kernel aggregate peak in GFLOP/s.
    pub gemm_peak_gflops: f64,
    /// The tightest makespan lower bound of the set.
    pub best: Time,
}

impl BoundsSummary {
    fn from_set(set: &BoundSet) -> BoundsSummary {
        BoundsSummary {
            critical_path: set.critical_path,
            area: set.area,
            mixed: set.mixed,
            gemm_peak_gflops: set.gemm_peak,
            best: set.best(),
        }
    }

    fn to_json_value(self) -> JsonValue {
        JsonValue::Obj(vec![
            (
                "critical_path_ns".into(),
                JsonValue::uint(self.critical_path.as_nanos()),
            ),
            ("area_ns".into(), JsonValue::uint(self.area.as_nanos())),
            ("mixed_ns".into(), JsonValue::uint(self.mixed.as_nanos())),
            (
                "gemm_peak_gflops".into(),
                JsonValue::num(self.gemm_peak_gflops),
            ),
            ("best_ns".into(), JsonValue::uint(self.best.as_nanos())),
        ])
    }

    fn from_json_value(v: &JsonValue) -> Result<BoundsSummary, String> {
        Ok(BoundsSummary {
            critical_path: Time::from_nanos(v.field("critical_path_ns")?.as_u64()?),
            area: Time::from_nanos(v.field("area_ns")?.as_u64()?),
            mixed: Time::from_nanos(v.field("mixed_ns")?.as_u64()?),
            gemm_peak_gflops: v.field("gemm_peak_gflops")?.as_f64()?,
            best: Time::from_nanos(v.field("best_ns")?.as_u64()?),
        })
    }
}

/// Lint finding counts, summarized for the wire.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LintSummary {
    /// Error-severity findings.
    pub errors: usize,
    /// Warning-severity findings.
    pub warnings: usize,
}

/// The serializable result summary of one job.
#[derive(Clone, Debug, PartialEq)]
pub struct JobOutcome {
    /// [`JobSpec::content_hash`] of the spec that produced this.
    pub spec_hash: u64,
    /// Echoed workload.
    pub workload: Algorithm,
    /// Echoed size in tiles.
    pub n: usize,
    /// Echoed scheduler name.
    pub scheduler: String,
    /// Echoed action.
    pub action: JobAction,
    /// How the run ended ([`RunOutcome::Completed`] for bound-only jobs).
    pub outcome: RunOutcome,
    /// Simulated makespan (simulate/lint actions).
    pub makespan: Option<Time>,
    /// Achieved GFLOP/s (simulate/lint actions).
    pub gflops: Option<f64>,
    /// Bound summary (bounds/certify/lint actions).
    pub bounds: Option<BoundsSummary>,
    /// Whether exact certification succeeded (certify action).
    pub certified: Option<bool>,
    /// Lint finding counts (lint action).
    pub lint: Option<LintSummary>,
}

impl JobOutcome {
    /// Serialize to the wire object (`{"status":"ok", ...}`).
    pub fn to_json_value(&self) -> JsonValue {
        let mut members = vec![
            ("status".into(), JsonValue::str("ok")),
            ("spec_hash".into(), JsonValue::str(hash_hex(self.spec_hash))),
            ("workload".into(), JsonValue::str(self.workload.label())),
            ("n".into(), JsonValue::uint(self.n as u64)),
            ("scheduler".into(), JsonValue::str(&*self.scheduler)),
            ("action".into(), JsonValue::str(self.action.label())),
            ("outcome".into(), outcome_to_json(&self.outcome)),
        ];
        if let Some(m) = self.makespan {
            members.push(("makespan_ns".into(), JsonValue::uint(m.as_nanos())));
        }
        if let Some(g) = self.gflops {
            members.push(("gflops".into(), JsonValue::num(g)));
        }
        if let Some(b) = &self.bounds {
            members.push(("bounds".into(), b.to_json_value()));
        }
        if let Some(c) = self.certified {
            members.push(("certified".into(), JsonValue::Bool(c)));
        }
        if let Some(l) = self.lint {
            members.push((
                "lint".into(),
                JsonValue::Obj(vec![
                    ("errors".into(), JsonValue::uint(l.errors as u64)),
                    ("warnings".into(), JsonValue::uint(l.warnings as u64)),
                ]),
            ));
        }
        JsonValue::Obj(members)
    }

    /// Compact JSON rendering.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// Parse the wire object back (the client half of the API).
    pub fn from_json_value(v: &JsonValue) -> Result<JobOutcome, String> {
        let status = v.field("status")?.as_str()?;
        if status != "ok" {
            return Err(format!("not a job outcome: status {status:?}"));
        }
        let hex = v.field("spec_hash")?.as_str()?;
        let spec_hash =
            u64::from_str_radix(hex, 16).map_err(|e| format!("bad spec_hash {hex:?}: {e}"))?;
        let workload_label = v.field("workload")?.as_str()?;
        let workload = Algorithm::ALL
            .into_iter()
            .find(|a| a.label() == workload_label)
            .ok_or_else(|| format!("unknown workload {workload_label:?}"))?;
        Ok(JobOutcome {
            spec_hash,
            workload,
            n: v.field("n")?.as_u64()? as usize,
            scheduler: v.field("scheduler")?.as_str()?.to_string(),
            action: JobAction::parse(v.field("action")?.as_str()?).map_err(|e| e.to_string())?,
            outcome: outcome_from_json(v.field("outcome")?)?,
            makespan: match v.get("makespan_ns") {
                None => None,
                Some(m) => Some(Time::from_nanos(m.as_u64()?)),
            },
            gflops: match v.get("gflops") {
                None => None,
                Some(g) => Some(g.as_f64()?),
            },
            bounds: match v.get("bounds") {
                None => None,
                Some(b) => Some(BoundsSummary::from_json_value(b)?),
            },
            certified: match v.get("certified") {
                None => None,
                Some(c) => Some(c.as_bool()?),
            },
            lint: match v.get("lint") {
                None => None,
                Some(l) => Some(LintSummary {
                    errors: l.field("errors")?.as_u64()? as usize,
                    warnings: l.field("warnings")?.as_u64()? as usize,
                }),
            },
        })
    }

    /// Parse from JSON text.
    pub fn from_json(text: &str) -> Result<JobOutcome, String> {
        JobOutcome::from_json_value(&parse_json(text)?)
    }
}

/// `RunOutcome` on the wire:
/// `{"label":"completed"}`,
/// `{"label":"degraded","lost_workers":[...],"retries":N}` or
/// `{"label":"failed","cause":{...}}`.
pub fn outcome_to_json(outcome: &RunOutcome) -> JsonValue {
    match outcome {
        RunOutcome::Completed => {
            JsonValue::Obj(vec![("label".into(), JsonValue::str("completed"))])
        }
        RunOutcome::Degraded {
            lost_workers,
            retries,
        } => JsonValue::Obj(vec![
            ("label".into(), JsonValue::str("degraded")),
            (
                "lost_workers".into(),
                JsonValue::Arr(
                    lost_workers
                        .iter()
                        .map(|&w| JsonValue::uint(w as u64))
                        .collect(),
                ),
            ),
            ("retries".into(), JsonValue::uint(*retries)),
        ]),
        RunOutcome::Failed { cause } => JsonValue::Obj(vec![
            ("label".into(), JsonValue::str("failed")),
            ("cause".into(), cause_to_json(cause)),
        ]),
    }
}

/// Parse the wire shape emitted by [`outcome_to_json`].
pub fn outcome_from_json(v: &JsonValue) -> Result<RunOutcome, String> {
    match v.field("label")?.as_str()? {
        "completed" => Ok(RunOutcome::Completed),
        "degraded" => Ok(RunOutcome::Degraded {
            lost_workers: v
                .field("lost_workers")?
                .as_arr()?
                .iter()
                .map(|w| w.as_u64().map(|w| w as usize))
                .collect::<Result<Vec<_>, _>>()?,
            retries: v.field("retries")?.as_u64()?,
        }),
        "failed" => Ok(RunOutcome::Failed {
            cause: cause_from_json(v.field("cause")?)?,
        }),
        other => Err(format!("unknown outcome label {other:?}")),
    }
}

fn cause_to_json(cause: &FailureCause) -> JsonValue {
    match cause {
        FailureCause::RetriesExhausted {
            task,
            attempts,
            kind,
        } => JsonValue::Obj(vec![
            ("kind".into(), JsonValue::str("retries-exhausted")),
            ("task".into(), JsonValue::uint(task.index() as u64)),
            ("attempts".into(), JsonValue::uint(*attempts as u64)),
            ("fault".into(), JsonValue::str(kind.label())),
        ]),
        FailureCause::AllWorkersLost => {
            JsonValue::Obj(vec![("kind".into(), JsonValue::str("all-workers-lost"))])
        }
        FailureCause::Kernel { task, detail } => JsonValue::Obj(vec![
            ("kind".into(), JsonValue::str("kernel")),
            ("task".into(), JsonValue::uint(task.index() as u64)),
            ("detail".into(), JsonValue::str(&**detail)),
        ]),
        FailureCause::Stalled { remaining } => JsonValue::Obj(vec![
            ("kind".into(), JsonValue::str("stalled")),
            ("remaining".into(), JsonValue::uint(*remaining as u64)),
        ]),
    }
}

fn cause_from_json(v: &JsonValue) -> Result<FailureCause, String> {
    match v.field("kind")?.as_str()? {
        "retries-exhausted" => {
            let label = v.field("fault")?.as_str()?;
            Ok(FailureCause::RetriesExhausted {
                task: TaskId(v.field("task")?.as_u64()? as u32),
                attempts: v.field("attempts")?.as_u64()? as u32,
                kind: hetchol_core::fault::FaultKind::from_label(label)
                    .ok_or_else(|| format!("unknown fault kind label {label:?}"))?,
            })
        }
        "all-workers-lost" => Ok(FailureCause::AllWorkersLost),
        "kernel" => Ok(FailureCause::Kernel {
            task: TaskId(v.field("task")?.as_u64()? as u32),
            detail: v.field("detail")?.as_str()?.to_string(),
        }),
        "stalled" => Ok(FailureCause::Stalled {
            remaining: v.field("remaining")?.as_u64()? as usize,
        }),
        other => Err(format!("unknown failure cause kind {other:?}")),
    }
}

/// Everything [`JobSpec::run`] produced: the full engine results (trace,
/// obs, bound set, lint report) for callers that keep the job around —
/// the serve layer's per-job store — plus the serializable
/// [`JobOutcome`] summary.
#[derive(Debug)]
pub struct JobRun {
    /// [`JobSpec::content_hash`] of the producing spec.
    pub spec_hash: u64,
    /// The full simulation result (simulate/lint actions).
    pub sim: Option<SimResult>,
    /// The full bound set (bounds/certify/lint actions).
    pub bounds: Option<BoundSet>,
    /// Whether exact certification succeeded (certify action).
    pub certified: Option<bool>,
    /// The full lint report (lint action).
    pub lint: Option<Report>,
    /// The serializable summary.
    pub outcome: JobOutcome,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetchol_core::fault::Fault;

    #[test]
    fn spec_json_round_trip_preserves_everything() {
        let mut spec = JobSpec::new("lu", 6).unwrap().scheduler("triangle:4");
        spec.platform = PlatformSpec::Homogeneous(5);
        spec.profile = ProfileSpec::MirageHomogeneous;
        spec.action = JobAction::Lint;
        spec.seed = 42;
        spec.jitter = true;
        spec.obs = true;
        spec.faults = FaultPlan::new()
            .kill_worker(2, 6)
            .transient(TaskId(3), 1)
            .straggler(1, 3.5);
        spec.retry = RetryPolicy {
            max_attempts: 7,
            backoff_base: Time::from_micros(50),
            backoff_cap: Time::from_millis(2),
            watchdog: Some(Time::from_millis(100)),
        };
        spec.budget_ms = Some(1500);
        let back = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, back);
        assert_eq!(spec.content_hash(), back.content_hash());
    }

    #[test]
    fn budget_is_not_part_of_the_content_hash() {
        let a = JobSpec::new("cholesky", 4).unwrap();
        let mut b = a.clone();
        b.budget_ms = Some(10);
        assert_eq!(a.content_hash(), b.content_hash());
        let mut c = a.clone();
        c.seed = 1;
        assert_ne!(a.content_hash(), c.content_hash());
    }

    #[test]
    fn unknown_names_have_stable_codes() {
        assert_eq!(
            JobSpec::from_json(r#"{"workload":"svd","n":4}"#)
                .unwrap_err()
                .code(),
            "bad-spec"
        );
        assert_eq!(
            JobSpec::from_json(r#"{"workload":"cholesky","n":4,"scheduler":"dmdax"}"#)
                .unwrap_err()
                .code(),
            "unknown-scheduler"
        );
        let kills_all = JobSpec::new("cholesky", 4)
            .unwrap()
            .faults(FaultPlan::new().kill_worker(0, 0).kill_worker(1, 0));
        let mut kills_all = kills_all;
        kills_all.platform = PlatformSpec::Homogeneous(2);
        kills_all.profile = ProfileSpec::MirageHomogeneous;
        let err = kills_all.run().unwrap_err();
        assert_eq!(err.code(), "plan-kills-all-workers");
        // Error bodies carry the code verbatim.
        let body = err.to_json_value().render();
        assert!(
            body.contains(r#""code":"plan-kills-all-workers""#),
            "{body}"
        );
    }

    #[test]
    fn bounds_action_reports_the_figure_2_set() {
        let mut spec = JobSpec::new("cholesky", 8).unwrap();
        spec.action = JobAction::Bounds;
        let run = spec.run().unwrap();
        assert!(run.sim.is_none());
        let b = run.outcome.bounds.unwrap();
        assert!(b.best >= b.mixed && b.mixed >= Time::ZERO);
        assert!(b.gemm_peak_gflops > 0.0);
        assert_eq!(run.outcome.outcome, RunOutcome::Completed);
    }

    #[test]
    fn lint_action_is_clean_on_deterministic_runs() {
        let mut spec = JobSpec::new("cholesky", 6).unwrap();
        spec.action = JobAction::Lint;
        spec.obs = true;
        let run = spec.run().unwrap();
        let lint = run.outcome.lint.unwrap();
        assert_eq!(lint.errors, 0, "{:?}", run.lint);
        assert!(run.sim.is_some());
    }

    #[test]
    fn outcome_json_round_trips_through_the_client_parser() {
        let mut spec = JobSpec::new("cholesky", 6).unwrap();
        spec.platform = PlatformSpec::Homogeneous(3);
        spec.profile = ProfileSpec::MirageHomogeneous;
        spec.faults = FaultPlan::new().kill_worker(1, 6);
        let run = spec.run().unwrap();
        assert_eq!(run.outcome.outcome.label(), "degraded");
        let back = JobOutcome::from_json(&run.outcome.to_json()).unwrap();
        assert_eq!(run.outcome, back);
    }

    #[test]
    fn fault_wire_shape_round_trips() {
        for fault in [
            Fault::WorkerDeath {
                worker: 3,
                after_starts: 9,
            },
            Fault::Transient {
                task: TaskId(5),
                failures: 2,
                kind: hetchol_core::fault::FaultKind::Numerical,
            },
            Fault::Straggler {
                worker: 1,
                factor: 2.5,
            },
        ] {
            let back = Fault::from_json_value(&fault.to_json_value()).unwrap();
            assert_eq!(fault, back);
        }
    }
}
