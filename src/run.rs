//! The unified run facade: one builder over both engines.
//!
//! [`Run`] gathers everything a run needs — the task graph, a scheduler,
//! a timing profile, a worker count, and an observability sink — and then
//! dispatches to either engine from the same configuration:
//!
//! * [`Run::simulate`] drives the discrete-event simulator
//!   ([`hetchol_sim::simulate_with`]) on a [`Platform`];
//! * [`Run::execute`] drives the real multithreaded runtime
//!   ([`hetchol_rt::execute_workload`]) on a [`Workload`].
//!
//! Both paths share the execution core (`hetchol-core::exec`), so a
//! facade run is *bit-identical* to calling the engine directly with the
//! same arguments (golden-tested in `tests/cross_engine.rs`). Simulation
//! dispatch itself lives in [`crate::job::dispatch_simulate`] — the same
//! function a deserialized [`crate::job::JobSpec`] runs through, which is
//! what makes wire-submitted jobs bit-identical to direct builder calls
//! (`tests/jobspec.rs`).
//!
//! Fault injection rides on the same builder: [`Run::faults`] attaches a
//! [`FaultPlan`] and [`Run::retry`] a [`RetryPolicy`]; [`Run::try_simulate`]
//! and [`Run::try_execute`] then return typed [`ConfigError`]s for
//! impossible configurations (zero workers, a plan that kills every
//! worker) instead of hanging or panicking, and the results carry a
//! structured [`RunOutcome`](hetchol_core::fault::RunOutcome).
//!
//! ```
//! use hetchol::prelude::*;
//!
//! let graph = TaskGraph::cholesky(6);
//! let result = Run::new(&graph)
//!     .scheduler(hetchol::sched::Dmdas::new())
//!     .profile(TimingProfile::mirage())
//!     .obs(ObsSink::enabled())
//!     .simulate(&Platform::mirage(), &SimOptions::default());
//! assert_eq!(result.obs.spans.len(), graph.len());
//! ```

use hetchol_core::dag::TaskGraph;
use hetchol_core::fault::{ConfigError, FaultPlan, RetryPolicy};
use hetchol_core::obs::ObsSink;
use hetchol_core::platform::Platform;
use hetchol_core::profiles::TimingProfile;
use hetchol_core::scheduler::Scheduler;
use hetchol_rt::{RtResult, Workload};
use hetchol_sim::{SimOptions, SimResult};

/// Builder facade over both engines; see the [module docs](self).
///
/// Defaults: [`hetchol_sched::Dmdas`], [`TimingProfile::mirage`],
/// 4 workers (threaded runtime only — the simulator takes its worker
/// count from the [`Platform`]), observability disabled.
pub struct Run<'a> {
    graph: &'a TaskGraph,
    scheduler: Box<dyn Scheduler + Send + 'a>,
    profile: TimingProfile,
    workers: usize,
    obs: ObsSink,
    faults: FaultPlan,
    retry: RetryPolicy,
}

impl<'a> Run<'a> {
    /// Start configuring a run of `graph` with the defaults above.
    pub fn new(graph: &'a TaskGraph) -> Self {
        Run {
            graph,
            scheduler: Box::new(hetchol_sched::Dmdas::new()),
            profile: TimingProfile::mirage(),
            workers: 4,
            obs: ObsSink::disabled(),
            faults: FaultPlan::none(),
            retry: RetryPolicy::default(),
        }
    }

    /// Use `scheduler` instead of the default `dmdas`.
    pub fn scheduler(mut self, scheduler: impl Scheduler + Send + 'a) -> Self {
        self.scheduler = Box::new(scheduler);
        self
    }

    /// Use an already-boxed scheduler (e.g. one selected at runtime).
    pub fn scheduler_boxed(mut self, scheduler: Box<dyn Scheduler + Send + 'a>) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Use `profile` for kernel timing estimates (both engines) and
    /// durations (simulator).
    pub fn profile(mut self, profile: TimingProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Number of real worker threads for [`Run::execute`]. Ignored by
    /// [`Run::simulate`], which sizes itself from the platform.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Attach an observability sink ([`ObsSink::enabled`] records spans
    /// and counters; the default disabled sink costs nothing).
    pub fn obs(mut self, obs: ObsSink) -> Self {
        self.obs = obs;
        self
    }

    /// Inject `plan` into the run (both engines). An empty plan — the
    /// default — leaves the engines on their fault-free fast path,
    /// bit-identical to not calling this at all.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Respond to injected failures with `policy` (attempt budget,
    /// exponential backoff, optional watchdog). Only consulted when a
    /// fault plan is attached.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Run the discrete-event simulator on `platform`.
    ///
    /// With a fault plan attached this delegates to the resilient engine;
    /// an impossible configuration panics — use [`Run::try_simulate`] for
    /// a typed [`ConfigError`] instead.
    pub fn simulate(self, platform: &Platform, opts: &SimOptions) -> SimResult {
        self.try_simulate(platform, opts)
            .unwrap_or_else(|e| panic!("impossible run configuration: {e}"))
    }

    /// Like [`Run::simulate`], but impossible configurations (zero
    /// workers, a plan killing every worker) come back as a
    /// [`ConfigError`].
    ///
    /// ```
    /// use hetchol::prelude::*;
    ///
    /// let graph = TaskGraph::cholesky(4);
    /// let plan = FaultPlan::new().kill_worker(1, 6);
    /// let r = Run::new(&graph)
    ///     .profile(TimingProfile::mirage_homogeneous())
    ///     .faults(plan)
    ///     .try_simulate(&Platform::homogeneous(3), &SimOptions::default())
    ///     .unwrap();
    /// assert_eq!(r.outcome.label(), "degraded");
    ///
    /// let kills_all = FaultPlan::new().kill_worker(0, 0).kill_worker(1, 0);
    /// let err = Run::new(&graph)
    ///     .faults(kills_all)
    ///     .try_simulate(&Platform::homogeneous(2), &SimOptions::default())
    ///     .unwrap_err();
    /// assert!(matches!(err, ConfigError::PlanKillsAllWorkers { .. }));
    /// ```
    pub fn try_simulate(
        mut self,
        platform: &Platform,
        opts: &SimOptions,
    ) -> Result<SimResult, ConfigError> {
        crate::job::dispatch_simulate(
            self.graph,
            platform,
            &self.profile,
            self.scheduler.as_mut(),
            opts,
            self.obs,
            &self.faults,
            &self.retry,
        )
    }

    /// Run `workload` on real threads via the task runtime.
    ///
    /// ```
    /// use hetchol::prelude::*;
    ///
    /// let graph = TaskGraph::cholesky(4);
    /// let workload = FnWorkload(|_: TaskCoords| Ok::<(), std::convert::Infallible>(()));
    /// let result: RtResult = Run::new(&graph)
    ///     .profile(TimingProfile::mirage_homogeneous())
    ///     .workers(2)
    ///     .obs(ObsSink::enabled())
    ///     .execute(&workload)
    ///     .unwrap();
    /// let report: ObsReport = result.obs;
    /// let spans: &[TaskSpan] = &report.spans;
    /// assert_eq!(spans.len(), graph.len());
    /// // Per worker, the phase accounting partitions the makespan.
    /// let phases: Vec<WorkerPhases> = report.worker_phases();
    /// assert!(phases.iter().all(|p| p.total() == report.makespan()));
    /// ```
    pub fn execute<W: Workload + ?Sized>(mut self, workload: &W) -> Result<RtResult, W::Error> {
        if !self.faults.is_empty() {
            let r = self
                .try_execute(workload)
                .unwrap_or_else(|e| panic!("impossible run configuration: {e}"));
            return Ok(r);
        }
        assert!(
            self.workers > 0,
            "impossible run configuration: {}",
            ConfigError::ZeroWorkers
        );
        hetchol_rt::execute_workload(
            workload,
            self.graph,
            self.scheduler.as_mut(),
            &self.profile,
            self.workers,
            self.obs,
        )
    }

    /// Run `workload` through the resilient runtime: the attached fault
    /// plan is injected, failures are retried per the policy, and kernel
    /// errors are folded into the result's
    /// [`RunOutcome`](hetchol_core::fault::RunOutcome) instead of aborting
    /// the run. Impossible configurations come back as [`ConfigError`]s
    /// — including `workers == 0`, which would make the legacy path hang
    /// forever waiting for threads that don't exist.
    pub fn try_execute<W: Workload + ?Sized>(
        mut self,
        workload: &W,
    ) -> Result<RtResult, ConfigError> {
        hetchol_rt::execute_resilient(
            workload,
            self.graph,
            self.scheduler.as_mut(),
            &self.profile,
            self.workers,
            self.obs,
            &self.faults,
            &self.retry,
        )
    }
}
