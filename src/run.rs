//! The unified run facade: one builder over both engines.
//!
//! [`Run`] gathers everything a run needs — the task graph, a scheduler,
//! a timing profile, a worker count, and an observability sink — and then
//! dispatches to either engine from the same configuration:
//!
//! * [`Run::simulate`] drives the discrete-event simulator
//!   ([`hetchol_sim::simulate_with`]) on a [`Platform`];
//! * [`Run::execute`] drives the real multithreaded runtime
//!   ([`hetchol_rt::execute_workload`]) on a [`Workload`].
//!
//! Both paths share the execution core (`hetchol-core::exec`), so a
//! facade run is *bit-identical* to calling the engine directly with the
//! same arguments (golden-tested in `tests/cross_engine.rs`).
//!
//! ```
//! use hetchol::prelude::*;
//!
//! let graph = TaskGraph::cholesky(6);
//! let result = Run::new(&graph)
//!     .scheduler(hetchol::sched::Dmdas::new())
//!     .profile(TimingProfile::mirage())
//!     .obs(ObsSink::enabled())
//!     .simulate(&Platform::mirage(), &SimOptions::default());
//! assert_eq!(result.obs.spans.len(), graph.len());
//! ```

use hetchol_core::dag::TaskGraph;
use hetchol_core::obs::ObsSink;
use hetchol_core::platform::Platform;
use hetchol_core::profiles::TimingProfile;
use hetchol_core::scheduler::Scheduler;
use hetchol_rt::{RtResult, Workload};
use hetchol_sim::{SimOptions, SimResult};

/// Builder facade over both engines; see the [module docs](self).
///
/// Defaults: [`hetchol_sched::Dmdas`], [`TimingProfile::mirage`],
/// 4 workers (threaded runtime only — the simulator takes its worker
/// count from the [`Platform`]), observability disabled.
pub struct Run<'a> {
    graph: &'a TaskGraph,
    scheduler: Box<dyn Scheduler + Send + 'a>,
    profile: TimingProfile,
    workers: usize,
    obs: ObsSink,
}

impl<'a> Run<'a> {
    /// Start configuring a run of `graph` with the defaults above.
    pub fn new(graph: &'a TaskGraph) -> Self {
        Run {
            graph,
            scheduler: Box::new(hetchol_sched::Dmdas::new()),
            profile: TimingProfile::mirage(),
            workers: 4,
            obs: ObsSink::disabled(),
        }
    }

    /// Use `scheduler` instead of the default `dmdas`.
    pub fn scheduler(mut self, scheduler: impl Scheduler + Send + 'a) -> Self {
        self.scheduler = Box::new(scheduler);
        self
    }

    /// Use an already-boxed scheduler (e.g. one selected at runtime).
    pub fn scheduler_boxed(mut self, scheduler: Box<dyn Scheduler + Send + 'a>) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Use `profile` for kernel timing estimates (both engines) and
    /// durations (simulator).
    pub fn profile(mut self, profile: TimingProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Number of real worker threads for [`Run::execute`]. Ignored by
    /// [`Run::simulate`], which sizes itself from the platform.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Attach an observability sink ([`ObsSink::enabled`] records spans
    /// and counters; the default disabled sink costs nothing).
    pub fn obs(mut self, obs: ObsSink) -> Self {
        self.obs = obs;
        self
    }

    /// Run the discrete-event simulator on `platform`.
    pub fn simulate(mut self, platform: &Platform, opts: &SimOptions) -> SimResult {
        hetchol_sim::simulate_with(
            self.graph,
            platform,
            &self.profile,
            self.scheduler.as_mut(),
            opts,
            self.obs,
        )
    }

    /// Run `workload` on real threads via the task runtime.
    ///
    /// ```
    /// use hetchol::prelude::*;
    ///
    /// let graph = TaskGraph::cholesky(4);
    /// let workload = FnWorkload(|_: TaskCoords| Ok::<(), std::convert::Infallible>(()));
    /// let result: RtResult = Run::new(&graph)
    ///     .profile(TimingProfile::mirage_homogeneous())
    ///     .workers(2)
    ///     .obs(ObsSink::enabled())
    ///     .execute(&workload)
    ///     .unwrap();
    /// let report: ObsReport = result.obs;
    /// let spans: &[TaskSpan] = &report.spans;
    /// assert_eq!(spans.len(), graph.len());
    /// // Per worker, the phase accounting partitions the makespan.
    /// let phases: Vec<WorkerPhases> = report.worker_phases();
    /// assert!(phases.iter().all(|p| p.total() == report.makespan()));
    /// ```
    pub fn execute<W: Workload + ?Sized>(mut self, workload: &W) -> Result<RtResult, W::Error> {
        hetchol_rt::execute_workload(
            workload,
            self.graph,
            self.scheduler.as_mut(),
            &self.profile,
            self.workers,
            self.obs,
        )
    }
}
